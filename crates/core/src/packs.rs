//! Syntactic pack discovery (paper Sect. 7.2).
//!
//! Relational domains are applied to small *packs* of variables chosen
//! before the analysis starts:
//!
//! - **Octagon packs** (Sect. 7.2.1): one pack per syntactic block, holding
//!   the variables of the linear assignments and tests at that block level.
//! - **Ellipsoid packs** (Sect. 6.2.3): pairs `(X, Y)` found by matching the
//!   second-order filter shape `X1 := a·X − b·Y + t; Y := X; X := X1`.
//! - **Decision-tree packs** (Sect. 7.2.3): booleans related to numeric
//!   variables through assignments, *confirmed* by a later use of the
//!   numeric variable under a branch testing the boolean.

use crate::config::AnalysisConfig;
use astree_ir::{
    Binop, Expr, IntType, Lvalue, ParamKind, Program, ScalarType, Stmt, StmtId, StmtKind, Type,
    Unop, VarId,
};
use astree_memory::{CellId, CellLayout};
use std::collections::{BTreeSet, HashMap};

/// A pack of variables analyzed together in one octagon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OctPack {
    /// The member cells (plain scalar variables only), in index order; the
    /// octagon's variable `i` is `cells[i]`.
    pub cells: Vec<CellId>,
}

/// A second-order filter instance for the ellipsoid domain.
#[derive(Debug, Clone, PartialEq)]
pub struct EllipsePack {
    /// Coefficient of `X`.
    pub a: f64,
    /// Coefficient of `Y` (the constraint is `X² − aXY + bY² ≤ k`).
    pub b: f64,
    /// The `X` state cell.
    pub x: CellId,
    /// The `Y` state cell.
    pub y: CellId,
    /// The temporary holding `a·X − b·Y + t` between the three statements.
    pub tmp: CellId,
    /// The input term `t` (None means 0).
    pub t: Option<Expr>,
    /// Statement id of the `X1 := a·X − b·Y + t` assignment, where the
    /// pending `δ(k)` is computed from the pre-state.
    pub start_stmt: StmtId,
    /// Statement id of the final `X := X1` assignment, at which the
    /// constraint update lands.
    pub commit_stmt: StmtId,
}

/// A decision-tree pack: booleans and the numeric variables they guard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtreePack {
    /// Boolean member cells (at most [`AnalysisConfig::dtree_pack_bool_cap`]).
    pub bools: Vec<CellId>,
    /// Numeric member cells.
    pub nums: Vec<CellId>,
}

/// All packs discovered for a program, with reverse indexes.
#[derive(Debug, Clone, Default)]
pub struct Packs {
    /// Octagon packs.
    pub octagons: Vec<OctPack>,
    /// Ellipsoid filter instances.
    pub ellipses: Vec<EllipsePack>,
    /// Decision-tree packs.
    pub dtrees: Vec<DtreePack>,
    /// Cell → octagon-pack indices.
    pub oct_index: HashMap<CellId, Vec<usize>>,
    /// Cell → decision-tree-pack indices.
    pub dtree_index: HashMap<CellId, Vec<usize>>,
    /// Commit statement → ellipse-pack index.
    pub ellipse_commits: HashMap<StmtId, usize>,
    /// Start statement → ellipse-pack index.
    pub ellipse_starts: HashMap<StmtId, usize>,
    /// Cell → ellipse-pack indices (cells appearing as `x` or `y`).
    pub ellipse_index: HashMap<CellId, Vec<usize>>,
}

impl Packs {
    /// Discovers all packs for `program` under `config`.
    pub fn discover(program: &Program, layout: &CellLayout, config: &AnalysisConfig) -> Packs {
        let mut packs = Packs::default();
        if config.enable_octagons {
            packs.octagons = discover_octagons(program, layout, config);
            // User-supplied packs (Sect. 3.2) come first so their indices
            // are stable across runs.
            let mut user: Vec<OctPack> = Vec::new();
            for names in &config.octagon_packs_extra {
                let mut cells: Vec<CellId> = names
                    .iter()
                    .filter_map(|n| {
                        let v = program.var_by_name(n)?;
                        matches!(program.var(v).ty, Type::Scalar(_)).then(|| layout.scalar_cell(v))
                    })
                    .collect();
                cells.sort();
                cells.dedup();
                if cells.len() >= 2 {
                    user.push(OctPack { cells });
                }
            }
            if !user.is_empty() {
                user.append(&mut packs.octagons);
                packs.octagons = user;
            }
            if let Some(filter) = &config.octagon_pack_filter {
                let mut kept = Vec::new();
                for &i in filter {
                    if i < packs.octagons.len() {
                        kept.push(packs.octagons[i].clone());
                    }
                }
                packs.octagons = kept;
            }
        }
        if config.enable_ellipsoids {
            packs.ellipses = discover_filters(program, layout);
        }
        if config.enable_dtrees {
            packs.dtrees = discover_dtrees(program, layout, config);
        }
        for (i, p) in packs.octagons.iter().enumerate() {
            for c in &p.cells {
                packs.oct_index.entry(*c).or_default().push(i);
            }
        }
        for (i, p) in packs.dtrees.iter().enumerate() {
            for c in p.bools.iter().chain(&p.nums) {
                packs.dtree_index.entry(*c).or_default().push(i);
            }
        }
        for (i, e) in packs.ellipses.iter().enumerate() {
            packs.ellipse_commits.insert(e.commit_stmt, i);
            packs.ellipse_starts.insert(e.start_stmt, i);
            packs.ellipse_index.entry(e.x).or_default().push(i);
            packs.ellipse_index.entry(e.y).or_default().push(i);
        }
        packs
    }

    /// Position of a cell within an octagon pack.
    pub fn oct_slot(&self, pack: usize, cell: CellId) -> Option<usize> {
        self.octagons[pack].cells.iter().position(|c| *c == cell)
    }
}

/// The scalar cell of a plain (path-free) scalar variable l-value.
fn plain_cell(program: &Program, layout: &CellLayout, lv: &Lvalue) -> Option<CellId> {
    if !lv.path.is_empty() {
        return None;
    }
    match program.var(lv.base).ty {
        Type::Scalar(_) => Some(layout.scalar_cell(lv.base)),
        _ => None,
    }
}

/// `true` when the expression is linear in variables: sums/differences of
/// loads and constants, products by constants.
fn is_linear(e: &Expr) -> bool {
    match e {
        Expr::Int(..) | Expr::Float(..) | Expr::Load(..) => true,
        Expr::Unop(Unop::Neg, _, a) => is_linear(a),
        Expr::Binop(Binop::Add | Binop::Sub, _, a, b) => is_linear(a) && is_linear(b),
        Expr::Binop(Binop::Mul, _, a, b) => {
            (matches!(**a, Expr::Int(..) | Expr::Float(..)) && is_linear(b))
                || (matches!(**b, Expr::Int(..) | Expr::Float(..)) && is_linear(a))
        }
        Expr::Cast(_, a) => is_linear(a),
        _ => false,
    }
}

/// Variables of a linear expression, as plain scalar cells.
fn linear_cells(program: &Program, layout: &CellLayout, e: &Expr, out: &mut BTreeSet<CellId>) {
    e.for_each_lvalue(&mut |lv| {
        if let Some(c) = plain_cell(program, layout, lv) {
            out.insert(c);
        }
    });
}

fn discover_octagons(
    program: &Program,
    layout: &CellLayout,
    config: &AnalysisConfig,
) -> Vec<OctPack> {
    // By-ref parameters are substituted away at every call site — the body
    // executes against the caller's l-value and the parameter's own cell
    // never exists at run time — so packing them only couples unrelated
    // callers of the same helper.
    let byref: BTreeSet<CellId> = program
        .funcs
        .iter()
        .flat_map(|f| &f.params)
        .filter(|p| p.kind == ParamKind::ByRef)
        .filter(|p| matches!(program.var(p.var).ty, Type::Scalar(_)))
        .map(|p| layout.scalar_cell(p.var))
        .collect();
    let mut packs: Vec<BTreeSet<CellId>> = Vec::new();
    for f in &program.funcs {
        walk_blocks(&f.body, &mut |block| {
            // One variable group per linear assignment or test at this block
            // level ("variables that interact", Sect. 7.2.1), then cluster
            // overlapping groups up to the pack cap — so a block with many
            // independent computations yields several small packs instead of
            // one truncated one.
            let mut groups: Vec<BTreeSet<CellId>> = Vec::new();
            for s in block {
                let mut g = BTreeSet::new();
                match &s.kind {
                    StmtKind::Assign(lv, e) if is_linear(e) => {
                        if let Some(c) = plain_cell(program, layout, lv) {
                            g.insert(c);
                        }
                        linear_cells(program, layout, e, &mut g);
                    }
                    StmtKind::If(c, _, _) | StmtKind::While(_, c, _) => {
                        collect_test_cells(program, layout, c, &mut g);
                    }
                    _ => {}
                }
                g.retain(|c| !byref.contains(c));
                if !g.is_empty() {
                    groups.push(g);
                }
            }
            let mut clusters: Vec<BTreeSet<CellId>> = Vec::new();
            for g in groups {
                let mut placed = false;
                for c in &mut clusters {
                    if !c.is_disjoint(&g) && c.union(&g).count() <= config.octagon_pack_cap {
                        c.extend(g.iter().copied());
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    let mut g = g;
                    while g.len() > config.octagon_pack_cap {
                        let last = *g.iter().next_back().expect("non-empty");
                        g.remove(&last);
                    }
                    clusters.push(g);
                }
            }
            packs.extend(clusters.into_iter().filter(|c| c.len() >= 2));
        });
    }
    // Deduplicate.
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for p in packs {
        let cells: Vec<CellId> = p.into_iter().collect();
        if seen.insert(cells.clone()) {
            out.push(OctPack { cells });
        }
    }
    out
}

/// Cells of comparison sub-conditions (the "tests" of Sect. 7.2.1).
fn collect_test_cells(
    program: &Program,
    layout: &CellLayout,
    c: &Expr,
    pack: &mut BTreeSet<CellId>,
) {
    match c {
        Expr::Binop(op, _, a, b) if op.is_comparison() && is_linear(a) && is_linear(b) => {
            linear_cells(program, layout, a, pack);
            linear_cells(program, layout, b, pack);
        }
        Expr::Binop(op, _, a, b) if op.is_logical() => {
            collect_test_cells(program, layout, a, pack);
            collect_test_cells(program, layout, b, pack);
        }
        Expr::Unop(Unop::LNot, _, a) => collect_test_cells(program, layout, a, pack),
        _ => {}
    }
}

/// Visits every syntactic block (statement list) of a function body.
fn walk_blocks(block: &[Stmt], f: &mut impl FnMut(&[Stmt])) {
    f(block);
    for s in block {
        match &s.kind {
            StmtKind::If(_, a, b) => {
                walk_blocks(a, f);
                walk_blocks(b, f);
            }
            StmtKind::While(_, _, body) => walk_blocks(body, f),
            _ => {}
        }
    }
}

// ----- ellipsoid (filter) detection ---------------------------------------

/// One signed term of a flattened `+`/`−` tree.
enum Term<'a> {
    /// `coef · var`, with the original sub-expression.
    Var(f64, VarId, &'a Expr),
    /// anything else
    Other(f64, &'a Expr),
}

fn flatten_terms<'a>(e: &'a Expr, sign: f64, out: &mut Vec<Term<'a>>) {
    match e {
        Expr::Binop(Binop::Add, _, a, b) => {
            flatten_terms(a, sign, out);
            flatten_terms(b, sign, out);
        }
        Expr::Binop(Binop::Sub, _, a, b) => {
            flatten_terms(a, sign, out);
            flatten_terms(b, -sign, out);
        }
        Expr::Unop(Unop::Neg, _, a) => flatten_terms(a, -sign, out),
        Expr::Binop(Binop::Mul, _, a, b) => match (&**a, &**b) {
            (Expr::Float(c, _), Expr::Load(lv, _)) if lv.path.is_empty() => {
                out.push(Term::Var(sign * c.get(), lv.base, e))
            }
            (Expr::Load(lv, _), Expr::Float(c, _)) if lv.path.is_empty() => {
                out.push(Term::Var(sign * c.get(), lv.base, e))
            }
            _ => out.push(Term::Other(sign, e)),
        },
        Expr::Load(lv, _) if lv.path.is_empty() => out.push(Term::Var(sign, lv.base, e)),
        other => out.push(Term::Other(sign, other)),
    }
}

/// Matches `a·X − b·Y + t` against `e` for the *given* state variables
/// `(x, y)` (known from the surrounding `Y := X; X := X1` statements).
/// Returns `(a, b, t)` when the coefficients are stable.
fn match_filter_rhs(e: &Expr, x: VarId, y: VarId) -> Option<(f64, f64, Option<Expr>)> {
    let mut terms = Vec::new();
    flatten_terms(e, 1.0, &mut terms);
    let mut a = None;
    let mut nb = None;
    let mut rest: Vec<(f64, &Expr)> = Vec::new();
    for t in &terms {
        match t {
            Term::Var(c, v, _) if *v == x && a.is_none() => a = Some(*c),
            Term::Var(c, v, _) if *v == y && nb.is_none() => nb = Some(*c),
            Term::Var(s, _, e) => rest.push((*s, e)),
            Term::Other(s, e) => rest.push((*s, e)),
        }
    }
    let (a, nb) = (a?, nb?);
    let b = -nb;
    if !astree_domains::Ellipsoid::stable(a, b) {
        return None;
    }
    // Rebuild the input term t from the remaining summands.
    let mut t: Option<Expr> = None;
    for (s, e) in rest {
        let signed =
            if s >= 0.0 { e.clone() } else { Expr::Unop(Unop::Neg, e.ty(), Box::new(e.clone())) };
        t = Some(match t {
            None => signed,
            Some(acc) => {
                let ty = acc.ty();
                Expr::Binop(Binop::Add, ty, Box::new(acc), Box::new(signed))
            }
        });
    }
    Some((a, b, t))
}

fn discover_filters(program: &Program, layout: &CellLayout) -> Vec<EllipsePack> {
    let mut out = Vec::new();
    for f in &program.funcs {
        walk_blocks(&f.body, &mut |block| {
            for w in block.windows(3) {
                let (s1, s2, s3) = (&w[0], &w[1], &w[2]);
                let (lv1, rhs1) = match &s1.kind {
                    StmtKind::Assign(lv, e) => (lv, e),
                    _ => continue,
                };
                // s2: Y := X;  s3: X := tmp — these identify X and Y.
                let (y, x) = match &s2.kind {
                    StmtKind::Assign(lv, Expr::Load(src, _))
                        if lv.path.is_empty() && src.path.is_empty() =>
                    {
                        (lv.base, src.base)
                    }
                    _ => continue,
                };
                let ok3 = matches!(&s3.kind, StmtKind::Assign(lv, Expr::Load(src, _))
                    if lv.path.is_empty() && lv.base == x && src.path.is_empty()
                        && src.base == lv1.base);
                if !ok3 || !lv1.path.is_empty() {
                    continue;
                }
                let Some((a, b, t)) = match_filter_rhs(rhs1, x, y) else { continue };
                let scalar = |v: VarId| -> Option<CellId> {
                    matches!(program.var(v).ty, Type::Scalar(ScalarType::Float(_)))
                        .then(|| layout.scalar_cell(v))
                };
                let (Some(xc), Some(yc), Some(tc)) = (scalar(x), scalar(y), scalar(lv1.base))
                else {
                    continue;
                };
                out.push(EllipsePack {
                    a,
                    b,
                    x: xc,
                    y: yc,
                    tmp: tc,
                    t,
                    start_stmt: s1.id,
                    commit_stmt: s3.id,
                });
            }
        });
    }
    out
}

// ----- decision-tree pack discovery ----------------------------------------

fn is_bool_var(program: &Program, v: VarId) -> bool {
    matches!(program.var(v).ty, Type::Scalar(ScalarType::Int(it)) if it == IntType::BOOL)
}

fn discover_dtrees(
    program: &Program,
    layout: &CellLayout,
    config: &AnalysisConfig,
) -> Vec<DtreePack> {
    // Tentative packs: (bool cell, numeric cells) pairs.
    let mut tentative: Vec<(CellId, BTreeSet<CellId>)> = Vec::new();
    let mut bool_of_cell: HashMap<CellId, usize> = HashMap::new();
    let add_pair = |bc: CellId,
                    nums: BTreeSet<CellId>,
                    tentative: &mut Vec<(CellId, BTreeSet<CellId>)>,
                    bool_of_cell: &mut HashMap<CellId, usize>| {
        match bool_of_cell.get(&bc) {
            Some(&i) => tentative[i].1.extend(nums),
            None => {
                bool_of_cell.insert(bc, tentative.len());
                tentative.push((bc, nums));
            }
        }
    };
    for f in &program.funcs {
        astree_ir::stmt::for_each_stmt(&f.body, &mut |s| {
            if let StmtKind::Assign(lv, e) = &s.kind {
                let Some(lc) = plain_cell(program, layout, lv) else { return };
                let lhs_bool = is_bool_var(program, lv.base);
                let mut rhs_bools = BTreeSet::new();
                let mut rhs_nums = BTreeSet::new();
                e.for_each_lvalue(&mut |rlv| {
                    if let Some(c) = plain_cell(program, layout, rlv) {
                        if is_bool_var(program, rlv.base) {
                            rhs_bools.insert(c);
                        } else {
                            rhs_nums.insert(c);
                        }
                    }
                });
                if lhs_bool && !rhs_nums.is_empty() {
                    // b := f(numerics): relate b to those numerics.
                    add_pair(lc, rhs_nums.clone(), &mut tentative, &mut bool_of_cell);
                }
                if !lhs_bool && !rhs_bools.is_empty() {
                    // numeric := f(bool): relate each bool to the numeric.
                    let mut nums: BTreeSet<CellId> = rhs_nums.clone();
                    nums.insert(lc);
                    for bc in &rhs_bools {
                        add_pair(*bc, nums.clone(), &mut tentative, &mut bool_of_cell);
                    }
                }
                if lhs_bool && !rhs_bools.is_empty() {
                    // b := expr over booleans: merge b into their packs
                    // (Sect. 7.2.3's complex boolean dependences).
                    for bc in rhs_bools.clone() {
                        if let Some(&i) = bool_of_cell.get(&bc) {
                            let nums = tentative[i].1.clone();
                            add_pair(lc, nums, &mut tentative, &mut bool_of_cell);
                        }
                    }
                }
            }
        });
    }
    // Confirmation: a numeric member is assigned under a branch testing the
    // boolean.
    let mut confirmed: Vec<bool> = vec![false; tentative.len()];
    for f in &program.funcs {
        astree_ir::stmt::for_each_stmt(&f.body, &mut |s| {
            if let StmtKind::If(c, a, b) = &s.kind {
                let mut cond_bools = BTreeSet::new();
                c.for_each_lvalue(&mut |lv| {
                    if let Some(cell) = plain_cell(program, layout, lv) {
                        if is_bool_var(program, lv.base) {
                            cond_bools.insert(cell);
                        }
                    }
                });
                if cond_bools.is_empty() {
                    return;
                }
                let mut touched = BTreeSet::new();
                for branch in [a, b] {
                    for bs in branch.iter() {
                        bs.for_each(&mut |inner| {
                            if let StmtKind::Assign(lv, e) = &inner.kind {
                                if let Some(cell) = plain_cell(program, layout, lv) {
                                    touched.insert(cell);
                                }
                                e.for_each_lvalue(&mut |rlv| {
                                    if let Some(cell) = plain_cell(program, layout, rlv) {
                                        touched.insert(cell);
                                    }
                                });
                            }
                        });
                    }
                }
                for bc in &cond_bools {
                    if let Some(&i) = bool_of_cell.get(bc) {
                        if tentative[i].1.iter().any(|n| touched.contains(n)) {
                            confirmed[i] = true;
                        }
                    }
                }
            }
        });
    }
    // Group confirmed pairs that share numeric variables into packs, capping
    // the boolean count (Sect. 7.2.3).
    let mut packs: Vec<DtreePack> = Vec::new();
    for (i, (bc, nums)) in tentative.iter().enumerate() {
        if !confirmed[i] || nums.is_empty() {
            continue;
        }
        // Try to join an existing pack sharing a numeric cell.
        let mut placed = false;
        for p in &mut packs {
            if p.nums.iter().any(|n| nums.contains(n)) {
                if !p.bools.contains(bc) && p.bools.len() < config.dtree_pack_bool_cap {
                    p.bools.push(*bc);
                    for n in nums {
                        if !p.nums.contains(n) {
                            p.nums.push(*n);
                        }
                    }
                    placed = true;
                }
                break;
            }
        }
        if !placed {
            packs.push(DtreePack { bools: vec![*bc], nums: nums.iter().copied().collect() });
        }
    }
    for p in &mut packs {
        p.bools.sort();
        p.nums.sort();
        p.nums.truncate(4);
    }
    packs
}

#[cfg(test)]
mod tests {
    use super::*;
    use astree_frontend::Frontend;
    use astree_memory::LayoutConfig;

    fn setup(src: &str) -> (Program, CellLayout) {
        let p = Frontend::new().compile_str(src).expect("compiles");
        let l = CellLayout::new(&p, &LayoutConfig::default());
        (p, l)
    }

    #[test]
    fn octagon_packs_from_linear_blocks() {
        let (p, l) = setup(
            r#"
            int x; int y; int z; int unrelated;
            void main(void) {
                x = y + 1;
                if (x < z) { unrelated = 0; }
            }
        "#,
        );
        let packs = Packs::discover(&p, &l, &AnalysisConfig::default());
        assert_eq!(packs.octagons.len(), 1, "{:?}", packs.octagons);
        // x, y from the assignment; x, z from the test. `unrelated`'s
        // assignment is in a sub-block and not linear in others.
        assert_eq!(packs.octagons[0].cells.len(), 3);
    }

    #[test]
    fn filter_pattern_is_detected() {
        let (p, l) = setup(
            r#"
            double x; double y; volatile double in;
            void main(void) {
                double x1;
                __astree_input_float(in, -1.0, 1.0);
                while (1) {
                    x1 = 1.5 * x - 0.7 * y + in;
                    y = x;
                    x = x1;
                    __astree_wait();
                }
            }
        "#,
        );
        let packs = Packs::discover(&p, &l, &AnalysisConfig::default());
        assert_eq!(packs.ellipses.len(), 1, "{:?}", packs.ellipses);
        let e = &packs.ellipses[0];
        assert_eq!(e.a, 1.5);
        assert_eq!(e.b, 0.7);
        assert!(e.t.is_some());
    }

    #[test]
    fn unstable_filters_are_ignored() {
        let (p, l) = setup(
            r#"
            double x; double y;
            void main(void) {
                double x1;
                x1 = 3.0 * x - 0.5 * y;  /* a^2 - 4b > 0: unstable */
                y = x;
                x = x1;
            }
        "#,
        );
        let packs = Packs::discover(&p, &l, &AnalysisConfig::default());
        assert!(packs.ellipses.is_empty());
    }

    #[test]
    fn dtree_pack_confirmed_by_branch() {
        let (p, l) = setup(
            r#"
            _Bool b; int x; int y;
            void main(void) {
                b = (_Bool)(x == 0);
                if (!b) { y = 100 / x; }
            }
        "#,
        );
        let packs = Packs::discover(&p, &l, &AnalysisConfig::default());
        assert_eq!(packs.dtrees.len(), 1, "{:?}", packs.dtrees);
        assert_eq!(packs.dtrees[0].bools.len(), 1);
        assert!(!packs.dtrees[0].nums.is_empty());
    }

    #[test]
    fn unconfirmed_pairs_are_dropped() {
        let (p, l) = setup(
            r#"
            _Bool b; int x; int y;
            void main(void) {
                b = (_Bool)(x == 0);
                y = x; /* b is never used to guard x */
            }
        "#,
        );
        let packs = Packs::discover(&p, &l, &AnalysisConfig::default());
        assert!(packs.dtrees.is_empty(), "{:?}", packs.dtrees);
    }

    #[test]
    fn pack_filter_replays_previous_run() {
        let (p, l) = setup(
            r#"
            int a; int b; int c; int d;
            void main(void) {
                a = b + 1;
                if (a < b) { c = d + 2; if (c < d) { a = 0; } }
            }
        "#,
        );
        let full = Packs::discover(&p, &l, &AnalysisConfig::default());
        assert!(full.octagons.len() >= 2);
        let mut cfg = AnalysisConfig::default();
        cfg.octagon_pack_filter = Some(vec![0]);
        let filtered = Packs::discover(&p, &l, &cfg);
        assert_eq!(filtered.octagons.len(), 1);
        assert_eq!(filtered.octagons[0], full.octagons[0]);
    }

    #[test]
    fn user_supplied_packs_are_added_first() {
        let (p, l) = setup(
            "int a; int b; int unrelated1; int unrelated2;
             void main(void) { a = b + 1; unrelated1 = unrelated2 * unrelated2; }",
        );
        let mut cfg = AnalysisConfig::default();
        cfg.octagon_packs_extra =
            vec![vec!["unrelated1".into(), "unrelated2".into()], vec!["nosuch".into()]];
        let packs = Packs::discover(&p, &l, &cfg);
        // The user pack is first; the invalid one (single resolvable name)
        // is dropped.
        let u1 = l.scalar_cell(p.var_by_name("unrelated1").unwrap());
        assert!(packs.octagons[0].cells.contains(&u1), "{:?}", packs.octagons);
        assert!(packs.octagons.len() >= 2);
    }

    #[test]
    fn disabled_domains_yield_no_packs() {
        let (p, l) = setup("int x; int y; void main(void) { x = y + 1; }");
        let packs = Packs::discover(&p, &l, &AnalysisConfig::baseline());
        assert!(packs.octagons.is_empty());
        assert!(packs.ellipses.is_empty());
        assert!(packs.dtrees.is_empty());
    }
}
