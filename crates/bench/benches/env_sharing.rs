//! E5 / Sect. 6.1.2: the functional-map ablation. Joining environments that
//! share structure must cost time proportional to the number of *differing*
//! cells; joining structurally equal but physically unshared maps costs the
//! full linear scan the paper measured a ×7 slowdown from.

use astree_pmap::PMap;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn mk_pair(n: u32, touched: u32, shared: bool) -> (PMap<u32, i64>, PMap<u32, i64>) {
    let base: PMap<u32, i64> = (0..n).map(|k| (k, 0)).collect();
    let mut left = base.clone();
    let mut right = base.clone();
    for i in 0..touched {
        left = left.insert(i * 7 % n, 1);
        right = right.insert(i * 13 % n, 2);
    }
    if shared {
        (left, right)
    } else {
        // Rebuild both sides so no subtree is physically shared.
        (
            left.iter().map(|(k, v)| (*k, *v)).collect(),
            right.iter().map(|(k, v)| (*k, *v)).collect(),
        )
    }
}

fn bench_env_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("env_join");
    for &n in &[1_000u32, 10_000, 50_000] {
        for shared in [true, false] {
            let (l, r) = mk_pair(n, 16, shared);
            let label = if shared { "shared" } else { "unshared" };
            group.bench_with_input(BenchmarkId::new(label, n), &(l, r), |b, (l, r)| {
                b.iter(|| black_box(l.union_with(r, |_, a, b| *a.max(b))))
            });
        }
    }
    group.finish();
}

fn bench_env_leq(c: &mut Criterion) {
    let mut group = c.benchmark_group("env_leq");
    for shared in [true, false] {
        let (l, r) = mk_pair(20_000, 16, shared);
        let label = if shared { "shared" } else { "unshared" };
        group.bench_function(label, |b| {
            b.iter(|| black_box(l.all2(&r, |_, _| true, |_, _| true, |_, a, b| a <= b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_env_join, bench_env_leq);
criterion_main!(benches);
