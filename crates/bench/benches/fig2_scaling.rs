//! Criterion bench for E1 / Fig. 2: full-analysis time at increasing
//! program sizes. The absolute numbers regenerate the scaling *shape* of
//! the paper's Fig. 2 (time vs kLOC); use `repro --experiment fig2` for the
//! full-size sweep.

use astree_bench::family_program;
use astree_core::AnalysisSession;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_scaling");
    group.sample_size(10);
    for channels in [2usize, 8, 32] {
        let program = family_program(channels, 7);
        group.bench_with_input(BenchmarkId::new("full_analysis", channels), &program, |b, p| {
            b.iter(|| {
                let r = AnalysisSession::builder(p).build().run();
                assert!(r.alarms.is_empty());
                r.stats.cells
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
