//! Micro-benchmarks of the abstract domains: the per-operation costs that
//! determine the analyzer's constant factors (octagon closure is the cubic
//! bottleneck the paper keeps affordable via small packs, Sect. 7.2.1).

use astree_domains::{
    set_generic_kernels, Ellipsoid, FloatItv, IntItv, LinForm, Octagon, Thresholds,
};
use astree_ir::FloatKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_octagon_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("octagon_closure");
    for n in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut o = Octagon::top(n);
                for i in 0..n - 1 {
                    o.add_diff_le(i, i + 1, i as f64);
                }
                o.add_upper(n - 1, 10.0);
                o.close();
                black_box(o.bounds(0))
            })
        });
    }
    group.finish();
}

/// Sweeps the closure kernels over the pack sizes the analyzer actually
/// sees (2–3 variables dominate pack discovery; 8 is the default cap),
/// across the full / incremental paths with the specialized small-pack
/// kernels on and off — so a kernel regression is visible without the
/// end-to-end bench. Specialization only exists for n ≤ 3; at larger
/// sizes the two modes measure the same generic code.
fn bench_octagon_closure_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("octagon_closure_kernels");
    for n in 2usize..=8 {
        // Full closure: every variable constrained, so `close()` takes the
        // full pair-sweep path.
        for (mode, generic) in [("specialized", false), ("generic", true)] {
            group.bench_with_input(BenchmarkId::new(format!("full_{mode}"), n), &n, |b, &n| {
                let prev = set_generic_kernels(generic);
                b.iter(|| {
                    let mut o = Octagon::top(n);
                    for i in 0..n {
                        o.add_upper(i, 8.0 + i as f64);
                        o.add_lower(i, -1.0);
                    }
                    for i in 0..n - 1 {
                        o.add_diff_le(i, i + 1, i as f64);
                        o.add_sum_le(i, i + 1, 10.0);
                    }
                    o.close();
                    black_box(o.bounds(0))
                });
                set_generic_kernels(prev);
            });
            // Incremental closure: one variable re-constrained on an
            // already-closed octagon.
            group.bench_with_input(
                BenchmarkId::new(format!("incremental_{mode}"), n),
                &n,
                |b, &n| {
                    let prev = set_generic_kernels(generic);
                    let mut base = Octagon::top(n);
                    for i in 0..n - 1 {
                        base.add_diff_le(i, i + 1, i as f64);
                        base.add_sum_le(i, i + 1, 10.0);
                    }
                    base.add_upper(n - 1, 10.0);
                    base.close();
                    b.iter(|| {
                        let mut o = base.clone();
                        o.add_upper(0, 3.5);
                        o.close();
                        black_box(o.bounds(0))
                    });
                    set_generic_kernels(prev);
                },
            );
        }
    }
    group.finish();
}

fn bench_octagon_join(c: &mut Criterion) {
    c.bench_function("octagon_join_8", |b| {
        let mut x = Octagon::top(8);
        x.assign_interval(0, FloatItv::new(0.0, 1.0));
        x.close();
        let mut y = Octagon::top(8);
        y.assign_interval(0, FloatItv::new(2.0, 3.0));
        y.close();
        b.iter(|| black_box(x.join_ref(&y)))
    });
}

fn bench_interval_ops(c: &mut Criterion) {
    c.bench_function("int_interval_mul", |b| {
        let x = IntItv::new(-1000, 2000);
        let y = IntItv::new(-3, 700);
        b.iter(|| black_box(x.mul(y)))
    });
    c.bench_function("float_interval_mul", |b| {
        let x = FloatItv::new(-1.5, 2.5);
        let y = FloatItv::new(0.1, 0.9);
        b.iter(|| black_box(x.mul(y, FloatKind::F64)))
    });
    c.bench_function("float_interval_div", |b| {
        let x = FloatItv::new(1.0, 2.0);
        let y = FloatItv::new(0.5, 4.0);
        b.iter(|| black_box(x.div(y, FloatKind::F64)))
    });
}

fn bench_ellipsoid_delta(c: &mut Criterion) {
    c.bench_function("ellipsoid_delta", |b| {
        let e = Ellipsoid::new(1.5, 0.7, 150.0);
        b.iter(|| black_box(e.delta(1.0)))
    });
}

fn bench_linform(c: &mut Criterion) {
    c.bench_function("linform_build_eval", |b| {
        b.iter(|| {
            let x: LinForm<u32> = LinForm::var(0);
            let y: LinForm<u32> = LinForm::var(1);
            let l = x
                .scale(FloatItv::singleton(1.5))
                .sub(&y.scale(FloatItv::singleton(0.7)))
                .add(&LinForm::constant(FloatItv::new(-1.0, 1.0)));
            black_box(l.eval(|_| FloatItv::new(-10.0, 10.0)))
        })
    });
}

fn bench_widening(c: &mut Criterion) {
    c.bench_function("interval_widen_thresholds", |b| {
        let t = Thresholds::geometric_default();
        let x = IntItv::new(0, 10);
        let y = IntItv::new(0, 4711);
        b.iter(|| black_box(x.widen(y, &t)))
    });
}

criterion_group!(
    benches,
    bench_octagon_closure,
    bench_octagon_closure_kernels,
    bench_octagon_join,
    bench_interval_ops,
    bench_ellipsoid_delta,
    bench_linform,
    bench_widening
);
criterion_main!(benches);
