//! E3 / Sect. 7.2.2: analysis cost with all octagon packs vs only the packs
//! a previous run proved useful ("generate at night … work the following
//! day using this list").

use astree_bench::family_program;
use astree_core::{AnalysisConfig, AnalysisSession};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_packing(c: &mut Criterion) {
    let program = family_program(16, 7);
    // Discover the useful packs once.
    let full_result = AnalysisSession::builder(&program).build().run();
    let useful = full_result.stats.useful_octagon_packs.clone();
    assert!(!useful.is_empty());
    assert!(useful.len() < full_result.stats.octagon_packs);

    let mut group = c.benchmark_group("packing_opt");
    group.sample_size(10);
    group.bench_function("all_packs", |b| {
        b.iter(|| {
            let r = AnalysisSession::builder(&program).build().run();
            assert!(r.alarms.is_empty());
        })
    });
    group.bench_function("useful_packs_only", |b| {
        let mut cfg = AnalysisConfig::default();
        cfg.octagon_pack_filter = Some(useful.clone());
        b.iter(|| {
            let r = AnalysisSession::builder(&program).config(cfg.clone()).build().run();
            assert!(r.alarms.is_empty());
        })
    });
    group.bench_function("no_octagons", |b| {
        let mut cfg = AnalysisConfig::default();
        cfg.enable_octagons = false;
        b.iter(|| {
            let r = AnalysisSession::builder(&program).config(cfg.clone()).build().run();
            // Octagons are load-bearing for the drift monitors.
            assert!(!r.alarms.is_empty());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
