//! `jobs_scaling` — wall time of the same analysis at `--jobs 1, 2, 4, 8`.
//!
//! The parallel scheme (Monniaux's partition-and-join, run on the persistent
//! work-stealing pool) guarantees bit-identical results for every worker
//! count, so this experiment measures pure scheduling overhead/speedup on one
//! fixed generated family member — by default 46 channels (≈50 functions),
//! analyzed cold (no invariant cache attached). Each worker count runs
//! `ITERATIONS` times and reports the fastest wall time; alarms must match
//! across every run or the binary panics.
//!
//! The JSON document is printed to stdout *and* written to the output file
//! (default `BENCH_jobs_scaling.json`, the committed baseline) so CI can
//! archive it. Each run embeds its `astree-metrics/1` document plus a
//! flattened summary of the work-stealing pool counters and the octagon
//! closure cost, the two quantities this PR optimizes.
//!
//! `speedup` is the measured wall-clock ratio against the `--jobs 1` run and
//! is only meaningful when the host grants the process that many CPUs
//! (`host_cpus` records what it actually granted). `effective_speedup`
//! corrects for CPU starvation: an extra pass per worker count runs the same
//! plan with `debug_inline_slices` (slices sequential on one thread, so
//! per-slice timings are preemption-free), then re-costs each sliced stage
//! at its longest slice — the critical path, what the stage would cost with
//! one core per slice. On a host with enough cores the two ratios converge.
//!
//! ```text
//! cargo run --release -p astree-bench --bin jobs_scaling [channels] [seed] [out.json]
//! ```

use astree_bench::family_program;
use astree_core::{AnalysisConfig, AnalysisSession};
use astree_obs::{Collector, Json};
use std::time::Instant;

/// Timed repetitions per worker count; the fastest is reported.
const ITERATIONS: usize = 3;

fn main() {
    let mut args = std::env::args().skip(1);
    let channels: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(46);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_jobs_scaling.json".into());

    let program = family_program(channels, seed);
    let kloc = astree_bench::family_kloc(channels, seed);

    let mut runs = Vec::new();
    let mut baseline_alarms: Option<Vec<String>> = None;
    let mut base_wall = 0.0f64;
    for jobs in [1usize, 2, 4, 8] {
        let mut wall = f64::INFINITY;
        let mut collector = Collector::new();
        for _ in 0..ITERATIONS {
            let mut cfg = AnalysisConfig::default();
            cfg.jobs = jobs;
            let c = Collector::new();
            let t0 = Instant::now();
            let result = AnalysisSession::builder(&program).config(cfg).recorder(&c).build().run();
            let w = t0.elapsed().as_secs_f64();

            let alarms: Vec<String> = result.alarms.iter().map(|a| a.to_string()).collect();
            match &baseline_alarms {
                None => baseline_alarms = Some(alarms),
                Some(base) => assert_eq!(
                    base, &alarms,
                    "jobs={jobs} changed the alarm list — determinism violated"
                ),
            }
            if w < wall {
                wall = w;
                collector = c;
            }
        }
        if jobs == 1 {
            base_wall = wall;
        }

        // Critical-path estimate from a preemption-free pass: with slices
        // inlined on one thread, a sliced stage's slices are disjoint
        // sub-intervals of the wall clock, so re-costing each stage at
        // `max(slice)` instead of `sum(slice)` gives the wall the same
        // schedule would have with one core per slice.
        let inline_c = Collector::new();
        let mut inline_cfg = AnalysisConfig::default();
        inline_cfg.jobs = jobs;
        inline_cfg.debug_inline_slices = true;
        let t0 = Instant::now();
        let inline_result =
            AnalysisSession::builder(&program).config(inline_cfg).recorder(&inline_c).build().run();
        let inline_wall = t0.elapsed().as_secs_f64();
        let inline_alarms: Vec<String> =
            inline_result.alarms.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            baseline_alarms.as_ref().expect("baseline ran first"),
            &inline_alarms,
            "jobs={jobs} inline-slices pass changed the alarm list — determinism violated"
        );
        let mut stage_sum: std::collections::BTreeMap<u64, (u64, u64)> =
            std::collections::BTreeMap::new();
        for s in &inline_c.snapshot().scheduler.slices {
            let e = stage_sum.entry(s.stage).or_insert((0, 0));
            e.0 += s.nanos;
            e.1 = e.1.max(s.nanos);
        }
        let serialized_excess: u64 = stage_sum.values().map(|(sum, max)| sum - max).sum();
        let est_wall = (inline_wall - serialized_excess as f64 / 1e9).max(f64::EPSILON);

        let m = collector.snapshot();
        let oct = m.domains.get("octagon");
        let closure_nanos = oct.and_then(|d| d.get("closure")).map_or(0, |o| o.nanos);
        let closure_saved = oct.and_then(|d| d.get("closure_saved")).map_or(0, |o| o.count);
        let pool = m.scheduler.pool.as_ref().map_or(Json::Null, |p| {
            Json::obj([
                ("workers", Json::UInt(p.workers)),
                ("tasks", Json::UInt(p.tasks)),
                ("steals", Json::UInt(p.steals)),
                ("max_queue_depth", Json::UInt(p.max_queue_depth)),
                (
                    "busy_s",
                    Json::Arr(p.busy_nanos.iter().map(|&n| Json::Float(n as f64 / 1e9)).collect()),
                ),
            ])
        });
        runs.push(Json::obj([
            ("jobs", Json::UInt(jobs as u64)),
            ("wall_s", Json::Float(wall)),
            ("speedup", Json::Float(base_wall / wall)),
            ("est_parallel_wall_s", Json::Float(est_wall)),
            ("effective_speedup", Json::Float(base_wall / est_wall)),
            ("parallel_stages", Json::UInt(m.scheduler.stages)),
            ("parallel_slices", Json::UInt(m.scheduler.slices.len() as u64)),
            ("octagon_closure_s", Json::Float(closure_nanos as f64 / 1e9)),
            ("octagon_closures_saved", Json::UInt(closure_saved)),
            ("pool", pool),
            ("metrics", collector.to_json()),
        ]));
    }

    let doc = Json::obj([
        ("experiment", Json::str("jobs_scaling")),
        (
            "host_cpus",
            Json::UInt(std::thread::available_parallelism().map_or(1, |n| n.get() as u64)),
        ),
        ("channels", Json::UInt(channels as u64)),
        ("seed", Json::UInt(seed)),
        ("kloc", Json::Float(kloc)),
        ("iterations", Json::UInt(ITERATIONS as u64)),
        ("alarms", Json::UInt(baseline_alarms.map_or(0, |a| a.len()) as u64)),
        ("runs", Json::Arr(runs)),
    ]);
    let rendered = doc.to_string();
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("jobs_scaling: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("{rendered}");
}
