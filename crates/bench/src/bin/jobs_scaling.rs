//! `jobs_scaling` — wall time of the same analysis at `--jobs 1, 2, 4`.
//!
//! The parallel scheme (Monniaux's partition-and-join) guarantees
//! bit-identical results for every worker count, so this experiment measures
//! pure scheduling overhead/speedup on one fixed generated program. Output
//! is a single JSON object; each run embeds its full `astree-metrics/1`
//! document (the same schema `astree analyze --metrics` writes), so per-slice
//! scheduler timings can be compared across worker counts.
//!
//! ```text
//! cargo run --release -p astree-bench --bin jobs_scaling [channels] [seed]
//! ```

use astree_bench::family_program;
use astree_core::{AnalysisConfig, AnalysisSession};
use astree_obs::{Collector, Json};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let channels: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let program = family_program(channels, seed);
    let kloc = astree_bench::family_kloc(channels, seed);

    let mut runs = Vec::new();
    let mut baseline_alarms: Option<Vec<String>> = None;
    let mut base_wall = 0.0f64;
    for jobs in [1usize, 2, 4] {
        let mut cfg = AnalysisConfig::default();
        cfg.jobs = jobs;
        let collector = Collector::new();
        let t0 = Instant::now();
        let result =
            AnalysisSession::builder(&program).config(cfg).recorder(&collector).build().run();
        let wall = t0.elapsed().as_secs_f64();

        let alarms: Vec<String> = result.alarms.iter().map(|a| a.to_string()).collect();
        match &baseline_alarms {
            None => {
                baseline_alarms = Some(alarms);
                base_wall = wall;
            }
            Some(base) => assert_eq!(
                base, &alarms,
                "jobs={jobs} changed the alarm list — determinism violated"
            ),
        }
        runs.push(Json::obj([
            ("jobs", Json::UInt(jobs as u64)),
            ("wall_s", Json::Float(wall)),
            ("speedup", Json::Float(base_wall / wall)),
            ("parallel_stages", Json::UInt(result.stats.parallel_stages)),
            ("parallel_slices", Json::UInt(result.stats.parallel_slices)),
            ("metrics", collector.to_json()),
        ]));
    }

    let doc = Json::obj([
        ("experiment", Json::str("jobs_scaling")),
        ("channels", Json::UInt(channels as u64)),
        ("seed", Json::UInt(seed)),
        ("kloc", Json::Float(kloc)),
        ("alarms", Json::UInt(baseline_alarms.map_or(0, |a| a.len()) as u64)),
        ("runs", Json::Arr(runs)),
    ]);
    println!("{doc}");
}
