//! `jobs_scaling` — wall time of the same analysis at `--jobs 1, 2, 4`.
//!
//! The parallel scheme (Monniaux's partition-and-join) guarantees
//! bit-identical results for every worker count, so this experiment measures
//! pure scheduling overhead/speedup on one fixed generated program. Output
//! is a single JSON object, so runs can be archived and compared.
//!
//! ```text
//! cargo run --release -p astree-bench --bin jobs_scaling [channels] [seed]
//! ```

use astree_bench::family_program;
use astree_core::{AnalysisConfig, Analyzer};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let channels: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let program = family_program(channels, seed);
    let kloc = astree_bench::family_kloc(channels, seed);

    let mut rows = Vec::new();
    let mut baseline_alarms: Option<Vec<String>> = None;
    let mut base_wall = 0.0f64;
    for jobs in [1usize, 2, 4] {
        let mut cfg = AnalysisConfig::default();
        cfg.jobs = jobs;
        let t0 = Instant::now();
        let result = Analyzer::new(&program, cfg).run();
        let wall = t0.elapsed().as_secs_f64();

        let alarms: Vec<String> = result.alarms.iter().map(|a| a.to_string()).collect();
        match &baseline_alarms {
            None => {
                baseline_alarms = Some(alarms);
                base_wall = wall;
            }
            Some(base) => assert_eq!(
                base, &alarms,
                "jobs={jobs} changed the alarm list — determinism violated"
            ),
        }
        rows.push(format!(
            "    {{\"jobs\": {jobs}, \"wall_s\": {wall:.6}, \"speedup\": {:.4}, \
             \"parallel_stages\": {}, \"parallel_slices\": {}}}",
            base_wall / wall,
            result.stats.parallel_stages,
            result.stats.parallel_slices,
        ));
    }

    println!("{{");
    println!("  \"experiment\": \"jobs_scaling\",");
    println!("  \"channels\": {channels},");
    println!("  \"seed\": {seed},");
    println!("  \"kloc\": {kloc:.2},");
    println!("  \"alarms\": {},", baseline_alarms.map_or(0, |a| a.len()));
    println!("  \"runs\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
