//! `serve_throughput` — warm resident daemon vs. cold per-request sessions.
//!
//! The experiment the `astree serve` subsystem exists for: a fleet of
//! generated family members is analyzed three ways and the per-request
//! latency distribution compared.
//!
//! - **cold** — every request compiles the source and builds a fresh
//!   `AnalysisSession` (spinning and tearing down its own worker pool, no
//!   invariant store), the way one `astree analyze` process per member
//!   would. This is deliberately *conservative*: real per-process cold
//!   starts also pay exec + binary load, which this in-process replay
//!   skips, so beating it understates the daemon's advantage.
//! - **warm pass 1** — the same fleet through a resident daemon over its
//!   Unix socket: one warm worker pool and one shared invariant store,
//!   but the store starts empty, so every request still iterates.
//! - **warm pass 2** — the fleet again; now every request replays from the
//!   shared store (the daemon's steady state for a stable fleet).
//!
//! Every request's alarms and rendered main-loop invariant must be
//! bit-identical across all three modes or the binary panics — the speedup
//! is only interesting if the answers are the same. The JSON document is
//! printed to stdout and written to the output file (default
//! `BENCH_serve.json`, the committed baseline).
//!
//! ```text
//! cargo run --release -p astree-bench --bin serve_throughput [members] [jobs] [out.json]
//! ```

use astree_core::{AnalysisConfig, AnalysisSession};
use astree_frontend::Frontend;
use astree_gen::{generate, GenConfig};
use astree_obs::Json;
use astree_serve::client::AnalyzeRequest;
use astree_serve::{Client, Endpoint, ServeOptions, Server};
use std::time::Instant;

/// Alarms + rendered invariant: the observables every mode must agree on.
type Observed = (Vec<String>, Option<String>);

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((p / 100.0) * (sorted_ms.len() as f64 - 1.0)).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn summarize(label: &str, latencies_s: &[f64]) -> (Json, f64) {
    let wall: f64 = latencies_s.iter().sum();
    let rps = latencies_s.len() as f64 / wall;
    let mut ms: Vec<f64> = latencies_s.iter().map(|s| s * 1e3).collect();
    ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p99) = (percentile(&ms, 50.0), percentile(&ms, 99.0));
    println!(
        "{label:<12} {:>3} requests  {wall:7.3}s  {rps:7.2} req/s  p50 {p50:8.2}ms  p99 {p99:8.2}ms",
        latencies_s.len()
    );
    let summary = Json::obj([
        ("requests", Json::UInt(latencies_s.len() as u64)),
        ("wall_s", Json::Float(wall)),
        ("requests_per_sec", Json::Float(rps)),
        ("p50_ms", Json::Float(p50)),
        ("p99_ms", Json::Float(p99)),
    ]);
    (summary, rps)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let members: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let jobs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let out_path = args.next().unwrap_or_else(|| "BENCH_serve.json".into());
    assert!(members >= 8, "the fleet must have at least 8 members");

    // A mixed-size fleet: channel counts cycle through 2..=5 so the store
    // sees distinct programs, not one program repeated.
    let fleet: Vec<String> = (0..members)
        .map(|i| generate(&GenConfig { channels: 2 + i % 4, seed: 100 + i as u64, bug: None }))
        .collect();

    // --- cold: fresh session (own pool, no store) per request ------------
    let mut cold_lat = Vec::with_capacity(members);
    let mut expected: Vec<Observed> = Vec::with_capacity(members);
    for src in &fleet {
        let t0 = Instant::now();
        let program = Frontend::new().compile_str(src).expect("fleet member compiles");
        let mut cfg = AnalysisConfig::default();
        cfg.jobs = jobs;
        let result = AnalysisSession::builder(&program).config(cfg).build().run();
        cold_lat.push(t0.elapsed().as_secs_f64());
        expected.push((
            result.alarms.iter().map(|a| a.to_string()).collect(),
            result.main_invariant.as_ref().map(|s| s.to_string()),
        ));
    }

    // --- warm: one resident daemon, two passes over the same fleet -------
    let mut cache_dir = std::env::temp_dir();
    cache_dir.push(format!("astree-serve-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&cache_dir).ok();
    let mut sock = std::env::temp_dir();
    sock.push(format!("astree-serve-bench-{}.sock", std::process::id()));
    let server = Server::bind(
        Endpoint::Unix(sock),
        ServeOptions { jobs, max_inflight: members, cache_dir: Some(cache_dir.clone()) },
    )
    .expect("bind bench daemon");
    let endpoint = server.endpoint().clone();
    let handle = server.spawn();
    let mut client = Client::connect(&endpoint).expect("connect");

    let mut warm_pass = |pass: usize, want_full_hits: bool| -> Vec<f64> {
        let mut lat = Vec::with_capacity(members);
        for (i, src) in fleet.iter().enumerate() {
            let req =
                AnalyzeRequest { source: src.clone(), events: Some("none"), ..Default::default() };
            let t0 = Instant::now();
            let outcome = client.analyze(&req).expect("warm analyze");
            lat.push(t0.elapsed().as_secs_f64());
            assert_eq!(
                (&outcome.alarms, &outcome.main_invariant),
                (&expected[i].0, &expected[i].1),
                "pass {pass}, member {i}: warm result differs from cold run"
            );
            assert_eq!(
                outcome.cache_full_hit, want_full_hits,
                "pass {pass}, member {i}: unexpected store temperature"
            );
        }
        lat
    };
    let warm1_lat = warm_pass(1, false);
    let warm2_lat = warm_pass(2, true);

    let status = client.status().expect("status");
    client.shutdown().expect("shutdown");
    handle.join().expect("clean daemon exit");
    std::fs::remove_dir_all(&cache_dir).ok();

    // --- report -----------------------------------------------------------
    println!("serve_throughput: {members}-member fleet, jobs={jobs}");
    let (cold, cold_rps) = summarize("cold", &cold_lat);
    let (warm1, warm1_rps) = summarize("warm pass 1", &warm1_lat);
    let (warm2, warm2_rps) = summarize("warm pass 2", &warm2_lat);
    assert!(
        warm2_rps > cold_rps,
        "steady-state daemon throughput ({warm2_rps:.2} req/s) must beat cold ({cold_rps:.2})"
    );
    let doc = Json::obj([
        ("experiment", Json::str("serve_throughput")),
        (
            "host_cpus",
            Json::UInt(std::thread::available_parallelism().map_or(1, |n| n.get() as u64)),
        ),
        ("members", Json::UInt(members as u64)),
        ("jobs", Json::UInt(jobs as u64)),
        ("bit_identical", Json::Bool(true)),
        ("cold", cold),
        ("warm_pass_1", warm1),
        ("warm_pass_2", warm2),
        ("warm1_speedup_vs_cold", Json::Float(warm1_rps / cold_rps)),
        ("warm2_speedup_vs_cold", Json::Float(warm2_rps / cold_rps)),
        ("daemon_status", status),
    ]);
    let rendered = doc.to_string();
    std::fs::write(&out_path, &rendered).expect("write output file");
    println!("\nwarm steady state is {:.2}x cold; wrote {out_path}", warm2_rps / cold_rps);
}
