//! `fleet_scaling` — wall time of the same 24-member fleet at
//! `--workers 0, 1, 2, 4` worker *processes*.
//!
//! The fleet coordinator guarantees bit-identical outcomes for every worker
//! count (submission-order reporting, deterministic per-job analyses), so
//! this experiment measures pure distribution overhead/speedup: the corpus
//! is scattered round-robin over local `astree worker --stdio` children and
//! idle workers steal from the richest queue. Every run's stable report is
//! diffed against the in-process (`--workers 0`) baseline; any byte of
//! difference panics.
//!
//! `speedup` is the measured wall-clock ratio against the in-process run
//! and is only meaningful when the host grants the process that many CPUs
//! (`host_cpus` records what it actually granted — the committed baseline
//! was produced on a single-CPU container, where real process parallelism
//! cannot beat 1×). `effective_speedup` is therefore also recorded: a
//! list-schedule of the baseline per-job wall times over N lanes (greedy,
//! least-loaded lane first — the schedule work stealing converges to),
//! whose makespan is what the fleet would cost with one core per worker.
//! The curve saturates once the longest job dominates the makespan.
//!
//! ```text
//! cargo run --release -p astree-bench --bin fleet_scaling [members] [out.json] [astree-bin]
//! ```
//!
//! The `astree` binary (for worker children) defaults to the sibling of
//! this binary in the cargo target directory; build it first with
//! `cargo build --release`.

use astree_fleet::{FleetSession, JobSpec};
use astree_obs::{FleetCounters, Json};
use std::time::Instant;

/// Channel counts cycled across the corpus: mixed sizes so queues drain
/// unevenly and stealing actually happens.
const CHANNELS: [usize; 4] = [1, 2, 4, 6];

fn corpus(members: usize) -> Vec<JobSpec> {
    let seeds: Vec<u64> = (1..=members as u64).collect();
    astree_fleet::generated_jobs(&CHANNELS, &seeds)
}

/// Greedy list-schedule of `walls` (submission order) over `lanes` lanes;
/// returns the makespan in seconds.
fn list_schedule(walls: &[f64], lanes: usize) -> f64 {
    let mut load = vec![0.0f64; lanes.max(1)];
    for &w in walls {
        let min = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .map(|(i, _)| i)
            .expect("at least one lane");
        load[min] += w;
    }
    load.iter().cloned().fold(0.0, f64::max)
}

fn counters_json(c: &FleetCounters) -> Json {
    Json::obj([
        ("processes", Json::Bool(c.processes)),
        ("steals", Json::UInt(c.steals)),
        ("resent", Json::UInt(c.resent)),
        ("crashes", Json::UInt(c.crashes)),
        ("timeouts", Json::UInt(c.timeouts)),
        ("respawns", Json::UInt(c.respawns)),
        ("store_full_hits", Json::UInt(c.store_full_hits)),
        (
            "per_worker",
            Json::Arr(
                c.per_worker
                    .iter()
                    .map(|w| {
                        Json::obj([
                            ("jobs", Json::UInt(w.jobs)),
                            ("steals", Json::UInt(w.steals)),
                            ("busy_s", Json::Float(w.busy_nanos as f64 / 1e9)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    let mut args = std::env::args().skip(1);
    let members: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(24);
    let out_path = args.next().unwrap_or_else(|| "BENCH_fleet.json".into());
    let astree_bin = args.next().unwrap_or_else(|| {
        let exe = std::env::current_exe().expect("current exe");
        let sibling = exe.with_file_name("astree");
        if !sibling.exists() {
            eprintln!(
                "fleet_scaling: {} not found — build it first (`cargo build --release`) \
                 or pass the astree binary path as the third argument",
                sibling.display()
            );
            std::process::exit(1);
        }
        sibling.to_string_lossy().into_owned()
    });

    let jobs = corpus(members);
    assert!(jobs.len() >= 24, "fleet must have at least 24 members");

    // In-process baseline: the reference outcomes and per-job costs.
    let t0 = Instant::now();
    let baseline = FleetSession::builder().jobs(jobs.clone()).run();
    let base_wall = t0.elapsed().as_secs_f64();
    assert_eq!(baseline.completed(), jobs.len(), "baseline fleet completes");
    let base_report = baseline.stable_report();
    let job_walls: Vec<f64> = baseline.outcomes.iter().map(|o| o.wall.as_secs_f64()).collect();
    let total_job_time: f64 = job_walls.iter().sum();

    let mut runs = vec![Json::obj([
        ("workers", Json::UInt(0)),
        ("wall_s", Json::Float(base_wall)),
        ("speedup", Json::Float(1.0)),
        ("est_wall_s", Json::Float(total_job_time)),
        ("effective_speedup", Json::Float(1.0)),
        ("fleet", counters_json(&baseline.counters)),
    ])];

    for workers in [1usize, 2, 4] {
        let t0 = Instant::now();
        let report = FleetSession::builder()
            .jobs(jobs.clone())
            .workers(workers)
            .worker_cmd(vec![astree_bin.clone(), "worker".into(), "--stdio".into()])
            .run();
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(
            base_report,
            report.stable_report(),
            "workers={workers} changed the fleet outcomes — determinism violated"
        );
        let est_wall = list_schedule(&job_walls, workers).max(f64::EPSILON);
        let effective = total_job_time / est_wall;
        if workers == 2 {
            assert!(
                effective > 1.8,
                "2-worker list schedule must beat 1.8x (got {effective:.2}x) — \
                 corpus too skewed"
            );
        }
        runs.push(Json::obj([
            ("workers", Json::UInt(workers as u64)),
            ("wall_s", Json::Float(wall)),
            ("speedup", Json::Float(base_wall / wall)),
            ("est_wall_s", Json::Float(est_wall)),
            ("effective_speedup", Json::Float(effective)),
            ("fleet", counters_json(&report.counters)),
        ]));
    }

    let doc = Json::obj([
        ("experiment", Json::str("fleet_scaling")),
        (
            "host_cpus",
            Json::UInt(std::thread::available_parallelism().map_or(1, |n| n.get() as u64)),
        ),
        ("members", Json::UInt(jobs.len() as u64)),
        ("channels", Json::Arr(CHANNELS.iter().map(|&c| Json::UInt(c as u64)).collect())),
        ("total_job_time_s", Json::Float(total_job_time)),
        ("runs", Json::Arr(runs)),
    ]);
    let rendered = doc.to_string();
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("fleet_scaling: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("{rendered}");
}
