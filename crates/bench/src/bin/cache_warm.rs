//! `cache_warm` — wall time of a fleet family campaign cold vs warm, with
//! the invariant store synced to worker processes over the wire.
//!
//! Three passes over `astree worker --stdio` children, all in `--cache-wire`
//! mode — the store directory lives only on the coordinator side and the
//! workers warm up exclusively through `store_get`/`store_files`/`store_put`
//! frames (zero shared filesystem):
//!
//! 1. **cold** — empty store; every member solves from scratch and ships
//!    its converged entry back (`store_puts`).
//! 2. **warm** — same members, store reopened; every member replays from
//!    entries pulled over the wire (`store_full_hits`). The stable report
//!    must be byte-identical to the cold pass, and the wall time at least
//!    3x faster — full-hit replay skips the fixpoint solve entirely.
//! 3. **transfer** — *new* members with a channel count the store has
//!    never seen; full hits miss, but the channel-count-parametric
//!    portable fingerprints match donors of other sizes and warm the
//!    widening starts (`seed_hits`).
//!
//! ```text
//! cargo run --release -p astree-bench --bin cache_warm [out.json] [astree-bin]
//! ```
//!
//! The `astree` binary (for worker children) defaults to the sibling of
//! this binary in the cargo target directory; build it first with
//! `cargo build --release`.

use astree_core::InvariantStore;
use astree_fleet::{FleetReport, FleetSession, JobSpec};
use astree_obs::{FleetCounters, Json};
use std::sync::Arc;
use std::time::Instant;

/// Channel counts of the family campaign proper (passes 1 and 2): large
/// members, so the fixpoint solve dominates process-spawn and wire-sync
/// overhead and the warm replay advantage is visible in wall time.
const CHANNELS: [usize; 3] = [8, 12, 16];
/// Channel count of the transfer pass: absent from the campaign, so only
/// cross-member portable seeds can warm it.
const TRANSFER_CHANNELS: [usize; 1] = [20];
/// Seeds cycled across the campaign channel counts.
const SEEDS: u64 = 16;
/// Seeds of the transfer pass (kept small: every member solves, seeded).
const TRANSFER_SEEDS: u64 = 4;

fn counters_json(c: &FleetCounters) -> Json {
    Json::obj([
        ("steals", Json::UInt(c.steals)),
        ("store_full_hits", Json::UInt(c.store_full_hits)),
        ("store_gets", Json::UInt(c.store_gets)),
        ("store_puts", Json::UInt(c.store_puts)),
        ("loops_seeded", Json::UInt(c.loops_seeded)),
        ("seed_hits", Json::UInt(c.seed_hits)),
        (
            "per_worker",
            Json::Arr(
                c.per_worker
                    .iter()
                    .map(|w| {
                        Json::obj([
                            ("jobs", Json::UInt(w.jobs)),
                            ("busy_s", Json::Float(w.busy_nanos as f64 / 1e9)),
                            ("ewma_nanos", Json::UInt(w.ewma_nanos)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Runs one wire-synced fleet pass: the store is (re)opened from `dir` and
/// handed to the coordinator only; workers sync over the protocol.
fn pass(
    jobs: &[JobSpec],
    dir: &std::path::Path,
    workers: usize,
    astree_bin: &str,
) -> (FleetReport, f64) {
    let store = InvariantStore::open(dir).expect("open invariant store");
    let t0 = Instant::now();
    let report = FleetSession::builder()
        .jobs(jobs.to_vec())
        .workers(workers)
        .worker_cmd(vec![astree_bin.to_string(), "worker".into(), "--stdio".into()])
        .cache(Arc::new(store))
        .cache_wire(true)
        .run();
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(report.completed(), jobs.len(), "fleet pass completes");
    (report, wall)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_cache_warm.json".into());
    let astree_bin = args.next().unwrap_or_else(|| {
        let exe = std::env::current_exe().expect("current exe");
        let sibling = exe.with_file_name("astree");
        if !sibling.exists() {
            eprintln!(
                "cache_warm: {} not found — build it first (`cargo build --release`) \
                 or pass the astree binary path as the second argument",
                sibling.display()
            );
            std::process::exit(1);
        }
        sibling.to_string_lossy().into_owned()
    });

    let seeds: Vec<u64> = (1..=SEEDS).collect();
    let transfer_seeds: Vec<u64> = (1..=TRANSFER_SEEDS).collect();
    let jobs = astree_fleet::generated_jobs(&CHANNELS, &seeds);
    let transfer_jobs = astree_fleet::generated_jobs(&TRANSFER_CHANNELS, &transfer_seeds);
    let workers = 2usize;

    let dir = std::env::temp_dir().join(format!("astree-cache-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");

    let (cold, cold_wall) = pass(&jobs, &dir, workers, &astree_bin);
    assert_eq!(cold.counters.store_full_hits, 0, "cold pass starts from an empty store");
    assert!(cold.counters.store_puts > 0, "workers ship converged entries back over the wire");

    let (warm, warm_wall) = pass(&jobs, &dir, workers, &astree_bin);
    assert_eq!(
        cold.stable_report(),
        warm.stable_report(),
        "warm pass changed the campaign outcomes — determinism violated"
    );
    assert_eq!(
        warm.counters.store_full_hits,
        jobs.len() as u64,
        "warm pass replays every member from the wire-synced store"
    );
    assert!(warm.counters.store_gets > 0, "coordinator ships store files to workers");
    let speedup = cold_wall / warm_wall.max(f64::EPSILON);
    assert!(
        speedup >= 3.0,
        "warm fleet must be at least 3x faster than cold (got {speedup:.2}x: \
         cold {cold_wall:.3}s, warm {warm_wall:.3}s)"
    );

    let (transfer, transfer_wall) = pass(&transfer_jobs, &dir, workers, &astree_bin);
    assert_eq!(
        transfer.counters.store_full_hits, 0,
        "transfer members were never analyzed, so full fingerprints miss"
    );
    assert!(
        transfer.counters.seed_hits > 0,
        "cross-member portable seeds warm the unseen channel count over the wire"
    );

    let doc = Json::obj([
        ("experiment", Json::str("cache_warm")),
        (
            "host_cpus",
            Json::UInt(std::thread::available_parallelism().map_or(1, |n| n.get() as u64)),
        ),
        ("workers", Json::UInt(workers as u64)),
        ("members", Json::UInt(jobs.len() as u64)),
        ("channels", Json::Arr(CHANNELS.iter().map(|&c| Json::UInt(c as u64)).collect())),
        ("shared_filesystem", Json::Bool(false)),
        ("identical_reports", Json::Bool(true)),
        (
            "cold",
            Json::obj([
                ("wall_s", Json::Float(cold_wall)),
                ("fleet", counters_json(&cold.counters)),
            ]),
        ),
        (
            "warm",
            Json::obj([
                ("wall_s", Json::Float(warm_wall)),
                ("speedup", Json::Float(speedup)),
                ("fleet", counters_json(&warm.counters)),
            ]),
        ),
        (
            "transfer",
            Json::obj([
                ("members", Json::UInt(transfer_jobs.len() as u64)),
                (
                    "channels",
                    Json::Arr(TRANSFER_CHANNELS.iter().map(|&c| Json::UInt(c as u64)).collect()),
                ),
                ("wall_s", Json::Float(transfer_wall)),
                ("fleet", counters_json(&transfer.counters)),
            ]),
        ),
    ]);
    let _ = std::fs::remove_dir_all(&dir);
    let rendered = doc.to_string();
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("cache_warm: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("{rendered}");
}
