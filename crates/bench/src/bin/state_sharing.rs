//! `state_sharing` — the cost of physical sharing in the abstract-state
//! algebra, across family sizes at `--jobs 1`.
//!
//! Every binary operation on abstract state (env join/widen/narrow/leq, the
//! per-pack relational maps, the fixpoint stabilization checks) is
//! identity-preserving: a merge that changes nothing returns the original
//! `Arc` subtree, so later operations skip shared regions by pointer
//! equality. `debug_no_ptr_shortcuts` disables every such fast path while —
//! by construction — computing bit-identical abstract values. This
//! experiment runs each family member both ways and reports wall time, pmap
//! node allocations, and shortcut hit rates; alarms, the main-loop census
//! and the rendered main invariant must match exactly or the binary panics.
//!
//! The JSON document is printed to stdout *and* written to the output file
//! (default `BENCH_state_sharing.json`, the committed baseline) so CI can
//! archive it. The `summary` object reports the largest size's wall-time
//! speedup and node-allocation reduction, the two acceptance quantities.
//!
//! ```text
//! cargo run --release -p astree-bench --bin state_sharing [seed] [out.json]
//! ```

use astree_bench::{family_kloc, family_program};
use astree_core::{AnalysisConfig, AnalysisResult, AnalysisSession};
use astree_ir::Program;
use astree_obs::{Collector, Json, PmapCounters};
use std::time::Instant;

/// Timed repetitions per mode; the fastest is reported.
const ITERATIONS: usize = 3;

/// Family sizes (generator channel counts) on the measurement ladder.
const CHANNELS: [usize; 3] = [12, 24, 46];

struct ModeRun {
    wall: f64,
    pmap: PmapCounters,
    result: AnalysisResult,
}

/// Best-of-`ITERATIONS` analysis at jobs=1 with the sharing fast paths on
/// or off; pmap counters come from the fastest repetition (they are
/// deterministic per mode, so any repetition reports the same counts).
fn run_mode(program: &Program, no_shortcuts: bool) -> ModeRun {
    let mut best: Option<ModeRun> = None;
    for _ in 0..ITERATIONS {
        let mut cfg = AnalysisConfig::default();
        cfg.jobs = 1;
        cfg.debug_no_ptr_shortcuts = no_shortcuts;
        let c = Collector::new();
        let t0 = Instant::now();
        let result = AnalysisSession::builder(program).config(cfg).recorder(&c).build().run();
        let wall = t0.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|b| wall < b.wall) {
            best = Some(ModeRun { wall, pmap: c.snapshot().pmap, result });
        }
    }
    best.expect("at least one iteration ran")
}

fn pmap_json(p: &PmapCounters) -> Json {
    Json::obj([
        ("nodes_allocated", Json::UInt(p.nodes_allocated)),
        ("merge_calls", Json::UInt(p.merge_calls)),
        ("root_shortcut_hits", Json::UInt(p.root_shortcut_hits)),
        ("interior_shortcut_hits", Json::UInt(p.interior_shortcut_hits)),
        ("identity_preserved", Json::UInt(p.identity_preserved)),
    ])
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_state_sharing.json".into());

    let mut sizes = Vec::new();
    let mut summary = None;
    for channels in CHANNELS {
        let program = family_program(channels, seed);
        let kloc = family_kloc(channels, seed);

        let on = run_mode(&program, false);
        let off = run_mode(&program, true);

        // The differential contract: disabling every fast path must not
        // change a single observable bit.
        let alarms_on: Vec<String> = on.result.alarms.iter().map(|a| a.to_string()).collect();
        let alarms_off: Vec<String> = off.result.alarms.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            alarms_on, alarms_off,
            "channels={channels}: debug_no_ptr_shortcuts changed the alarm list"
        );
        assert_eq!(
            on.result.main_census, off.result.main_census,
            "channels={channels}: debug_no_ptr_shortcuts changed the main-loop census"
        );
        assert_eq!(
            on.result.main_invariant.as_ref().map(|s| format!("{s}")),
            off.result.main_invariant.as_ref().map(|s| format!("{s}")),
            "channels={channels}: debug_no_ptr_shortcuts changed the main invariant"
        );
        assert!(
            on.pmap.identity_preserved > 0,
            "channels={channels}: sharing run preserved no identities"
        );
        assert_eq!(
            off.pmap.root_shortcut_hits
                + off.pmap.interior_shortcut_hits
                + off.pmap.identity_preserved,
            0,
            "channels={channels}: debug_no_ptr_shortcuts left a fast path armed"
        );

        let wall_speedup = off.wall / on.wall;
        let alloc_reduction =
            1.0 - on.pmap.nodes_allocated as f64 / off.pmap.nodes_allocated as f64;
        sizes.push(Json::obj([
            ("channels", Json::UInt(channels as u64)),
            ("kloc", Json::Float(kloc)),
            ("alarms", Json::UInt(alarms_on.len() as u64)),
            ("loop_iterations", Json::UInt(on.result.stats.loop_iterations)),
            ("sharing_wall_s", Json::Float(on.wall)),
            ("no_shortcuts_wall_s", Json::Float(off.wall)),
            ("wall_speedup", Json::Float(wall_speedup)),
            ("node_alloc_reduction", Json::Float(alloc_reduction)),
            ("sharing_pmap", pmap_json(&on.pmap)),
            ("no_shortcuts_pmap", pmap_json(&off.pmap)),
        ]));
        summary = Some((channels, wall_speedup, alloc_reduction));
        eprintln!(
            "channels={channels}: wall {:.3}s vs {:.3}s ({wall_speedup:.2}x), \
             nodes {} vs {} ({:.1}% fewer)",
            on.wall,
            off.wall,
            on.pmap.nodes_allocated,
            off.pmap.nodes_allocated,
            alloc_reduction * 100.0,
        );
    }

    let (channels, wall_speedup, alloc_reduction) = summary.expect("at least one size ran");
    let doc = Json::obj([
        ("experiment", Json::str("state_sharing")),
        (
            "host_cpus",
            Json::UInt(std::thread::available_parallelism().map_or(1, |n| n.get() as u64)),
        ),
        ("seed", Json::UInt(seed)),
        ("iterations", Json::UInt(ITERATIONS as u64)),
        ("sizes", Json::Arr(sizes)),
        (
            "summary",
            Json::obj([
                ("channels", Json::UInt(channels as u64)),
                ("wall_speedup", Json::Float(wall_speedup)),
                ("node_alloc_reduction", Json::Float(alloc_reduction)),
            ]),
        ),
    ]);
    let rendered = doc.to_string();
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("state_sharing: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("{rendered}");
}
