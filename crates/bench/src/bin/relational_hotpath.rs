//! `relational_hotpath` — wall-time effect of the half-matrix DBM layout,
//! the small-pack closure kernels, and the slab allocator behind pmap.
//!
//! Runs each family member at `--jobs 1` twice: once with the specialized
//! small-pack octagon kernels (the default) and once with
//! `debug_generic_kernels` forcing the generic half-matrix path. The two
//! modes share every layout and allocator change, differing only in kernel
//! dispatch, and must produce bit-identical alarms, main-loop census and
//! rendered main invariant — the binary panics otherwise. Because the
//! specialized kernels are instantiations of the same inlined bodies, the
//! pmap allocation counters must also match exactly across modes.
//!
//! With a pre-change `BENCH_state_sharing.json` (same family generator,
//! same seed, same default config at jobs=1) passed as the baseline, the
//! document additionally reports the wall-time reduction and the
//! fresh-node-memory reduction against the old binary: the baseline's
//! every node allocation was an individual global-allocator round trip,
//! while this binary recycles dropped nodes through the slab free lists,
//! so fresh allocations are `nodes_allocated - nodes_recycled`.
//!
//! ```text
//! cargo run --release -p astree-bench --bin relational_hotpath \
//!     [seed] [out.json] [baseline_state_sharing.json]
//! ```

use astree_bench::{family_kloc, family_program};
use astree_core::{AnalysisConfig, AnalysisResult, AnalysisSession};
use astree_ir::Program;
use astree_obs::{Collector, Json, PmapCounters};
use std::time::Instant;

/// Timed repetitions per mode; the fastest is reported.
const ITERATIONS: usize = 5;

/// Family sizes (generator channel counts) on the measurement ladder.
const CHANNELS: [usize; 3] = [12, 24, 46];

struct ModeRun {
    wall: f64,
    pmap: PmapCounters,
    result: AnalysisResult,
}

/// Best-of-`ITERATIONS` analysis at jobs=1 with the specialized kernels on
/// or off; counters come from the fastest repetition (they are
/// deterministic per mode).
fn run_mode(program: &Program, generic_kernels: bool) -> ModeRun {
    let mut best: Option<ModeRun> = None;
    for _ in 0..ITERATIONS {
        let mut cfg = AnalysisConfig::default();
        cfg.jobs = 1;
        cfg.debug_generic_kernels = generic_kernels;
        let c = Collector::new();
        let t0 = Instant::now();
        let result = AnalysisSession::builder(program).config(cfg).recorder(&c).build().run();
        let wall = t0.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|b| wall < b.wall) {
            best = Some(ModeRun { wall, pmap: c.snapshot().pmap, result });
        }
    }
    best.expect("at least one iteration ran")
}

fn pmap_json(p: &PmapCounters) -> Json {
    Json::obj([
        ("nodes_allocated", Json::UInt(p.nodes_allocated)),
        ("nodes_recycled", Json::UInt(p.nodes_recycled)),
        ("fresh_allocations", Json::UInt(p.nodes_allocated.saturating_sub(p.nodes_recycled))),
        ("slab_bytes_allocated", Json::UInt(p.slab_bytes_allocated)),
        ("slab_bytes_freed", Json::UInt(p.slab_bytes_freed)),
        ("bytes_live", Json::UInt(p.bytes_live())),
        ("merge_calls", Json::UInt(p.merge_calls)),
        ("identity_preserved", Json::UInt(p.identity_preserved)),
    ])
}

/// Per-channel `(sharing_wall_s, sharing nodes_allocated)` from a pre-change
/// `BENCH_state_sharing.json` (its sharing mode is this bench's
/// configuration: default config, jobs=1, fast paths on).
fn load_baseline(path: &str) -> Vec<(u64, f64, u64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("relational_hotpath: cannot read baseline {path}: {e}"));
    let doc = Json::parse(&text)
        .unwrap_or_else(|e| panic!("relational_hotpath: baseline {path} is not JSON: {e}"));
    let Some(Json::Arr(sizes)) = doc.get("sizes") else {
        panic!("relational_hotpath: baseline {path} has no sizes array");
    };
    sizes
        .iter()
        .map(|s| {
            let channels = s.get("channels").and_then(Json::as_u64).expect("baseline channels");
            let wall = match s.get("sharing_wall_s") {
                Some(Json::Float(w)) => *w,
                other => panic!("baseline sharing_wall_s missing or not a float: {other:?}"),
            };
            let nodes = s
                .get("sharing_pmap")
                .and_then(|p| p.get("nodes_allocated"))
                .and_then(Json::as_u64)
                .expect("baseline nodes_allocated");
            (channels, wall, nodes)
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_relational_hotpath.json".into());
    let baseline = args.next().map(|p| load_baseline(&p));

    let mut sizes = Vec::new();
    let mut summary = None;
    for channels in CHANNELS {
        let program = family_program(channels, seed);
        let kloc = family_kloc(channels, seed);

        let spec = run_mode(&program, false);
        let generic = run_mode(&program, true);

        // The differential contract: the specialized kernels are
        // instantiations of the generic bodies, so disabling them must not
        // change a single observable bit.
        let alarms_spec: Vec<String> = spec.result.alarms.iter().map(|a| a.to_string()).collect();
        let alarms_gen: Vec<String> = generic.result.alarms.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            alarms_spec, alarms_gen,
            "channels={channels}: debug_generic_kernels changed the alarm list"
        );
        assert_eq!(
            spec.result.main_census, generic.result.main_census,
            "channels={channels}: debug_generic_kernels changed the main-loop census"
        );
        assert_eq!(
            spec.result.main_invariant.as_ref().map(|s| format!("{s}")),
            generic.result.main_invariant.as_ref().map(|s| format!("{s}")),
            "channels={channels}: debug_generic_kernels changed the main invariant"
        );
        // Kernel dispatch must not change what the state algebra allocates.
        assert_eq!(
            spec.pmap.nodes_allocated, generic.pmap.nodes_allocated,
            "channels={channels}: debug_generic_kernels changed pmap allocation counts"
        );
        assert!(spec.pmap.nodes_recycled > 0, "channels={channels}: slab recycled no nodes");

        let base = baseline.as_ref().and_then(|b| b.iter().find(|(c, _, _)| *c == channels as u64));
        let mut row = vec![
            ("channels", Json::UInt(channels as u64)),
            ("kloc", Json::Float(kloc)),
            ("alarms", Json::UInt(alarms_spec.len() as u64)),
            ("loop_iterations", Json::UInt(spec.result.stats.loop_iterations)),
            ("specialized_wall_s", Json::Float(spec.wall)),
            ("generic_wall_s", Json::Float(generic.wall)),
            ("kernel_speedup", Json::Float(generic.wall / spec.wall)),
            ("specialized_pmap", pmap_json(&spec.pmap)),
            ("generic_pmap", pmap_json(&generic.pmap)),
        ];
        let mut base_note = String::new();
        if let Some(&(_, base_wall, base_nodes)) = base {
            let wall_speedup = base_wall / spec.wall;
            let fresh = spec.pmap.nodes_allocated.saturating_sub(spec.pmap.nodes_recycled);
            let fresh_reduction = 1.0 - fresh as f64 / base_nodes as f64;
            row.push(("baseline_wall_s", Json::Float(base_wall)));
            row.push(("baseline_nodes_allocated", Json::UInt(base_nodes)));
            row.push(("wall_speedup_vs_baseline", Json::Float(wall_speedup)));
            row.push(("fresh_alloc_reduction_vs_baseline", Json::Float(fresh_reduction)));
            summary = Some((channels, wall_speedup, fresh_reduction));
            base_note = format!(
                ", vs baseline {base_wall:.3}s = {wall_speedup:.2}x \
                 ({:.1}% fewer fresh node allocations)",
                fresh_reduction * 100.0
            );
        }
        sizes.push(Json::obj(row));
        eprintln!(
            "channels={channels}: specialized {:.3}s vs generic {:.3}s ({:.2}x), \
             recycled {}/{} nodes{base_note}",
            spec.wall,
            generic.wall,
            generic.wall / spec.wall,
            spec.pmap.nodes_recycled,
            spec.pmap.nodes_allocated,
        );
    }

    let summary_json = match summary {
        Some((channels, wall_speedup, fresh_reduction)) => Json::obj([
            ("channels", Json::UInt(channels as u64)),
            ("wall_speedup_vs_baseline", Json::Float(wall_speedup)),
            ("fresh_alloc_reduction_vs_baseline", Json::Float(fresh_reduction)),
        ]),
        None => Json::Null,
    };
    let doc = Json::obj([
        ("experiment", Json::str("relational_hotpath")),
        (
            "host_cpus",
            Json::UInt(std::thread::available_parallelism().map_or(1, |n| n.get() as u64)),
        ),
        ("seed", Json::UInt(seed)),
        ("iterations", Json::UInt(ITERATIONS as u64)),
        ("sizes", Json::Arr(sizes)),
        ("summary", summary_json),
    ]);
    let rendered = doc.to_string();
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("relational_hotpath: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("{rendered}");
}
