//! `repro` — regenerates every figure and table of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro --experiment all            # everything (slow: includes fig2)
//! repro --experiment fig2           # Fig. 2: analysis time vs kLOC
//! repro --experiment alarms         # Sect. 8: the refinement alarm ladder
//! repro --experiment packopt        # Sect. 7.2.2: packing optimization
//! repro --experiment census         # Sect. 9.4.1: invariant census
//! repro --experiment envmap         # Sect. 6.1.2: functional-map sharing
//! repro --experiment thresholds     # Sect. 7.1.2 ablation
//! repro --experiment delayed        # Sect. 7.1.3 ablation
//! repro --experiment unroll         # Sect. 7.1.1 + 7.1.5 ablation
//! repro --experiment filter         # Sect. 6.2.3 filter micro-study
//! repro --experiment slice          # Sect. 3.3 classical vs abstract slices
//! repro --scale 0.2                 # shrink the workloads (default 0.2;
//!                                   # 1.0 ≈ the paper's 75 kLOC ceiling)
//! repro --metrics FILE              # (fig2) also write the aggregated
//!                                   # astree-metrics/1 telemetry document
//! ```
//!
//! The harness does not chase the paper's absolute 2003-hardware numbers;
//! it reproduces the *shapes*: who wins, by what rough factor, and where
//! behaviour flips. Expected shapes are printed next to each result.

use astree_bench::{family_kloc, family_program, print_table, refinement_ladder, timed_analysis};
use astree_core::{AnalysisConfig, AnalysisSession};
use astree_frontend::Frontend;
use astree_gen::{generate, BugKind, GenConfig};
use astree_pmap::PMap;
use astree_slicer::Slicer;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut experiment = "all".to_string();
    let mut scale = 0.2f64;
    let mut metrics: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--experiment" | "-e" => {
                experiment = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--scale" | "-s" => {
                scale = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(0.2);
                i += 2;
            }
            "--metrics" | "-m" => {
                metrics = args.get(i + 1).cloned();
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let run = |name: &str| experiment == "all" || experiment == name;
    if run("fig2") {
        fig2(scale, metrics.as_deref());
    }
    if run("alarms") {
        alarms(scale);
    }
    if run("packopt") {
        packopt(scale);
    }
    if run("census") {
        census(scale);
    }
    if run("envmap") {
        envmap();
    }
    if run("thresholds") {
        thresholds();
    }
    if run("delayed") {
        delayed();
    }
    if run("unroll") {
        unroll();
    }
    if run("filter") {
        filter();
    }
    if run("slice") {
        slice();
    }
}

fn banner(title: &str, expectation: &str) {
    println!("\n=== {title} ===");
    println!("paper shape: {expectation}\n");
}

/// Fig. 2: total analysis time against program size.
fn fig2(scale: f64, metrics: Option<&str>) {
    banner(
        "E1 / Fig. 2 — total analysis time vs kLOC",
        "monotone, near-linear-to-mildly-superlinear growth up to the \
         75 kLOC ceiling (paper: ~1h40 at 75 kLOC on 2003 hardware)",
    );
    // --scale 1.0 reaches the paper's 75 kLOC ceiling.
    let ceiling = astree_gen::channels_for_kloc(75.0 * scale);
    let sizes: Vec<usize> = [0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0]
        .iter()
        .map(|f| ((ceiling as f64 * f) as usize).max(2))
        .collect();
    // One collector spans the whole sweep: domain/phase totals accumulate
    // across sizes into a single astree-metrics/1 document.
    let collector = metrics.map(|_| astree_obs::Collector::new());
    let mut rows = Vec::new();
    for &channels in &sizes {
        let kloc = family_kloc(channels, 7);
        let program = family_program(channels, 7);
        let (result, dt) = match &collector {
            Some(c) => {
                let t0 = Instant::now();
                let r = AnalysisSession::builder(&program).recorder(c).build().run();
                let dt = t0.elapsed();
                (r, dt)
            }
            None => timed_analysis(&program, AnalysisConfig::default()),
        };
        rows.push(vec![
            format!("{kloc:.2}"),
            format!("{}", result.stats.cells),
            format!("{}", result.stats.octagon_packs),
            format!("{}", result.alarms.len()),
            format!("{:.2}", dt.as_secs_f64()),
            format!("{}", result.stats.invariant_cells),
        ]);
    }
    print_table(
        &["kLOC", "cells", "oct packs", "alarms", "time (s)", "invariant cells (mem proxy)"],
        &rows,
    );
    if let (Some(path), Some(c)) = (metrics, &collector) {
        if let Err(e) = std::fs::write(path, c.to_json().to_string()) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(2);
        }
        println!("\nmetrics written to {path}");
    }
}

/// Sect. 8: the alarm ladder — each refinement removes a class of alarms.
fn alarms(scale: f64) {
    banner(
        "E2 / Sect. 8 — false alarms along the refinement ladder",
        "monotone collapse: baseline ≈ 1,200 → full ≈ 11 (even 3); here the \
         synthetic family reaches 0 with the full stack",
    );
    let channels = ((256.0 * scale) as usize).max(8);
    let program = family_program(channels, 7);
    println!("program: {} channels, {:.1} kLOC\n", channels, family_kloc(channels, 7));
    let mut rows = Vec::new();
    for (name, config) in refinement_ladder() {
        let (result, dt) = timed_analysis(&program, config);
        rows.push(vec![
            name.to_string(),
            format!("{}", result.alarms.len()),
            format!("{:.2}", dt.as_secs_f64()),
        ]);
    }
    print_table(&["configuration", "alarms", "time (s)"], &rows);
}

/// Sect. 7.2.2: re-running with only the useful octagon packs.
fn packopt(scale: f64) {
    banner(
        "E3 / Sect. 7.2.2 — packing optimization",
        "a large fraction of packs is discardable with identical alarms and \
         lower cost (paper: 2,600 → 400 packs, 1h40 → 40min, 550 → 150 MB)",
    );
    let channels = ((256.0 * scale) as usize).max(8);
    let program = family_program(channels, 7);
    let (full, t_full) = timed_analysis(&program, AnalysisConfig::default());
    let mut optimized = AnalysisConfig::default();
    optimized.octagon_pack_filter = Some(full.stats.useful_octagon_packs.clone());
    let (opt, t_opt) = timed_analysis(&program, optimized);
    print_table(
        &["run", "octagon packs", "alarms", "time (s)", "invariant cells"],
        &[
            vec![
                "full (all packs)".into(),
                format!("{}", full.stats.octagon_packs),
                format!("{}", full.alarms.len()),
                format!("{:.2}", t_full.as_secs_f64()),
                format!("{}", full.stats.invariant_cells),
            ],
            vec![
                "useful packs only".into(),
                format!("{}", opt.stats.octagon_packs),
                format!("{}", opt.alarms.len()),
                format!("{:.2}", t_opt.as_secs_f64()),
                format!("{}", opt.stats.invariant_cells),
            ],
        ],
    );
    assert_eq!(full.alarms.len(), opt.alarms.len(), "packing must preserve precision");
}

/// Sect. 9.4.1: the census of the main loop invariant.
fn census(scale: f64) {
    banner(
        "E4 / Sect. 9.4.1 — main loop invariant census",
        "a heterogeneous mix (paper: 6,900 bool + 9,600 interval + 25,400 \
         clock + 19,100 additive-oct + 19,200 subtractive-oct + 100 \
         decision trees + 1,900 ellipsoids)",
    );
    let channels = ((256.0 * scale) as usize).max(8);
    let program = family_program(channels, 7);
    let (result, _) = timed_analysis(&program, AnalysisConfig::default());
    let census = result.main_census.expect("reactive program");
    let paper = [6_900usize, 9_600, 25_400, 19_100 + 19_200, 0, 100, 1_900];
    let mut rows = Vec::new();
    for (i, e) in census.entries().iter().enumerate() {
        let paper_n = match i {
            3 => "19,100".to_string(),
            4 => "19,200".to_string(),
            _ => paper.get(i).map(|n| n.to_string()).unwrap_or_default(),
        };
        rows.push(vec![e.kind.to_string(), format!("{}", e.count), paper_n]);
    }
    print_table(&["assertion kind", "measured", "paper (75 kLOC)"], &rows);
    println!("\ntotal assertions: {}", census.total());
}

/// Sect. 6.1.2: sharing-aware functional maps vs naive per-cell joins.
fn envmap() {
    banner(
        "E5 / Sect. 6.1.2 — functional maps with sharing",
        "joins of environments differing in few cells are far cheaper than \
         joins of unshared copies (paper: ×7 end-to-end on a 10 kLOC example)",
    );
    let n = 20_000u32;
    let base: PMap<u32, i64> = (0..n).map(|k| (k, 0)).collect();
    // Branches touch 16 cells each — the typical test footprint.
    let mut left = base.clone();
    let mut right = base.clone();
    for i in 0..16 {
        left = left.insert(i * 7 % n, 1);
        right = right.insert(i * 13 % n, 2);
    }
    // Unshared copies: same contents, disjoint trees.
    let left_unshared: PMap<u32, i64> = left.iter().map(|(k, v)| (*k, *v)).collect();
    let right_unshared: PMap<u32, i64> = right.iter().map(|(k, v)| (*k, *v)).collect();
    let reps = 2_000;
    let t0 = Instant::now();
    for _ in 0..reps {
        let j = left.union_with(&right, |_, a, b| *a.max(b));
        std::hint::black_box(j);
    }
    let shared = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..reps {
        let j = left_unshared.union_with(&right_unshared, |_, a, b| *a.max(b));
        std::hint::black_box(j);
    }
    let unshared = t0.elapsed();
    print_table(
        &["environment join", "time for 2000 joins (ms)"],
        &[
            vec!["shared trees (analyzer)".into(), format!("{:.1}", shared.as_secs_f64() * 1e3)],
            vec!["unshared trees (naive)".into(), format!("{:.1}", unshared.as_secs_f64() * 1e3)],
        ],
    );
    println!(
        "\nspeedup from sharing: ×{:.1}",
        unshared.as_secs_f64() / shared.as_secs_f64().max(1e-9)
    );
}

/// Sect. 7.1.2: widening thresholds.
fn thresholds() {
    banner(
        "E6 / Sect. 7.1.2 — widening with thresholds",
        "with thresholds the affine update stabilizes below the ramp and the \
         dependent cast is proven safe; without, the loose bound alarms",
    );
    let src = r#"
        volatile double in;
        double x; int out;
        void main(void) {
            __astree_input_float(in, -5.0, 5.0);
            while (1) {
                x = 0.5 * x + in;
                out = (int)(x * 1000.0);
                __astree_wait();
            }
        }
    "#;
    let program = Frontend::new().compile_str(src).unwrap();
    let with = AnalysisSession::builder(&program).build().run();
    let mut cfg = AnalysisConfig::default();
    cfg.thresholds = astree_domains::Thresholds::none();
    let without = AnalysisSession::builder(&program).config(cfg).build().run();
    print_table(
        &["widening", "alarms"],
        &[
            vec!["with thresholds ±α·λᵏ".into(), format!("{}", with.alarms.len())],
            vec!["plain (straight to ±∞)".into(), format!("{}", without.alarms.len())],
        ],
    );
}

/// Sect. 7.1.3: delayed widening.
fn delayed() {
    banner(
        "E7 / Sect. 7.1.3 — delayed widening",
        "a clamped feedback stabilizes exactly after two plain-union \
         iterations; immediate widening overshoots to the next threshold \
         and a dependent array access raises a false alarm",
    );
    let src = r#"
        volatile int in;
        int x; int y; int tbl[14]; int out;
        void main(void) {
            __astree_input_int(in, 0, 3);
            while (1) {
                out = tbl[y + 6];       /* safe iff y <= 7 exactly */
                x = y + in;
                if (x > 7) { x = 7; }
                y = x;
                __astree_wait();
            }
        }
    "#;
    let program = Frontend::new().compile_str(src).unwrap();
    let mut rows = Vec::new();
    for (name, delay, grace) in
        [("no delay (widen at once)", 0u32, 0u32), ("delay 2 (default)", 2, 8), ("delay 4", 4, 8)]
    {
        let mut cfg = AnalysisConfig::default();
        cfg.widening_delay = delay;
        cfg.stabilization_grace = grace;
        // Octagons are disabled to isolate the iteration strategy.
        cfg.enable_octagons = false;
        let (result, _) = timed_analysis(&program, cfg);
        rows.push(vec![
            name.to_string(),
            format!("{}", result.alarms.len()),
            format!("{}", result.stats.loop_iterations),
        ]);
    }
    print_table(&["strategy", "alarms", "loop iterations"], &rows);
}

/// Sect. 7.1.1 + 7.1.5: loop unrolling and trace partitioning.
fn unroll() {
    banner(
        "E8 / Sect. 7.1.1 + 7.1.5 — loop unrolling and trace partitioning",
        "the small accumulator is proven exact only when fully unrolled; \
         the correlated branches are proven safe only when partitioned",
    );
    let src = r#"
        int i; int sum;
        void main(void) {
            sum = 0;
            for (i = 0; i < 5; i++) { sum = sum + i; }
        }
    "#;
    let program = Frontend::new().compile_str(src).unwrap();
    let mut rows = Vec::new();
    for n in [0u32, 1, 6] {
        let mut cfg = AnalysisConfig::default();
        cfg.loop_unroll = n;
        let (result, _) = timed_analysis(&program, cfg);
        rows.push(vec![format!("unroll {n}"), format!("{}", result.alarms.len())]);
    }
    print_table(&["unrolling", "alarms (accumulator)"], &rows);

    let src = r#"
        volatile int in;
        int mode; int d; int out;
        void step(int t) {
            if (t > 0) { mode = 1; d = t; } else { mode = 0; d = 0; }
            if (mode == 1) { out = 1000 / d; }
        }
        void main(void) {
            __astree_input_int(in, -100, 100);
            while (1) { step(in); __astree_wait(); }
        }
    "#;
    let program = Frontend::new().compile_str(src).unwrap();
    let mut rows = Vec::new();
    for (name, partitioned) in [("merged branches", false), ("partitioned `step`", true)] {
        let mut cfg = AnalysisConfig::default();
        cfg.enable_octagons = false;
        cfg.enable_dtrees = false;
        if partitioned {
            cfg.partitioned_functions.insert("step".into());
        }
        let (result, _) = timed_analysis(&program, cfg);
        rows.push(vec![name.to_string(), format!("{}", result.alarms.len())]);
    }
    print_table(&["trace handling", "alarms (division)"], &rows);
}

/// Sect. 6.2.3: the ellipsoid domain on isolated filters.
fn filter() {
    banner(
        "E9 / Sect. 6.2.3 — second-order digital filters",
        "the ellipsoid invariant bounds the filter state for every stable \
         (a, b); intervals + octagons alone lose it (float-overflow alarm)",
    );
    let mut rows = Vec::new();
    for (a, b) in [(1.5, 0.7), (1.2, 0.6), (0.8, 0.9), (0.1, 0.5)] {
        let src = format!(
            r#"
            volatile double in;
            double x; double y;
            void main(void) {{
                __astree_input_float(in, -1.0, 1.0);
                while (1) {{
                    double x1;
                    x1 = {a} * x - {b} * y + in;
                    y = x;
                    x = x1;
                    __astree_wait();
                }}
            }}
        "#
        );
        let program = Frontend::new().compile_str(&src).unwrap();
        let (with, _) = timed_analysis(&program, AnalysisConfig::default());
        let mut cfg = AnalysisConfig::default();
        cfg.enable_ellipsoids = false;
        let (without, _) = timed_analysis(&program, cfg);
        // The theoretical bound the invariant implies.
        let ell = astree_domains::Ellipsoid::top(a, b);
        let k = ell.min_invariant_k(1.0);
        let bound = astree_domains::Ellipsoid::new(a, b, k).x_bound();
        rows.push(vec![
            format!("a={a}, b={b}"),
            format!("{}", with.alarms.len()),
            format!("{}", without.alarms.len()),
            format!("{bound:.2}"),
        ]);
    }
    print_table(
        &["filter", "alarms (ellipsoids)", "alarms (disabled)", "|X| bound from k_min"],
        &rows,
    );
}

/// Sect. 3.3: classical slices are prohibitively large; abstract slices
/// (restricted to under-constrained variables) are small.
fn slice() {
    banner(
        "E/Sect. 3.3 — alarm slicing",
        "classical data/control slices cover most of the program; abstract \
         slices restricted to the variables the invariant knows too little \
         about are far smaller",
    );
    let src = generate(&GenConfig { channels: 8, seed: 99, bug: Some(BugKind::DivByZero) });
    let program = Frontend::new().compile_str(&src).unwrap();
    let result = AnalysisSession::builder(&program).build().run();
    let alarm = result.alarms.first().expect("injected bug is reported");
    let slicer = Slicer::new(&program);
    let classical = slicer.slice(alarm.stmt);
    let layout = astree_memory::CellLayout::new(&program, &astree_memory::LayoutConfig::default());
    let interesting = result
        .main_invariant
        .as_ref()
        .map(|inv| astree_core::under_constrained_vars(inv, &layout, 1e6))
        .unwrap_or_default();
    let abstract_slice = slicer.slice_restricted(alarm.stmt, &interesting);
    print_table(
        &["slice", "statements", "coverage"],
        &[
            vec![
                "classical (Weiser)".into(),
                format!("{} / {}", classical.len(), classical.total_stmts),
                format!("{:.0}%", 100.0 * classical.coverage()),
            ],
            vec![
                "abstract (under-constrained vars)".into(),
                format!("{} / {}", abstract_slice.len(), abstract_slice.total_stmts),
                format!("{:.0}%", 100.0 * abstract_slice.coverage()),
            ],
        ],
    );
}
