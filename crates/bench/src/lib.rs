//! Shared infrastructure for the benchmark harness and the `repro` binary:
//! workload construction, configuration ladders, and small measurement
//! helpers used by both the Criterion benches and the experiment driver.

use astree_core::{AnalysisConfig, AnalysisResult, AnalysisSession};
use astree_frontend::Frontend;
use astree_gen::{generate, GenConfig};
use astree_ir::Program;
use std::time::{Duration, Instant};

/// Compiles a family member with the given channel count.
pub fn family_program(channels: usize, seed: u64) -> Program {
    let src = generate(&GenConfig { channels, seed, bug: None });
    Frontend::new().compile_str(&src).expect("generated programs compile")
}

/// Generated source size in kLOC for a channel count.
pub fn family_kloc(channels: usize, seed: u64) -> f64 {
    let src = generate(&GenConfig { channels, seed, bug: None });
    astree_gen::line_count(&src) as f64 / 1000.0
}

/// Runs an analysis and returns (result, wall time).
pub fn timed_analysis(program: &Program, config: AnalysisConfig) -> (AnalysisResult, Duration) {
    let t0 = Instant::now();
    let result = AnalysisSession::builder(program).config(config).build().run();
    (result, t0.elapsed())
}

/// The refinement ladder of paper Sect. 3.1: each rung adds one of the
/// refinements the paper introduced, starting from the baseline analyzer
/// \[5\]. Alarm counts along the ladder reproduce the "1,200 → 11" collapse.
pub fn refinement_ladder() -> Vec<(&'static str, AnalysisConfig)> {
    let baseline = AnalysisConfig::baseline();
    let mut with_lin = baseline.clone();
    with_lin.enable_linearization = true;
    let mut with_oct = with_lin.clone();
    with_oct.enable_octagons = true;
    let mut with_dtree = with_oct.clone();
    with_dtree.enable_dtrees = true;
    let mut with_ell = with_dtree.clone();
    with_ell.enable_ellipsoids = true;
    let mut full = with_ell.clone();
    full.loop_unroll = 1;
    vec![
        ("baseline [5] (intervals + clock)", baseline),
        ("+ linearization (Sect. 6.3)", with_lin),
        ("+ octagons (Sect. 6.2.2)", with_oct),
        ("+ decision trees (Sect. 6.2.4)", with_dtree),
        ("+ ellipsoids (Sect. 6.2.3)", with_ell),
        ("+ loop unrolling (Sect. 7.1.1) = full", full),
    ]
}

/// A markdown-ish table printer for experiment outputs.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:width$} |", c, width = widths[i]));
        }
        s
    };
    println!("{}", line(headers.iter().map(|s| s.to_string()).collect()));
    println!(
        "|{}",
        widths.iter().map(|w| format!("{:-<width$}|", "", width = w + 2)).collect::<String>()
    );
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_in_refinements() {
        let rungs = refinement_ladder();
        assert_eq!(rungs.len(), 6);
        assert!(!rungs[0].1.enable_octagons);
        assert!(rungs.last().unwrap().1.enable_ellipsoids);
    }

    #[test]
    fn family_program_compiles() {
        let p = family_program(2, 1);
        assert!(p.validate().is_empty());
        assert!(family_kloc(2, 1) > 0.05);
    }
}
