//! Standalone scaling probe: one full analysis per size, printed as a
//! table (a lighter-weight alternative to `repro --experiment fig2`).
//!
//! Run with `cargo run --release -p astree-bench --example scale_probe`.

fn main() {
    println!("{:>8} {:>10} {:>10} {:>8} {:>12}", "channels", "kLOC", "cells", "alarms", "time");
    for channels in [2usize, 8, 32, 128, 512] {
        let src = astree_gen::generate(&astree_gen::GenConfig { channels, seed: 7, bug: None });
        let kloc = astree_gen::line_count(&src) as f64 / 1000.0;
        let p = astree_frontend::Frontend::new().compile_str(&src).unwrap();
        let t0 = std::time::Instant::now();
        let r = astree_core::AnalysisSession::builder(&p).build().run();
        println!(
            "{channels:>8} {kloc:>10.2} {:>10} {:>8} {:>12.2?}",
            r.stats.cells,
            r.alarms.len(),
            t0.elapsed()
        );
    }
}
