//! A backward program slicer for alarm inspection (paper Sect. 3.3).
//!
//! "If the slicing criterion is an alarm point, the extracted slice contains
//! the computations that led to the alarm." This is the classical data- and
//! control-dependence backward slice of Weiser \[34\], on the structured IR:
//! a statement enters the slice when it may define a *relevant* variable;
//! its uses become relevant in turn, and the conditions controlling sliced
//! statements are relevant too. Calls are summarized by the sets of
//! variables the callee may read and write (transitively).
//!
//! The paper observes such slices are often "prohibitively large" — the
//! [`Slice::coverage`] metric lets the experiments reproduce that
//! observation — and proposes *abstract slices* restricted to the variables
//! the invariant knows too little about; [`Slicer::slice_restricted`]
//! implements that filter given the set of under-constrained variables.
//!
//! # Examples
//!
//! ```
//! use astree_frontend::Frontend;
//! use astree_slicer::Slicer;
//!
//! let p = Frontend::new()
//!     .compile_str(
//!         "int a; int b; int c;
//!          void main(void) {
//!              a = 1;      /* in slice: flows into c */
//!              b = 2;      /* not in slice */
//!              c = a + 3;  /* criterion */
//!          }",
//!     )
//!     .unwrap();
//! let slicer = Slicer::new(&p);
//! let criterion = slicer.last_assignment_to(&p, "c").unwrap();
//! let slice = slicer.slice(criterion);
//! assert_eq!(slice.len(), 2);
//! ```

use astree_ir::{
    Access, Block, CallArg, Expr, FuncId, Lvalue, Program, Stmt, StmtId, StmtKind, VarId,
};
use std::collections::{BTreeSet, HashMap, HashSet};

/// A computed slice: the statements that may influence the criterion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slice {
    /// Statement ids in the slice (including the criterion).
    pub stmts: BTreeSet<StmtId>,
    /// Total statements in the program (for coverage reporting).
    pub total_stmts: usize,
}

impl Slice {
    /// Number of statements in the slice.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// `true` when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Fraction of the program the slice covers (the paper's
    /// "prohibitively large" metric).
    pub fn coverage(&self) -> f64 {
        if self.total_stmts == 0 {
            0.0
        } else {
            self.stmts.len() as f64 / self.total_stmts as f64
        }
    }

    /// `true` when the statement is in the slice.
    pub fn contains(&self, id: StmtId) -> bool {
        self.stmts.contains(&id)
    }
}

/// Per-function read/write summaries for call handling.
#[derive(Debug, Clone, Default)]
struct FuncSummary {
    reads: BTreeSet<VarId>,
    writes: BTreeSet<VarId>,
}

/// The slicer: precomputes def/use information and function summaries.
pub struct Slicer {
    summaries: HashMap<FuncId, FuncSummary>,
    total_stmts: usize,
    /// The function owning each statement.
    stmt_fn: HashMap<StmtId, FuncId>,
    program: Program,
}

impl Slicer {
    /// Builds a slicer for a program (clones it for self-containment).
    pub fn new(program: &Program) -> Slicer {
        let mut summaries: HashMap<FuncId, FuncSummary> = HashMap::new();
        // Fixpoint over the (acyclic) call graph.
        let n = program.funcs.len();
        for _ in 0..n + 1 {
            for (fi, f) in program.funcs.iter().enumerate() {
                let fid = FuncId(fi as u32);
                let mut s = FuncSummary::default();
                astree_ir::stmt::for_each_stmt(&f.body, &mut |st| {
                    collect_stmt_rw(st, &summaries, &mut s);
                });
                summaries.insert(fid, s);
            }
        }
        let mut total = 0usize;
        let mut stmt_fn = HashMap::new();
        for (fi, f) in program.funcs.iter().enumerate() {
            astree_ir::stmt::for_each_stmt(&f.body, &mut |st| {
                total += 1;
                stmt_fn.insert(st.id, FuncId(fi as u32));
            });
        }
        Slicer { summaries, total_stmts: total, stmt_fn, program: program.clone() }
    }

    /// Finds the last assignment statement writing `name` (test helper and
    /// a convenient way to pick criteria).
    pub fn last_assignment_to(&self, program: &Program, name: &str) -> Option<StmtId> {
        let var = program.var_by_name(name)?;
        let mut found = None;
        for f in &program.funcs {
            astree_ir::stmt::for_each_stmt(&f.body, &mut |s| {
                if let StmtKind::Assign(lv, _) = &s.kind {
                    if lv.base == var {
                        found = Some(s.id);
                    }
                }
            });
        }
        found
    }

    /// Computes the backward slice from an alarm point: every statement
    /// whose effects may reach the variables used at `criterion`.
    pub fn slice(&self, criterion: StmtId) -> Slice {
        self.slice_with_filter(criterion, None)
    }

    /// The *abstract slice* variant: only the `interesting` variables (those
    /// the invariant knows too little about) seed the relevant set, yielding
    /// much smaller slices (paper Sect. 3.3's proposal).
    pub fn slice_restricted(&self, criterion: StmtId, interesting: &HashSet<VarId>) -> Slice {
        self.slice_with_filter(criterion, Some(interesting))
    }

    fn slice_with_filter(&self, criterion: StmtId, filter: Option<&HashSet<VarId>>) -> Slice {
        // Seed: the variables used at the criterion statement.
        let mut relevant: BTreeSet<VarId> = BTreeSet::new();
        let mut in_slice: BTreeSet<StmtId> = BTreeSet::new();
        if let Some(stmt) = self.find_stmt(criterion) {
            let mut uses = BTreeSet::new();
            stmt_uses(&stmt, &self.summaries, &mut uses);
            if let StmtKind::Assign(lv, _) = &stmt.kind {
                // The criterion's own target is of interest too.
                uses.insert(lv.base);
            }
            for u in uses {
                if filter.map(|f| f.contains(&u)).unwrap_or(true) {
                    relevant.insert(u);
                }
            }
            in_slice.insert(criterion);
        }
        // Iterate the whole-program backward pass to a fixpoint (loops and
        // calls make one pass insufficient).
        let funcs: Vec<Block> = self.program.funcs.iter().map(|f| f.body.clone()).collect();
        loop {
            let before = (relevant.len(), in_slice.len());
            for body in &funcs {
                self.backward_block(body, criterion, &mut relevant, &mut in_slice, false);
            }
            if (relevant.len(), in_slice.len()) == before {
                break;
            }
        }
        Slice { stmts: in_slice, total_stmts: self.total_stmts }
    }

    /// One backward pass over a block. `forced` is set inside loops whose
    /// condition is already relevant (control dependence).
    fn backward_block(
        &self,
        block: &Block,
        criterion: StmtId,
        relevant: &mut BTreeSet<VarId>,
        in_slice: &mut BTreeSet<StmtId>,
        forced: bool,
    ) {
        for s in block.iter().rev() {
            self.backward_stmt(s, criterion, relevant, in_slice, forced);
        }
    }

    fn backward_stmt(
        &self,
        s: &Stmt,
        criterion: StmtId,
        relevant: &mut BTreeSet<VarId>,
        in_slice: &mut BTreeSet<StmtId>,
        forced: bool,
    ) {
        match &s.kind {
            StmtKind::Assign(lv, e) => {
                // The criterion is in the slice but its uses were already
                // seeded (possibly filtered for abstract slices).
                let active = relevant.contains(&lv.base) || forced;
                if active || s.id == criterion {
                    in_slice.insert(s.id);
                }
                if active {
                    // Strong kill only for whole-variable writes.
                    if lv.path.is_empty() && !forced {
                        relevant.remove(&lv.base);
                    }
                    let mut uses = BTreeSet::new();
                    expr_uses(e, &mut uses);
                    lvalue_index_uses(lv, &mut uses);
                    relevant.extend(uses);
                }
            }
            StmtKind::If(c, a, b) => {
                let marker = in_slice.len();
                self.backward_block(a, criterion, relevant, in_slice, forced);
                self.backward_block(b, criterion, relevant, in_slice, forced);
                let body_sliced = in_slice.len() > marker;
                if body_sliced || s.id == criterion || forced {
                    in_slice.insert(s.id);
                    expr_uses(c, relevant);
                }
            }
            StmtKind::While(_, c, body) => {
                let marker = in_slice.len();
                self.backward_block(body, criterion, relevant, in_slice, forced);
                let body_sliced = in_slice.len() > marker;
                if body_sliced || s.id == criterion || forced {
                    in_slice.insert(s.id);
                    expr_uses(c, relevant);
                }
            }
            StmtKind::Call(ret, callee, args) => {
                let summary = &self.summaries[callee];
                let writes_relevant =
                    ret.as_ref().map(|lv| relevant.contains(&lv.base)).unwrap_or(false)
                        || summary.writes.iter().any(|w| relevant.contains(w))
                        || args.iter().any(|a| match a {
                            CallArg::Ref(lv) => relevant.contains(&lv.base),
                            CallArg::Value(_) => false,
                        });
                if writes_relevant || s.id == criterion || forced {
                    in_slice.insert(s.id);
                    relevant.extend(summary.reads.iter().copied());
                    for a in args {
                        match a {
                            CallArg::Value(e) => expr_uses(e, relevant),
                            CallArg::Ref(lv) => {
                                relevant.insert(lv.base);
                            }
                        }
                    }
                }
            }
            StmtKind::Return(Some(e)) => {
                // Conservative: returns feed call results.
                if s.id == criterion || forced {
                    in_slice.insert(s.id);
                }
                expr_uses(e, relevant);
            }
            StmtKind::Return(None) | StmtKind::Wait => {
                if s.id == criterion || forced {
                    in_slice.insert(s.id);
                }
            }
            StmtKind::Assume(e) => {
                if s.id == criterion || forced {
                    in_slice.insert(s.id);
                    expr_uses(e, relevant);
                }
            }
            StmtKind::ReadVolatile(v) => {
                if relevant.contains(v) || s.id == criterion || forced {
                    in_slice.insert(s.id);
                }
            }
        }
    }

    fn find_stmt(&self, id: StmtId) -> Option<Stmt> {
        let mut found = None;
        for f in &self.program.funcs {
            astree_ir::stmt::for_each_stmt(&f.body, &mut |s| {
                if s.id == id {
                    found = Some(s.clone());
                }
            });
        }
        let _ = &self.stmt_fn;
        found
    }
}

fn expr_uses(e: &Expr, out: &mut BTreeSet<VarId>) {
    e.for_each_lvalue(&mut |lv| {
        out.insert(lv.base);
    });
}

fn lvalue_index_uses(lv: &Lvalue, out: &mut BTreeSet<VarId>) {
    for a in &lv.path {
        if let Access::Index(e) = a {
            expr_uses(e, out);
        }
    }
}

fn stmt_uses(s: &Stmt, summaries: &HashMap<FuncId, FuncSummary>, out: &mut BTreeSet<VarId>) {
    match &s.kind {
        StmtKind::Assign(lv, e) => {
            expr_uses(e, out);
            lvalue_index_uses(lv, out);
        }
        StmtKind::If(c, _, _) | StmtKind::While(_, c, _) | StmtKind::Assume(c) => expr_uses(c, out),
        StmtKind::Call(_, callee, args) => {
            if let Some(s) = summaries.get(callee) {
                out.extend(s.reads.iter().copied());
            }
            for a in args {
                match a {
                    CallArg::Value(e) => expr_uses(e, out),
                    CallArg::Ref(lv) => {
                        out.insert(lv.base);
                    }
                }
            }
        }
        StmtKind::Return(Some(e)) => expr_uses(e, out),
        _ => {}
    }
}

fn collect_stmt_rw(s: &Stmt, summaries: &HashMap<FuncId, FuncSummary>, out: &mut FuncSummary) {
    match &s.kind {
        StmtKind::Assign(lv, e) => {
            out.writes.insert(lv.base);
            expr_uses(e, &mut out.reads);
            lvalue_index_uses(lv, &mut out.reads);
        }
        StmtKind::If(c, _, _) | StmtKind::While(_, c, _) | StmtKind::Assume(c) => {
            expr_uses(c, &mut out.reads)
        }
        StmtKind::Call(ret, callee, args) => {
            if let Some(lv) = ret {
                out.writes.insert(lv.base);
            }
            if let Some(cs) = summaries.get(callee) {
                out.reads.extend(cs.reads.iter().copied());
                out.writes.extend(cs.writes.iter().copied());
            }
            for a in args {
                match a {
                    CallArg::Value(e) => expr_uses(e, &mut out.reads),
                    CallArg::Ref(lv) => {
                        out.writes.insert(lv.base);
                        out.reads.insert(lv.base);
                    }
                }
            }
        }
        StmtKind::Return(Some(e)) => expr_uses(e, &mut out.reads),
        StmtKind::ReadVolatile(v) => {
            out.writes.insert(*v);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astree_frontend::Frontend;

    fn setup(src: &str) -> (Program, Slicer) {
        let p = Frontend::new().compile_str(src).expect("compiles");
        let s = Slicer::new(&p);
        (p, s)
    }

    #[test]
    fn data_dependence_chain() {
        let (p, s) = setup(
            "int a; int b; int c; int d;
             void main(void) {
                 a = 1;
                 b = a + 1;
                 d = 42;      /* independent */
                 c = b + 1;
             }",
        );
        let crit = s.last_assignment_to(&p, "c").unwrap();
        let slice = s.slice(crit);
        assert_eq!(slice.len(), 3, "{slice:?}");
        let d_stmt = s.last_assignment_to(&p, "d").unwrap();
        assert!(!slice.contains(d_stmt));
    }

    #[test]
    fn control_dependence_pulls_condition() {
        let (p, s) = setup(
            "int flag; int x; int y;
             void main(void) {
                 flag = 1;
                 y = 5;       /* feeds the condition */
                 if (y > 0) { x = 1; } else { x = 2; }
             }",
        );
        let crit = s.last_assignment_to(&p, "x").unwrap();
        let slice = s.slice(crit);
        // x's assignments, the if, and y's definition; flag stays out.
        let flag_stmt = s.last_assignment_to(&p, "flag").unwrap();
        assert!(!slice.contains(flag_stmt), "{slice:?}");
        assert!(slice.len() >= 3);
    }

    #[test]
    fn loops_reach_fixpoint() {
        let (p, s) = setup(
            "int i; int acc; int noise;
             void main(void) {
                 acc = 0;
                 noise = 7;
                 for (i = 0; i < 10; i++) {
                     acc = acc + i;
                 }
             }",
        );
        let crit = s.last_assignment_to(&p, "acc").unwrap();
        let slice = s.slice(crit);
        let noise_stmt = s.last_assignment_to(&p, "noise").unwrap();
        assert!(!slice.contains(noise_stmt));
        // i's update and the loop must be in (control + data).
        let i_init = s.last_assignment_to(&p, "i");
        assert!(i_init.is_some());
        assert!(slice.len() >= 4, "{slice:?}");
    }

    #[test]
    fn calls_use_summaries() {
        let (p, s) = setup(
            "int g; int out; int unrelated;
             void set_g(int v) { g = v * 2; }
             void main(void) {
                 unrelated = 3;
                 set_g(21);
                 out = g;
             }",
        );
        let crit = s.last_assignment_to(&p, "out").unwrap();
        let slice = s.slice(crit);
        let unrelated_stmt = s.last_assignment_to(&p, "unrelated").unwrap();
        assert!(!slice.contains(unrelated_stmt), "{slice:?}");
        // The call and the callee's assignment are in the slice.
        assert!(slice.len() >= 3, "{slice:?}");
    }

    #[test]
    fn restricted_slice_is_smaller() {
        let (p, s) = setup(
            "int a; int b; int c;
             void main(void) {
                 a = 1;
                 b = 2;
                 c = a + b;
             }",
        );
        let crit = s.last_assignment_to(&p, "c").unwrap();
        let full = s.slice(crit);
        // Only `a` is deemed interesting: b's definition drops out.
        let a = p.var_by_name("a").unwrap();
        let mut interesting = HashSet::new();
        interesting.insert(a);
        let restricted = s.slice_restricted(crit, &interesting);
        assert!(restricted.len() < full.len(), "{restricted:?} vs {full:?}");
    }

    #[test]
    fn coverage_metric() {
        let (p, s) = setup(
            "int a; int b;
             void main(void) { a = 1; b = a; }",
        );
        let crit = s.last_assignment_to(&p, "b").unwrap();
        let slice = s.slice(crit);
        assert!(slice.coverage() > 0.9); // everything feeds b here
    }
}
