//! Property tests relating the three evaluators of the IR: the constant
//! folder (`Program::const_eval`), the concrete interpreter, and (by
//! construction) C's semantics on the 32-bit target.

use astree_ir::*;
use proptest::prelude::*;

fn int_t() -> ScalarType {
    ScalarType::Int(IntType::INT)
}

/// Random constant integer expression.
fn const_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = (-100i64..100).prop_map(Expr::int).boxed();
    leaf.prop_recursive(depth, 32, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![
                Just(Binop::Add),
                Just(Binop::Sub),
                Just(Binop::Mul),
                Just(Binop::Div),
                Just(Binop::Rem),
                Just(Binop::BAnd),
                Just(Binop::BOr),
                Just(Binop::BXor),
                Just(Binop::Lt),
                Just(Binop::Le),
                Just(Binop::Eq),
                Just(Binop::Ne),
                Just(Binop::LAnd),
                Just(Binop::LOr),
            ],
        )
            .prop_map(|(a, b, op)| Expr::Binop(op, int_t(), Box::new(a), Box::new(b)))
    })
    .boxed()
}

/// Runs `x = e;` through the interpreter and returns x.
fn interp_eval(e: &Expr) -> Result<i64, ExecError> {
    let mut p = Program::new();
    let x = p.add_var(VarInfo::scalar("x", int_t(), VarKind::Global));
    p.add_func(Function {
        name: "main".into(),
        params: vec![],
        ret: None,
        locals: vec![],
        body: vec![Stmt::new(StmtKind::Assign(Lvalue::var(x), e.clone()))],
    });
    p.assign_stmt_ids();
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    it.run()?;
    Ok(it.store()[&(x, vec![])].as_int())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// When the constant folder produces a value, the interpreter agrees
    /// and raises no error.
    #[test]
    fn const_eval_agrees_with_interpreter(e in const_expr(4)) {
        if let Some(ConstValue::Int(v)) = Program::const_eval(&e) {
            let got = interp_eval(&e).expect("const-foldable implies error-free");
            prop_assert_eq!(got, v);
        }
    }

    /// When the folder declines (division by zero, overflow at the op
    /// type), the interpreter either errors or records an overflow event —
    /// it never silently produces a "constant".
    #[test]
    fn const_eval_decline_is_justified(e in const_expr(4)) {
        if Program::const_eval(&e).is_some() {
            return Ok(()); // covered by const_eval_agrees_with_interpreter
        }
        let mut p = Program::new();
        let x = p.add_var(VarInfo::scalar("x", int_t(), VarKind::Global));
        p.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::new(StmtKind::Assign(Lvalue::var(x), e.clone()))],
        });
        p.assign_stmt_ids();
        let mut inputs = SeededInputs::new(1);
        let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
        let ran = it.run();
        prop_assert!(
            ran.is_err() || !it.events().is_empty(),
            "folder declined but execution was clean: {e:?}"
        );
    }

    /// Wrapping conversions agree between `IntType::wrap` and the
    /// interpreter's cast semantics.
    #[test]
    fn casts_wrap_consistently(v in any::<i64>()) {
        for it in [IntType::UCHAR, IntType::SCHAR, IntType::SHORT, IntType::USHORT,
                   IntType::INT, IntType::UINT, IntType::BOOL] {
            let e = Expr::Cast(ScalarType::Int(it), Box::new(Expr::Int(v, IntType::INT)));
            // const_eval wraps the same way (when the payload fits `int`).
            if IntType::INT.contains(v) {
                if let Some(ConstValue::Int(folded)) = Program::const_eval(&e) {
                    prop_assert_eq!(folded, it.wrap(v));
                    prop_assert!(it.contains(folded));
                }
            }
        }
    }

    /// The pretty-printer emits text for every generated expression
    /// (never panics, never empty).
    #[test]
    fn pretty_never_empty(e in const_expr(3)) {
        let p = Program::new();
        let s = astree_ir::pretty::expr_to_string(&p, &e);
        prop_assert!(!s.is_empty());
    }
}
