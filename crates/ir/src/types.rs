//! Scalar and aggregate types of the analyzed C subset.
//!
//! The target machine model is the 32-bit embedded platform of the paper's
//! program family: `char` is 8 bits, `short` 16, `int` and `long` 32, with
//! IEEE-754 `float`/`double`. Enumerations and `_Bool` are integers
//! (paper Sect. 6.1.1: "Enumeration types, including the booleans, are
//! considered to be integers").

use std::fmt;

/// An integer type: a bit-width and a signedness.
///
/// All concrete integer values fit in `i64` since the model caps widths at
/// 32 bits (the paper's target has 32-bit `int`/`long`).
///
/// # Examples
///
/// ```
/// use astree_ir::IntType;
/// assert_eq!(IntType::INT.min(), -2_147_483_648);
/// assert_eq!(IntType::UCHAR.max(), 255);
/// assert!(IntType::BOOL.contains(1));
/// assert!(!IntType::BOOL.contains(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntType {
    /// Width in bits, at most 32.
    pub bits: u8,
    /// `true` for two's-complement signed types.
    pub signed: bool,
}

impl IntType {
    /// `_Bool`: values 0 and 1.
    pub const BOOL: IntType = IntType { bits: 1, signed: false };
    /// `signed char`.
    pub const SCHAR: IntType = IntType { bits: 8, signed: true };
    /// `unsigned char` (plain `char` is unsigned on the target).
    pub const UCHAR: IntType = IntType { bits: 8, signed: false };
    /// `short`.
    pub const SHORT: IntType = IntType { bits: 16, signed: true };
    /// `unsigned short`.
    pub const USHORT: IntType = IntType { bits: 16, signed: false };
    /// `int` (and `long`: both 32-bit on the target).
    pub const INT: IntType = IntType { bits: 32, signed: true };
    /// `unsigned int` / `unsigned long`.
    pub const UINT: IntType = IntType { bits: 32, signed: false };

    /// Smallest representable value.
    pub fn min(self) -> i64 {
        if self.signed {
            -(1i64 << (self.bits - 1))
        } else {
            0
        }
    }

    /// Largest representable value.
    pub fn max(self) -> i64 {
        if self.signed {
            (1i64 << (self.bits - 1)) - 1
        } else {
            (1i64 << self.bits) - 1
        }
    }

    /// Returns `true` if `v` is representable in this type.
    pub fn contains(self, v: i64) -> bool {
        v >= self.min() && v <= self.max()
    }

    /// `true` for the `_Bool` type, whose conversions normalize any non-zero
    /// value to 1 (C 6.3.1.2) instead of wrapping.
    pub fn is_bool(self) -> bool {
        self.bits == 1
    }

    /// Wraps `v` into this type's range: `_Bool` normalizes to 0/1, other
    /// types use two's-complement/modulo semantics (the behaviour of a C
    /// *conversion*, as opposed to an arithmetic overflow, which the
    /// analyzer treats as an error).
    pub fn wrap(self, v: i64) -> i64 {
        if self.is_bool() {
            return (v != 0) as i64;
        }
        let m = 1i128 << self.bits;
        let mut r = (v as i128).rem_euclid(m);
        if self.signed && r >= m / 2 {
            r -= m;
        }
        r as i64
    }

    /// The integer-promoted type: anything narrower than `int` becomes `int`
    /// (C usual arithmetic conversions on the 32-bit target).
    pub fn promoted(self) -> IntType {
        if self.bits < 32 {
            IntType::INT
        } else {
            self
        }
    }
}

impl fmt::Display for IntType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.bits, self.signed) {
            (1, false) => write!(f, "_Bool"),
            (8, true) => write!(f, "signed char"),
            (8, false) => write!(f, "unsigned char"),
            (16, true) => write!(f, "short"),
            (16, false) => write!(f, "unsigned short"),
            (32, true) => write!(f, "int"),
            (32, false) => write!(f, "unsigned int"),
            (b, true) => write!(f, "int{b}_t"),
            (b, false) => write!(f, "uint{b}_t"),
        }
    }
}

/// A floating-point type of the IEEE-754 target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FloatKind {
    /// `float`: binary32.
    F32,
    /// `double`: binary64.
    F64,
}

impl FloatKind {
    /// Largest finite magnitude of the format.
    pub fn max_finite(self) -> f64 {
        match self {
            FloatKind::F32 => f32::MAX as f64,
            FloatKind::F64 => f64::MAX,
        }
    }

    /// Rounds a mathematically exact `f64` result to this format's grid with
    /// round-to-nearest (what the hardware would store in a variable of this
    /// type).
    pub fn round_nearest(self, x: f64) -> f64 {
        match self {
            FloatKind::F32 => x as f32 as f64,
            FloatKind::F64 => x,
        }
    }
}

impl fmt::Display for FloatKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloatKind::F32 => write!(f, "float"),
            FloatKind::F64 => write!(f, "double"),
        }
    }
}

/// A scalar type: the type of every expression in the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// An integer (or boolean or enumeration) type.
    Int(IntType),
    /// A floating-point type.
    Float(FloatKind),
}

impl ScalarType {
    /// `true` for integer scalars.
    pub fn is_int(self) -> bool {
        matches!(self, ScalarType::Int(_))
    }

    /// `true` for floating-point scalars.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::Float(_))
    }

    /// The C usual-arithmetic-conversion result of combining two scalar
    /// operand types on the 32-bit target.
    pub fn usual_conversion(a: ScalarType, b: ScalarType) -> ScalarType {
        use ScalarType::*;
        match (a, b) {
            (Float(FloatKind::F64), _) | (_, Float(FloatKind::F64)) => Float(FloatKind::F64),
            (Float(FloatKind::F32), _) | (_, Float(FloatKind::F32)) => Float(FloatKind::F32),
            (Int(x), Int(y)) => {
                let (x, y) = (x.promoted(), y.promoted());
                // Both are 32-bit after promotion; unsigned wins.
                if !x.signed || !y.signed {
                    Int(IntType::UINT)
                } else {
                    Int(IntType::INT)
                }
            }
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarType::Int(t) => t.fmt(f),
            ScalarType::Float(t) => t.fmt(f),
        }
    }
}

/// Index of a record (struct) definition in [`crate::Program::records`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u32);

/// A record (struct) definition: named, typed fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordDef {
    /// Struct tag or synthesized name.
    pub name: String,
    /// Field names and types, in declaration order.
    pub fields: Vec<(String, Type)>,
}

/// A (possibly aggregate) object type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A scalar.
    Scalar(ScalarType),
    /// A fixed-size array.
    Array(Box<Type>, usize),
    /// A record, by id into the program's record table.
    Record(RecordId),
}

impl Type {
    /// Convenience constructor for an integer scalar type.
    pub fn int(t: IntType) -> Type {
        Type::Scalar(ScalarType::Int(t))
    }

    /// Convenience constructor for a float scalar type.
    pub fn float(k: FloatKind) -> Type {
        Type::Scalar(ScalarType::Float(k))
    }

    /// Returns the scalar type if this is a scalar.
    pub fn as_scalar(&self) -> Option<ScalarType> {
        match self {
            Type::Scalar(s) => Some(*s),
            _ => None,
        }
    }

    /// Number of scalar cells an object of this type expands to
    /// (arrays element-wise, records field-wise), given the record table.
    pub fn scalar_count(&self, records: &[RecordDef]) -> usize {
        match self {
            Type::Scalar(_) => 1,
            Type::Array(elem, n) => n * elem.scalar_count(records),
            Type::Record(id) => {
                records[id.0 as usize].fields.iter().map(|(_, t)| t.scalar_count(records)).sum()
            }
        }
    }
}

impl From<ScalarType> for Type {
    fn from(s: ScalarType) -> Type {
        Type::Scalar(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges() {
        assert_eq!(IntType::INT.min(), i32::MIN as i64);
        assert_eq!(IntType::INT.max(), i32::MAX as i64);
        assert_eq!(IntType::UINT.min(), 0);
        assert_eq!(IntType::UINT.max(), u32::MAX as i64);
        assert_eq!(IntType::SCHAR.min(), -128);
        assert_eq!(IntType::BOOL.max(), 1);
    }

    #[test]
    fn wrap_semantics() {
        assert_eq!(IntType::UCHAR.wrap(256), 0);
        assert_eq!(IntType::UCHAR.wrap(-1), 255);
        assert_eq!(IntType::SCHAR.wrap(128), -128);
        assert_eq!(IntType::INT.wrap(i32::MAX as i64 + 1), i32::MIN as i64);
        assert_eq!(IntType::UINT.wrap(-1), u32::MAX as i64);
        assert_eq!(IntType::BOOL.wrap(3), 1);
        assert_eq!(IntType::BOOL.wrap(2), 1);
        assert_eq!(IntType::BOOL.wrap(0), 0);
        assert!(IntType::BOOL.is_bool());
        assert!(!IntType::INT.is_bool());
    }

    #[test]
    fn promotions() {
        assert_eq!(IntType::SCHAR.promoted(), IntType::INT);
        assert_eq!(IntType::USHORT.promoted(), IntType::INT);
        assert_eq!(IntType::UINT.promoted(), IntType::UINT);
    }

    #[test]
    fn usual_conversions() {
        use ScalarType::*;
        assert_eq!(
            ScalarType::usual_conversion(Int(IntType::SCHAR), Int(IntType::SCHAR)),
            Int(IntType::INT)
        );
        assert_eq!(
            ScalarType::usual_conversion(Int(IntType::UINT), Int(IntType::INT)),
            Int(IntType::UINT)
        );
        assert_eq!(
            ScalarType::usual_conversion(Float(FloatKind::F32), Int(IntType::INT)),
            Float(FloatKind::F32)
        );
        assert_eq!(
            ScalarType::usual_conversion(Float(FloatKind::F32), Float(FloatKind::F64)),
            Float(FloatKind::F64)
        );
    }

    #[test]
    fn scalar_counts() {
        let records = vec![RecordDef {
            name: "pair".into(),
            fields: vec![
                ("a".into(), Type::int(IntType::INT)),
                ("b".into(), Type::Array(Box::new(Type::float(FloatKind::F64)), 3)),
            ],
        }];
        let t = Type::Array(Box::new(Type::Record(RecordId(0))), 2);
        assert_eq!(t.scalar_count(&records), 8);
    }

    #[test]
    fn float_rounding_to_f32_grid() {
        assert_eq!(FloatKind::F32.round_nearest(0.1), 0.1f32 as f64);
        assert_eq!(FloatKind::F64.round_nearest(0.1), 0.1);
    }
}
