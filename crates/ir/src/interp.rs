//! A reference concrete interpreter for the IR.
//!
//! This is the executable counterpart of the collecting semantics `⟦S⟧` of
//! paper Sect. 5.4 and exists to *test the analyzer*: every state reached by
//! the interpreter must be contained in the invariants the analyzer computes
//! (soundness), and every run-time error the interpreter hits must be covered
//! by an alarm.
//!
//! Error semantics mirrors the analyzer's (Sect. 5.3): operations whose
//! erroneous outcomes still have non-erroneous nearby results (integer or
//! float overflow) record a [`RuntimeEvent`] and continue with the value
//! clipped to the representable range ("overflowing integers are wiped out
//! and not considered modulo"); operations with no non-erroneous
//! continuation (division by zero, out-of-bounds access, NaN production,
//! invalid casts) abort the trace with an [`ExecError`].

use crate::expr::{Access, Binop, Expr, Lvalue, Unop};
use crate::program::{FuncId, InputRange, Program, VarId, VarKind};
use crate::stmt::{Block, Stmt, StmtId, StmtKind};
use crate::types::{FloatKind, IntType, ScalarType, Type};
use std::collections::HashMap;

/// A concrete scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// An integer (any width fits in `i64`).
    Int(i64),
    /// A float (an `f32` value is stored as its exact `f64` image).
    Float(f64),
}

impl Value {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a float.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(f) => panic!("expected int, got float {f}"),
        }
    }

    /// The float payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer.
    pub fn as_float(self) -> f64 {
        match self {
            Value::Float(v) => v,
            Value::Int(i) => panic!("expected float, got int {i}"),
        }
    }

    /// C truthiness: non-zero is true.
    pub fn truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
        }
    }
}

/// A concrete memory cell: a root variable and a path of field indices and
/// concrete array subscripts.
pub type CellKey = (VarId, Vec<u32>);

/// The concrete store (all live cells).
pub type Store = HashMap<CellKey, Value>;

/// A recoverable run-time error event (analysis continues with clipped
/// values). These correspond one-to-one to analyzer alarm categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeEvent {
    /// Integer arithmetic exceeded the operation type's range.
    IntOverflow,
    /// Float arithmetic overflowed to ±∞.
    FloatOverflow,
}

/// An unrecoverable run-time error: the trace stops here.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Integer division or remainder by zero.
    DivByZero(StmtId),
    /// Array subscript outside the array bounds.
    OutOfBounds(StmtId),
    /// Shift amount outside `[0, width)`.
    ShiftRange(StmtId),
    /// A float operation produced NaN.
    NanProduced(StmtId),
    /// Float-to-integer cast out of the target range.
    InvalidCast(StmtId),
    /// An `assume` directive was violated (environment contract broken).
    AssumeViolated(StmtId),
    /// The step budget was exhausted (likely a non-terminating loop).
    StepBudget,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::DivByZero(s) => write!(f, "division by zero at stmt {}", s.0),
            ExecError::OutOfBounds(s) => write!(f, "out-of-bounds access at stmt {}", s.0),
            ExecError::ShiftRange(s) => write!(f, "shift out of range at stmt {}", s.0),
            ExecError::NanProduced(s) => write!(f, "NaN produced at stmt {}", s.0),
            ExecError::InvalidCast(s) => write!(f, "invalid cast at stmt {}", s.0),
            ExecError::AssumeViolated(s) => write!(f, "assumption violated at stmt {}", s.0),
            ExecError::StepBudget => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Maximum number of executed statements before aborting.
    pub max_steps: u64,
    /// Maximum number of `wait` clock ticks before stopping the run
    /// normally (the "maximal execution time" of paper Sect. 4).
    pub max_ticks: u64,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig { max_steps: 1_000_000, max_ticks: 1_000 }
    }
}

/// Supplies values for volatile input variables.
pub trait InputProvider {
    /// Produces the next value for volatile variable `var` whose declared
    /// range is `range`. Implementations must stay within the range.
    fn next(&mut self, var: VarId, range: &InputRange) -> Value;
}

/// An input provider driven by a simple deterministic LCG, staying mid-range
/// biased but covering bounds.
///
/// # Determinism contract
///
/// The value stream is a pure function of the seed: `SeededInputs::new(s)`
/// yields the same sequence on every platform and in every release. The
/// generator is xorshift64* over the fixed odd initial state
/// `s · 0x9E3779B97F4A7C15 | 1`, and 2/16 of the draws pin the declared
/// range's exact lower or upper bound so edge cases are exercised. The
/// differential soundness oracle (`astree-oracle`) relies on this to
/// identify an execution — and to replay and shrink a counterexample — by
/// the pair *(generator seed, execution seed)* alone; changing the mapping
/// invalidates every recorded campaign report, so treat it as a wire
/// format.
#[derive(Debug, Clone)]
pub struct SeededInputs {
    state: u64,
}

impl SeededInputs {
    /// Creates a provider from a seed.
    pub fn new(seed: u64) -> Self {
        SeededInputs { state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl InputProvider for SeededInputs {
    fn next(&mut self, _var: VarId, range: &InputRange) -> Value {
        match *range {
            InputRange::Int(lo, hi) => {
                let r = self.next_u64();
                // Occasionally hit the exact bounds to exercise edges.
                match r % 16 {
                    0 => Value::Int(lo),
                    1 => Value::Int(hi),
                    _ => {
                        let span = (hi - lo) as u64 + 1;
                        Value::Int(lo + (r % span) as i64)
                    }
                }
            }
            InputRange::Float(lo, hi) => {
                let r = self.next_u64();
                match r % 16 {
                    0 => Value::Float(lo),
                    1 => Value::Float(hi),
                    _ => {
                        let frac = (r >> 11) as f64 / (1u64 << 53) as f64;
                        Value::Float(lo + (hi - lo) * frac)
                    }
                }
            }
        }
    }
}

/// What a statement's execution asked the driver to do next.
enum Flow {
    Normal,
    Return(Option<Value>),
    /// `max_ticks` reached during `wait`: stop the run as a success.
    Stop,
}

/// The concrete interpreter.
///
/// # Examples
///
/// ```
/// use astree_ir::*;
///
/// // int x = 0; while (x < 3) { x = x + 1; }
/// let mut p = Program::new();
/// let x = p.add_var(VarInfo::scalar("x", ScalarType::Int(IntType::INT), VarKind::Global));
/// let t = ScalarType::Int(IntType::INT);
/// let body = vec![Stmt::new(StmtKind::Assign(
///     Lvalue::var(x),
///     Expr::Binop(Binop::Add, t, Box::new(Expr::var(x)), Box::new(Expr::int(1))),
/// ))];
/// let cond = Expr::Binop(Binop::Lt, t, Box::new(Expr::var(x)), Box::new(Expr::int(3)));
/// p.add_func(Function {
///     name: "main".into(), params: vec![], ret: None, locals: vec![],
///     body: vec![Stmt::new(StmtKind::While(LoopId(0), cond, body))],
/// });
/// p.assign_stmt_ids();
///
/// let mut inputs = SeededInputs::new(1);
/// let mut interp = Interp::new(&p, InterpConfig::default(), &mut inputs);
/// interp.run().unwrap();
/// assert_eq!(interp.store()[&(x, vec![])], Value::Int(3));
/// ```
pub struct Interp<'a, I: InputProvider> {
    program: &'a Program,
    config: InterpConfig,
    inputs: &'a mut I,
    store: Store,
    /// By-reference parameter bindings: callee param var → caller cell root.
    ref_bindings: HashMap<VarId, CellKey>,
    events: Vec<(StmtId, RuntimeEvent)>,
    steps: u64,
    ticks: u64,
    observer: Option<Box<dyn FnMut(StmtId, &Store) + 'a>>,
}

impl<'a, I: InputProvider> Interp<'a, I> {
    /// Creates an interpreter with all cells zero-initialized (C static
    /// initialization; the family always writes locals before reading).
    pub fn new(program: &'a Program, config: InterpConfig, inputs: &'a mut I) -> Self {
        let mut store = Store::new();
        for (i, v) in program.vars.iter().enumerate() {
            init_cells(&VarId(i as u32), &v.ty, program, &mut Vec::new(), &mut store);
        }
        Interp {
            program,
            config,
            inputs,
            store,
            ref_bindings: HashMap::new(),
            events: Vec::new(),
            steps: 0,
            ticks: 0,
            observer: None,
        }
    }

    /// Registers a callback invoked before each executed statement with the
    /// full store; used by soundness tests to collect reachable states.
    pub fn set_observer(&mut self, f: impl FnMut(StmtId, &Store) + 'a) {
        self.observer = Some(Box::new(f));
    }

    /// The current store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Recoverable events recorded so far.
    pub fn events(&self) -> &[(StmtId, RuntimeEvent)] {
        &self.events
    }

    /// Number of completed clock ticks.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Whether the run stopped because the tick budget was exhausted (as
    /// opposed to the entry function returning on its own). The soundness
    /// oracle treats budget-limited runs as *inconclusive* truncations of an
    /// infinite reactive loop, never as divergences.
    pub fn hit_tick_budget(&self) -> bool {
        self.ticks >= self.config.max_ticks
    }

    /// Runs the entry function to completion (or until `max_ticks`).
    ///
    /// # Errors
    ///
    /// Returns the first unrecoverable [`ExecError`] encountered.
    pub fn run(&mut self) -> Result<(), ExecError> {
        let entry = self.program.entry;
        self.exec_call(entry, &[], None, StmtId(0))?;
        Ok(())
    }

    fn exec_call(
        &mut self,
        func: FuncId,
        args: &[crate::stmt::CallArg],
        ret_into: Option<&Lvalue>,
        at: StmtId,
    ) -> Result<Flow, ExecError> {
        let f = self.program.func(func);
        // Evaluate arguments in the caller frame.
        let mut by_val: Vec<(VarId, Value)> = Vec::new();
        let mut by_ref: Vec<(VarId, CellKey)> = Vec::new();
        for (param, arg) in f.params.iter().zip(args) {
            match arg {
                crate::stmt::CallArg::Value(e) => {
                    let v = self.eval(e, at)?;
                    by_val.push((param.var, v));
                }
                crate::stmt::CallArg::Ref(lv) => {
                    let key = self.resolve(lv, at)?;
                    by_ref.push((param.var, key));
                }
            }
        }
        for (var, v) in by_val {
            self.store.insert((var, Vec::new()), v);
        }
        let mut saved = Vec::new();
        for (var, key) in by_ref {
            saved.push((var, self.ref_bindings.insert(var, key)));
        }
        // Zero locals on entry.
        for &l in &f.locals {
            init_cells(
                &l,
                &self.program.var(l).ty.clone(),
                self.program,
                &mut Vec::new(),
                &mut self.store,
            );
        }
        let body = f.body.clone();
        let flow = self.exec_block(&body)?;
        if let (Flow::Return(Some(v)), Some(lv)) = (&flow, ret_into) {
            let key = self.resolve(lv, at)?;
            self.store.insert(key, *v);
        }
        for (var, old) in saved {
            match old {
                Some(k) => {
                    self.ref_bindings.insert(var, k);
                }
                None => {
                    self.ref_bindings.remove(&var);
                }
            }
        }
        // `max_ticks` reached inside the callee stops the whole run; a
        // return is consumed here (call boundary).
        match flow {
            Flow::Stop => Ok(Flow::Stop),
            _ => Ok(Flow::Normal),
        }
    }

    fn exec_block(&mut self, block: &Block) -> Result<Flow, ExecError> {
        for s in block {
            match self.exec_stmt(s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<Flow, ExecError> {
        self.steps += 1;
        if self.steps > self.config.max_steps {
            return Err(ExecError::StepBudget);
        }
        if let Some(obs) = &mut self.observer {
            obs(s.id, &self.store);
        }
        match &s.kind {
            StmtKind::Assign(lv, e) => {
                let v = self.eval(e, s.id)?;
                let key = self.resolve(lv, s.id)?;
                self.store.insert(key, v);
                Ok(Flow::Normal)
            }
            StmtKind::If(c, then_b, else_b) => {
                let cv = self.eval(c, s.id)?;
                if cv.truthy() {
                    self.exec_block(then_b)
                } else {
                    self.exec_block(else_b)
                }
            }
            StmtKind::While(_, c, body) => loop {
                let cv = self.eval(c, s.id)?;
                if !cv.truthy() {
                    return Ok(Flow::Normal);
                }
                match self.exec_block(body)? {
                    Flow::Normal => {
                        self.steps += 1;
                        if self.steps > self.config.max_steps {
                            return Err(ExecError::StepBudget);
                        }
                        // Re-fire the observer at every loop-head arrival, not
                        // just the first: each iteration's back edge lands on a
                        // state that the abstract loop invariant claims to
                        // cover, and the soundness oracle must get to see it.
                        if let Some(obs) = &mut self.observer {
                            obs(s.id, &self.store);
                        }
                    }
                    other => return Ok(other),
                }
            },
            StmtKind::Call(ret, func, args) => {
                match self.exec_call(*func, args, ret.as_ref(), s.id)? {
                    Flow::Stop => Ok(Flow::Stop),
                    _ => Ok(Flow::Normal),
                }
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.eval(e, s.id)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Wait => {
                self.ticks += 1;
                if self.ticks >= self.config.max_ticks {
                    Ok(Flow::Stop)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::Assume(c) => {
                let cv = self.eval(c, s.id)?;
                if cv.truthy() {
                    Ok(Flow::Normal)
                } else {
                    Err(ExecError::AssumeViolated(s.id))
                }
            }
            StmtKind::ReadVolatile(v) => {
                let range = self
                    .program
                    .var(*v)
                    .volatile_input
                    .expect("validated: ReadVolatile on declared input");
                let val = self.inputs.next(*v, &range);
                self.store.insert((*v, Vec::new()), val);
                Ok(Flow::Normal)
            }
        }
    }

    /// Resolves an l-value to a concrete cell, checking array bounds.
    fn resolve(&mut self, lv: &Lvalue, at: StmtId) -> Result<CellKey, ExecError> {
        let root =
            self.ref_bindings.get(&lv.base).cloned().unwrap_or_else(|| (lv.base, Vec::new()));
        let (base, mut path) = root;
        let mut ty = self.program.lvalue_type(&Lvalue { base, path: Vec::new() });
        // Skip the prefix contributed by the ref binding.
        for step in &path {
            ty = match ty {
                Type::Array(elem, _) => (*elem).clone(),
                Type::Record(rid) => {
                    self.program.records[rid.0 as usize].fields[*step as usize].1.clone()
                }
                Type::Scalar(_) => ty,
            };
        }
        for a in &lv.path {
            match (a, ty) {
                (Access::Index(e), Type::Array(elem, n)) => {
                    let idx = self.eval(e, at)?.as_int();
                    if idx < 0 || idx as usize >= n {
                        return Err(ExecError::OutOfBounds(at));
                    }
                    path.push(idx as u32);
                    ty = (*elem).clone();
                }
                (Access::Field(fidx), Type::Record(rid)) => {
                    path.push(*fidx);
                    ty = self.program.records[rid.0 as usize].fields[*fidx as usize].1.clone();
                }
                (a, t) => panic!("ill-typed access {a:?} into {t:?}"),
            }
        }
        Ok((base, path))
    }

    /// Evaluates an expression.
    fn eval(&mut self, e: &Expr, at: StmtId) -> Result<Value, ExecError> {
        match e {
            Expr::Int(v, _) => Ok(Value::Int(*v)),
            Expr::Float(b, k) => Ok(Value::Float(k.round_nearest(b.get()))),
            Expr::Load(lv, _) => {
                let key = self.resolve(lv, at)?;
                Ok(*self.store.get(&key).unwrap_or(&Value::Int(0)))
            }
            Expr::Unop(op, t, a) => {
                let av = self.eval(a, at)?;
                self.unop(*op, *t, av, at)
            }
            Expr::Binop(op, t, a, b) => {
                let av = self.eval(a, at)?;
                let bv = self.eval(b, at)?;
                self.binop(*op, *t, av, bv, at)
            }
            Expr::Cast(t, a) => {
                let av = self.eval(a, at)?;
                self.cast(*t, av, at)
            }
        }
    }

    fn unop(&mut self, op: Unop, t: ScalarType, a: Value, at: StmtId) -> Result<Value, ExecError> {
        match (op, t, a) {
            (Unop::Neg, ScalarType::Int(it), Value::Int(x)) => {
                self.int_result(it, -(x as i128), at)
            }
            (Unop::Neg, ScalarType::Float(k), Value::Float(x)) => self.float_result(k, -x, at),
            (Unop::LNot, _, v) => Ok(Value::Int(!v.truthy() as i64)),
            (Unop::BNot, ScalarType::Int(it), Value::Int(x)) => Ok(Value::Int(it.wrap(!x))),
            (op, t, a) => panic!("ill-typed unop {op:?} at {t:?} on {a:?}"),
        }
    }

    fn binop(
        &mut self,
        op: Binop,
        t: ScalarType,
        a: Value,
        b: Value,
        at: StmtId,
    ) -> Result<Value, ExecError> {
        if op.is_logical() {
            let r = match op {
                Binop::LAnd => a.truthy() && b.truthy(),
                Binop::LOr => a.truthy() || b.truthy(),
                _ => unreachable!(),
            };
            return Ok(Value::Int(r as i64));
        }
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => {
                let it = match t {
                    ScalarType::Int(it) => it,
                    ScalarType::Float(_) => panic!("int operands at float type"),
                };
                if op.is_comparison() {
                    let r = match op {
                        Binop::Lt => x < y,
                        Binop::Le => x <= y,
                        Binop::Gt => x > y,
                        Binop::Ge => x >= y,
                        Binop::Eq => x == y,
                        Binop::Ne => x != y,
                        _ => unreachable!(),
                    };
                    return Ok(Value::Int(r as i64));
                }
                match op {
                    Binop::Add => self.int_result(it, x as i128 + y as i128, at),
                    Binop::Sub => self.int_result(it, x as i128 - y as i128, at),
                    Binop::Mul => self.int_result(it, x as i128 * y as i128, at),
                    Binop::Div => {
                        if y == 0 {
                            return Err(ExecError::DivByZero(at));
                        }
                        self.int_result(it, x as i128 / y as i128, at)
                    }
                    Binop::Rem => {
                        if y == 0 {
                            return Err(ExecError::DivByZero(at));
                        }
                        self.int_result(it, x as i128 % y as i128, at)
                    }
                    Binop::BAnd => Ok(Value::Int(it.wrap(x & y))),
                    Binop::BOr => Ok(Value::Int(it.wrap(x | y))),
                    Binop::BXor => Ok(Value::Int(it.wrap(x ^ y))),
                    Binop::Shl => {
                        if y < 0 || y >= it.bits as i64 {
                            return Err(ExecError::ShiftRange(at));
                        }
                        self.int_result(it, (x as i128) << y, at)
                    }
                    Binop::Shr => {
                        if y < 0 || y >= it.bits as i64 {
                            return Err(ExecError::ShiftRange(at));
                        }
                        Ok(Value::Int(x >> y))
                    }
                    _ => unreachable!(),
                }
            }
            (Value::Float(x), Value::Float(y)) => {
                if op.is_comparison() {
                    let r = match op {
                        Binop::Lt => x < y,
                        Binop::Le => x <= y,
                        Binop::Gt => x > y,
                        Binop::Ge => x >= y,
                        Binop::Eq => x == y,
                        Binop::Ne => x != y,
                        _ => unreachable!(),
                    };
                    return Ok(Value::Int(r as i64));
                }
                let k = match t {
                    ScalarType::Float(k) => k,
                    ScalarType::Int(_) => panic!("float operands at int type"),
                };
                let r = match op {
                    Binop::Add => x + y,
                    Binop::Sub => x - y,
                    Binop::Mul => x * y,
                    Binop::Div => x / y,
                    other => panic!("float {other:?} unsupported"),
                };
                self.float_result(k, r, at)
            }
            (a, b) => panic!("mixed operand kinds {a:?} {b:?} (frontend inserts casts)"),
        }
    }

    fn cast(&mut self, t: ScalarType, v: Value, at: StmtId) -> Result<Value, ExecError> {
        match (t, v) {
            (ScalarType::Int(it), Value::Int(x)) => Ok(Value::Int(it.wrap(x))),
            (ScalarType::Float(k), Value::Int(x)) => Ok(Value::Float(k.round_nearest(x as f64))),
            (ScalarType::Float(k), Value::Float(x)) => self.float_result(k, x, at),
            (ScalarType::Int(it), Value::Float(x)) => {
                if it.is_bool() {
                    return Ok(Value::Int((x != 0.0) as i64));
                }
                let tr = x.trunc();
                if tr.is_nan() || tr < it.min() as f64 || tr > it.max() as f64 {
                    return Err(ExecError::InvalidCast(at));
                }
                Ok(Value::Int(tr as i64))
            }
        }
    }

    /// Finishes an integer operation at type `it`: exact result `r` is
    /// checked against the range; overflow records an event and clips.
    fn int_result(&mut self, it: IntType, r: i128, at: StmtId) -> Result<Value, ExecError> {
        let (lo, hi) = (it.min() as i128, it.max() as i128);
        if r < lo || r > hi {
            self.events.push((at, RuntimeEvent::IntOverflow));
            Ok(Value::Int(r.clamp(lo, hi) as i64))
        } else {
            Ok(Value::Int(r as i64))
        }
    }

    /// Finishes a float operation at format `k`: round to the format grid,
    /// then handle NaN (abort) and infinities (event + clip).
    fn float_result(&mut self, k: FloatKind, r: f64, at: StmtId) -> Result<Value, ExecError> {
        let r = k.round_nearest(r);
        if r.is_nan() {
            return Err(ExecError::NanProduced(at));
        }
        if r.is_infinite() {
            self.events.push((at, RuntimeEvent::FloatOverflow));
            return Ok(Value::Float(if r > 0.0 { k.max_finite() } else { -k.max_finite() }));
        }
        Ok(Value::Float(r))
    }
}

/// Recursively zero-initializes the cells of a variable.
fn init_cells(var: &VarId, ty: &Type, program: &Program, path: &mut Vec<u32>, store: &mut Store) {
    match ty {
        Type::Scalar(ScalarType::Int(_)) => {
            store.insert((*var, path.clone()), Value::Int(0));
        }
        Type::Scalar(ScalarType::Float(_)) => {
            store.insert((*var, path.clone()), Value::Float(0.0));
        }
        Type::Array(elem, n) => {
            for i in 0..*n {
                path.push(i as u32);
                init_cells(var, elem, program, path, store);
                path.pop();
            }
        }
        Type::Record(rid) => {
            let fields = program.records[rid.0 as usize].fields.clone();
            for (i, (_, ft)) in fields.iter().enumerate() {
                path.push(i as u32);
                init_cells(var, ft, program, path, store);
                path.pop();
            }
        }
    }
}

/// Returns `true` if `kind` denotes a variable with whole-program lifetime.
pub fn is_persistent(kind: VarKind) -> bool {
    matches!(kind, VarKind::Global | VarKind::Static)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Function, VarInfo};
    use crate::stmt::LoopId;

    fn int_t() -> ScalarType {
        ScalarType::Int(IntType::INT)
    }

    fn simple_program(body: Block) -> (Program, VarId) {
        let mut p = Program::new();
        let x = p.add_var(VarInfo::scalar("x", int_t(), VarKind::Global));
        p.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body,
        });
        p.assign_stmt_ids();
        (p, x)
    }

    fn run(p: &Program) -> Result<Store, ExecError> {
        let mut inputs = SeededInputs::new(42);
        let mut i = Interp::new(p, InterpConfig::default(), &mut inputs);
        i.run()?;
        Ok(i.store().clone())
    }

    #[test]
    fn assign_and_arith() {
        let t = int_t();
        let (p, x) = simple_program(vec![Stmt::new(StmtKind::Assign(
            Lvalue::var(VarId(0)),
            Expr::Binop(Binop::Mul, t, Box::new(Expr::int(6)), Box::new(Expr::int(7))),
        ))]);
        let store = run(&p).unwrap();
        assert_eq!(store[&(x, vec![])], Value::Int(42));
    }

    #[test]
    fn division_by_zero_aborts() {
        let t = int_t();
        let (p, _) = simple_program(vec![Stmt::new(StmtKind::Assign(
            Lvalue::var(VarId(0)),
            Expr::Binop(Binop::Div, t, Box::new(Expr::int(1)), Box::new(Expr::int(0))),
        ))]);
        assert!(matches!(run(&p), Err(ExecError::DivByZero(_))));
    }

    #[test]
    fn overflow_clips_and_records() {
        let t = int_t();
        let (p, x) = simple_program(vec![Stmt::new(StmtKind::Assign(
            Lvalue::var(VarId(0)),
            Expr::Binop(
                Binop::Add,
                t,
                Box::new(Expr::int(i32::MAX as i64)),
                Box::new(Expr::int(1)),
            ),
        ))]);
        let mut inputs = SeededInputs::new(1);
        let mut i = Interp::new(&p, InterpConfig::default(), &mut inputs);
        i.run().unwrap();
        assert_eq!(i.store()[&(x, vec![])], Value::Int(i32::MAX as i64));
        assert_eq!(i.events().len(), 1);
        assert_eq!(i.events()[0].1, RuntimeEvent::IntOverflow);
    }

    #[test]
    fn loop_counts() {
        let t = int_t();
        let x = VarId(0);
        let body = vec![Stmt::new(StmtKind::Assign(
            Lvalue::var(x),
            Expr::Binop(Binop::Add, t, Box::new(Expr::var(x)), Box::new(Expr::int(1))),
        ))];
        let cond = Expr::Binop(Binop::Lt, t, Box::new(Expr::var(x)), Box::new(Expr::int(10)));
        let (p, x) = simple_program(vec![Stmt::new(StmtKind::While(LoopId(0), cond, body))]);
        let store = run(&p).unwrap();
        assert_eq!(store[&(x, vec![])], Value::Int(10));
    }

    #[test]
    fn array_oob_aborts() {
        let mut p = Program::new();
        let a = p.add_var(VarInfo {
            name: "a".into(),
            ty: Type::Array(Box::new(Type::int(IntType::INT)), 3),
            kind: VarKind::Global,
            volatile_input: None,
        });
        let body = vec![Stmt::new(StmtKind::Assign(Lvalue::index(a, Expr::int(3)), Expr::int(1)))];
        p.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body,
        });
        p.assign_stmt_ids();
        assert!(matches!(run(&p), Err(ExecError::OutOfBounds(_))));
    }

    #[test]
    fn volatile_reads_stay_in_range() {
        let mut p = Program::new();
        let v = p.add_var(VarInfo {
            name: "in".into(),
            ty: Type::int(IntType::INT),
            kind: VarKind::Global,
            volatile_input: Some(InputRange::Int(-5, 5)),
        });
        let x = p.add_var(VarInfo::scalar("x", int_t(), VarKind::Global));
        let t = int_t();
        let mut body = Vec::new();
        for _ in 0..50 {
            body.push(Stmt::new(StmtKind::ReadVolatile(v)));
            body.push(Stmt::new(StmtKind::Assign(
                Lvalue::var(x),
                Expr::Binop(Binop::Add, t, Box::new(Expr::var(x)), Box::new(Expr::var(v))),
            )));
        }
        p.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body,
        });
        p.assign_stmt_ids();
        let mut inputs = SeededInputs::new(7);
        let mut i = Interp::new(&p, InterpConfig::default(), &mut inputs);
        let mut max_in = i64::MIN;
        let mut min_in = i64::MAX;
        i.set_observer(move |_, _| {});
        i.run().unwrap();
        // All accumulated sums stay within 50 * 5 in magnitude.
        let xv = i.store()[&(x, vec![])].as_int();
        assert!(xv.abs() <= 250);
        min_in = min_in.min(xv);
        max_in = max_in.max(xv);
        let _ = (min_in, max_in);
    }

    #[test]
    fn wait_stops_at_max_ticks() {
        let (p, _) = simple_program(vec![Stmt::new(StmtKind::While(
            LoopId(0),
            Expr::int(1),
            vec![Stmt::new(StmtKind::Wait)],
        ))]);
        let mut inputs = SeededInputs::new(1);
        let mut i =
            Interp::new(&p, InterpConfig { max_steps: 1_000_000, max_ticks: 17 }, &mut inputs);
        i.run().unwrap();
        assert_eq!(i.ticks(), 17);
    }

    #[test]
    fn wait_inside_callee_stops_run() {
        let mut p = Program::new();
        let tick = Function {
            name: "tick".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::new(StmtKind::Wait)],
        };
        let tick_id = p.add_func(tick);
        let main = Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::new(StmtKind::While(
                LoopId(0),
                Expr::int(1),
                vec![Stmt::new(StmtKind::Call(None, tick_id, vec![]))],
            ))],
        };
        p.entry = p.add_func(main);
        p.assign_stmt_ids();
        let mut inputs = SeededInputs::new(1);
        let mut i =
            Interp::new(&p, InterpConfig { max_steps: 1_000_000, max_ticks: 9 }, &mut inputs);
        i.run().unwrap();
        assert_eq!(i.ticks(), 9);
    }

    #[test]
    fn call_by_ref_writes_caller_cell() {
        let mut p = Program::new();
        let g = p.add_var(VarInfo::scalar("g", int_t(), VarKind::Global));
        let prm = p.add_var(VarInfo::scalar("out", int_t(), VarKind::Param));
        let setter = Function {
            name: "set42".into(),
            params: vec![crate::program::Param {
                var: prm,
                kind: crate::program::ParamKind::ByRef,
            }],
            ret: None,
            locals: vec![],
            body: vec![Stmt::new(StmtKind::Assign(Lvalue::var(prm), Expr::int(42)))],
        };
        let setter_id = p.add_func(setter);
        let main = Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::new(StmtKind::Call(
                None,
                setter_id,
                vec![crate::stmt::CallArg::Ref(Lvalue::var(g))],
            ))],
        };
        let main_id = p.add_func(main);
        p.entry = main_id;
        p.assign_stmt_ids();
        let store = run(&p).unwrap();
        assert_eq!(store[&(g, vec![])], Value::Int(42));
    }

    #[test]
    fn return_value_lands_in_lvalue() {
        let mut p = Program::new();
        let g = p.add_var(VarInfo::scalar("g", int_t(), VarKind::Global));
        let f = Function {
            name: "seven".into(),
            params: vec![],
            ret: Some(int_t()),
            locals: vec![],
            body: vec![Stmt::new(StmtKind::Return(Some(Expr::int(7))))],
        };
        let f_id = p.add_func(f);
        let main = Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::new(StmtKind::Call(Some(Lvalue::var(g)), f_id, vec![]))],
        };
        p.entry = p.add_func(main);
        p.assign_stmt_ids();
        let store = run(&p).unwrap();
        assert_eq!(store[&(g, vec![])], Value::Int(7));
    }

    #[test]
    fn assume_violation_aborts() {
        let (p, _) = simple_program(vec![Stmt::new(StmtKind::Assume(Expr::int(0)))]);
        assert!(matches!(run(&p), Err(ExecError::AssumeViolated(_))));
    }

    #[test]
    fn float_f32_rounds_to_grid() {
        let mut p = Program::new();
        let x = p.add_var(VarInfo::scalar("x", ScalarType::Float(FloatKind::F32), VarKind::Global));
        let tf = ScalarType::Float(FloatKind::F32);
        let body = vec![Stmt::new(StmtKind::Assign(
            Lvalue::var(x),
            Expr::Binop(
                Binop::Add,
                tf,
                Box::new(Expr::Float(crate::expr::FloatBits(0.1f32 as f64), FloatKind::F32)),
                Box::new(Expr::Float(crate::expr::FloatBits(0.2f32 as f64), FloatKind::F32)),
            ),
        ))];
        p.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body,
        });
        p.assign_stmt_ids();
        let store = run(&p).unwrap();
        let got = store[&(x, vec![])].as_float();
        assert_eq!(got, (0.1f32 + 0.2f32) as f64);
    }

    #[test]
    fn shift_out_of_range_aborts() {
        let t = int_t();
        for amount in [40, -1] {
            let (p, _) = simple_program(vec![Stmt::new(StmtKind::Assign(
                Lvalue::var(VarId(0)),
                Expr::Binop(Binop::Shl, t, Box::new(Expr::int(1)), Box::new(Expr::int(amount))),
            ))]);
            assert!(matches!(run(&p), Err(ExecError::ShiftRange(_))));
        }
    }

    #[test]
    fn nan_production_aborts() {
        let mut p = Program::new();
        let x = p.add_var(VarInfo::scalar("x", ScalarType::Float(FloatKind::F64), VarKind::Global));
        let tf = ScalarType::Float(FloatKind::F64);
        let zero = || Box::new(Expr::Float(crate::expr::FloatBits(0.0), FloatKind::F64));
        let body = vec![Stmt::new(StmtKind::Assign(
            Lvalue::var(x),
            Expr::Binop(Binop::Div, tf, zero(), zero()),
        ))];
        p.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body,
        });
        p.assign_stmt_ids();
        assert!(matches!(run(&p), Err(ExecError::NanProduced(_))));
    }

    #[test]
    fn float_overflow_clips_and_records() {
        let mut p = Program::new();
        let x = p.add_var(VarInfo::scalar("x", ScalarType::Float(FloatKind::F64), VarKind::Global));
        let tf = ScalarType::Float(FloatKind::F64);
        let big = || Box::new(Expr::Float(crate::expr::FloatBits(1.0e308), FloatKind::F64));
        let body = vec![Stmt::new(StmtKind::Assign(
            Lvalue::var(x),
            Expr::Binop(Binop::Mul, tf, big(), big()),
        ))];
        p.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body,
        });
        p.assign_stmt_ids();
        let mut inputs = SeededInputs::new(1);
        let mut i = Interp::new(&p, InterpConfig::default(), &mut inputs);
        i.run().unwrap();
        assert_eq!(i.store()[&(x, vec![])], Value::Float(FloatKind::F64.max_finite()));
        let events = i.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].1, RuntimeEvent::FloatOverflow);
    }

    #[test]
    fn out_of_range_float_to_int_cast_aborts() {
        let (p, _) = simple_program(vec![Stmt::new(StmtKind::Assign(
            Lvalue::var(VarId(0)),
            Expr::Cast(
                int_t(),
                Box::new(Expr::Float(crate::expr::FloatBits(1.0e18), FloatKind::F64)),
            ),
        ))]);
        assert!(matches!(run(&p), Err(ExecError::InvalidCast(_))));
    }

    #[test]
    fn step_budget_exhaustion_aborts() {
        let t = int_t();
        let x = VarId(0);
        // while (1) { x = x + 0; } — no Wait, so only the step budget stops it.
        let body = vec![Stmt::new(StmtKind::Assign(
            Lvalue::var(x),
            Expr::Binop(Binop::Add, t, Box::new(Expr::var(x)), Box::new(Expr::int(0))),
        ))];
        let (p, _) =
            simple_program(vec![Stmt::new(StmtKind::While(LoopId(0), Expr::int(1), body))]);
        let mut inputs = SeededInputs::new(1);
        let mut i = Interp::new(&p, InterpConfig { max_steps: 100, max_ticks: 1_000 }, &mut inputs);
        assert!(matches!(i.run(), Err(ExecError::StepBudget)));
        assert!(!i.hit_tick_budget());
    }

    #[test]
    fn tick_budget_is_distinguishable_from_return() {
        let (p, _) = simple_program(vec![Stmt::new(StmtKind::While(
            LoopId(0),
            Expr::int(1),
            vec![Stmt::new(StmtKind::Wait)],
        ))]);
        let mut inputs = SeededInputs::new(1);
        let mut i =
            Interp::new(&p, InterpConfig { max_steps: 1_000_000, max_ticks: 5 }, &mut inputs);
        i.run().unwrap();
        assert!(i.hit_tick_budget());

        // A program that returns before the budget does not claim exhaustion.
        let (p2, _) = simple_program(vec![Stmt::new(StmtKind::Wait)]);
        let mut inputs2 = SeededInputs::new(1);
        let mut i2 =
            Interp::new(&p2, InterpConfig { max_steps: 1_000_000, max_ticks: 5 }, &mut inputs2);
        i2.run().unwrap();
        assert!(!i2.hit_tick_budget());
    }

    #[test]
    fn observer_fires_at_every_loop_head_arrival() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let t = int_t();
        let x = VarId(0);
        let body = vec![Stmt::new(StmtKind::Assign(
            Lvalue::var(x),
            Expr::Binop(Binop::Add, t, Box::new(Expr::var(x)), Box::new(Expr::int(1))),
        ))];
        let cond = Expr::Binop(Binop::Lt, t, Box::new(Expr::var(x)), Box::new(Expr::int(3)));
        let (p, x) = simple_program(vec![Stmt::new(StmtKind::While(LoopId(0), cond, body))]);
        let while_id = p.funcs[p.entry.0 as usize].body[0].id;
        let seen: Rc<RefCell<Vec<i64>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let mut inputs = SeededInputs::new(1);
        let mut i = Interp::new(&p, InterpConfig::default(), &mut inputs);
        i.set_observer(move |id, store| {
            if id == while_id {
                sink.borrow_mut().push(store[&(x, vec![])].as_int());
            }
        });
        i.run().unwrap();
        drop(i);
        // One arrival on entry plus one per back edge, including the state
        // that fails the test (x == 3).
        assert_eq!(*seen.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn seeded_inputs_are_deterministic() {
        let range = InputRange::Int(-100, 100);
        let frange = InputRange::Float(-1.0, 1.0);
        let mut a = SeededInputs::new(0xfeed);
        let mut b = SeededInputs::new(0xfeed);
        let mut c = SeededInputs::new(0xfeee);
        let mut all_equal_c = true;
        for i in 0..256 {
            let r = if i % 2 == 0 { range } else { frange };
            let (va, vb, vc) = (a.next(VarId(0), &r), b.next(VarId(0), &r), c.next(VarId(0), &r));
            assert_eq!(va, vb, "same seed must give the same stream");
            if va != vc {
                all_equal_c = false;
            }
            match va {
                Value::Int(x) => assert!((-100..=100).contains(&x)),
                Value::Float(x) => assert!((-1.0..=1.0).contains(&x)),
            }
        }
        assert!(!all_equal_c, "different seeds should diverge");
    }

    #[test]
    fn exec_error_display_is_stable() {
        assert_eq!(ExecError::DivByZero(StmtId(3)).to_string(), "division by zero at stmt 3");
        assert_eq!(ExecError::OutOfBounds(StmtId(4)).to_string(), "out-of-bounds access at stmt 4");
        assert_eq!(ExecError::ShiftRange(StmtId(5)).to_string(), "shift out of range at stmt 5");
        assert_eq!(ExecError::NanProduced(StmtId(6)).to_string(), "NaN produced at stmt 6");
        assert_eq!(ExecError::InvalidCast(StmtId(7)).to_string(), "invalid cast at stmt 7");
        assert_eq!(
            ExecError::AssumeViolated(StmtId(8)).to_string(),
            "assumption violated at stmt 8"
        );
        assert_eq!(ExecError::StepBudget.to_string(), "step budget exhausted");
    }
}
