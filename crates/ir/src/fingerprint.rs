//! Content fingerprints of programs and functions.
//!
//! The incremental-analysis cache (ROADMAP: "cache per-function invariants
//! keyed by a body hash") needs two distinct notions of identity:
//!
//! - an **exact** program fingerprint ([`program_fingerprint`]) that covers
//!   every analysis-visible detail *including* statement ids, loop ids and
//!   source locations. Two programs with equal exact fingerprints produce
//!   byte-identical analysis results (alarms carry statement ids and lines,
//!   so those must match for a stored result to be replayable verbatim);
//! - a **stable** per-function closure fingerprint ([`func_fingerprints`])
//!   that deliberately *excludes* statement ids, loop ids and locations, and
//!   names variables by (name, type, storage) rather than by numeric id.
//!   Editing one function renumbers every statement after it (ids are
//!   assigned in program pre-order), but the closure fingerprints of
//!   untouched functions survive, so their solved loop invariants can be
//!   reused as verified seeds.
//!
//! "Closure" because a function's fingerprint folds in the fingerprints of
//! everything it calls: the analyzer interprets calls by abstract inlining,
//! so a function's invariants depend on its whole call closure. The call
//! graph is acyclic by construction (no recursion, paper Sect. 5.4), which
//! makes the recursion well-founded; a defensive depth bound keeps even an
//! invalid cyclic program from diverging.
//!
//! All hashing is 64-bit FNV-1a: deterministic across runs and platforms,
//! dependency-free, and fast enough to fingerprint the whole program family
//! in well under a millisecond.

use crate::expr::{Access, Expr, Lvalue};
use crate::program::{FuncId, InputRange, Program, VarId, VarInfo, VarKind};
use crate::stmt::{Block, CallArg, Stmt, StmtKind};
use crate::types::{FloatKind, IntType, RecordDef, ScalarType, Type};

/// 64-bit FNV-1a streaming hasher.
///
/// Deterministic (unlike `std`'s `DefaultHasher`, which is randomly seeded
/// per process) and stable across platforms, so fingerprints can key an
/// on-disk cache.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    /// Feeds one byte.
    pub fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Feeds a byte slice.
    pub fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    /// Feeds a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Feeds a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Feeds an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    /// Feeds a `usize` (as `u64`, so 32- and 64-bit hosts agree).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Feeds an `f64` by IEEE bit pattern (distinguishes `-0.0` from `0.0`).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Feeds a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// What the statement-level hasher should do with identities that the
/// frontend renumbers globally (statement ids, loop ids, locations, variable
/// ids).
#[derive(Clone, Copy, PartialEq, Eq)]
enum IdMode<'a> {
    /// Hash them raw: exact identity, replay-safe.
    Exact,
    /// Skip them; name variables structurally. Edit-stable.
    Stable,
    /// Like [`IdMode::Stable`], but canonicalize the given channel tag out of
    /// every identifier first (see [`canon_ident`]). With an empty tag this
    /// produces the same digest as `Stable`.
    Parametric(&'a str),
}

impl IdMode<'_> {
    fn hash_name(self, h: &mut Fnv, name: &str) {
        match self {
            IdMode::Parametric(tag) if !tag.is_empty() => h.str(&canon_ident(name, tag)),
            _ => h.str(name),
        }
    }
}

/// The channel tag of a generated function name: its longest trailing run of
/// ASCII digits (`"step12"` → `"12"`), or `""` when the name has none.
pub fn channel_tag(name: &str) -> &str {
    let stem = name.trim_end_matches(|c: char| c.is_ascii_digit());
    &name[stem.len()..]
}

/// Canonicalizes a generated identifier (or abstract-cell name) against a
/// channel tag: every maximal run of ASCII digits that equals `tag` and is
/// preceded by a letter or `_` is replaced by `#`. Array indices stay
/// (`"hist12[3]"` with tag `"12"` → `"hist#[3]"`: the `3` follows `[`).
/// With an empty tag this is the identity.
pub fn canon_ident(name: &str, tag: &str) -> String {
    if tag.is_empty() {
        return name.to_string();
    }
    let bytes = name.as_bytes();
    let mut out = String::with_capacity(name.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let run = &name[start..i];
            let preceded =
                start > 0 && (bytes[start - 1].is_ascii_alphabetic() || bytes[start - 1] == b'_');
            if preceded && run == tag {
                out.push('#');
            } else {
                out.push_str(run);
            }
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// Inverse of [`canon_ident`] for a concrete target tag: every `#` becomes
/// `tag`. Identifiers and cell names never contain `#` otherwise.
pub fn expand_ident(name: &str, tag: &str) -> String {
    name.replace('#', tag)
}

fn hash_int_type(h: &mut Fnv, t: IntType) {
    h.byte(t.bits);
    h.byte(t.signed as u8);
}

fn hash_scalar_type(h: &mut Fnv, t: ScalarType) {
    match t {
        ScalarType::Int(it) => {
            h.byte(0);
            hash_int_type(h, it);
        }
        ScalarType::Float(FloatKind::F32) => h.byte(1),
        ScalarType::Float(FloatKind::F64) => h.byte(2),
    }
}

fn hash_type(h: &mut Fnv, t: &Type, records: &[RecordDef]) {
    match t {
        Type::Scalar(s) => {
            h.byte(0);
            hash_scalar_type(h, *s);
        }
        Type::Array(elem, n) => {
            h.byte(1);
            h.usize(*n);
            hash_type(h, elem, records);
        }
        Type::Record(id) => {
            // Expand the record structurally (name + fields) so the
            // fingerprint does not depend on record-table ordering.
            let def = &records[id.0 as usize];
            h.byte(2);
            h.str(&def.name);
            h.usize(def.fields.len());
            for (fname, fty) in &def.fields {
                h.str(fname);
                hash_type(h, fty, records);
            }
        }
    }
}

fn hash_var_ref(h: &mut Fnv, program: &Program, v: VarId, mode: IdMode<'_>) {
    match mode {
        IdMode::Exact => h.u32(v.0),
        IdMode::Stable | IdMode::Parametric(_) => {
            // Identify the variable by what the analyzer sees, not by its
            // slot in the global table (adding a local to one function
            // shifts every later variable id).
            let info: &VarInfo = program.var(v);
            mode.hash_name(h, &info.name);
            hash_type(h, &info.ty, &program.records);
            h.byte(match info.kind {
                VarKind::Global => 0,
                VarKind::Static => 1,
                VarKind::Local => 2,
                VarKind::Param => 3,
                VarKind::Temp => 4,
            });
            hash_input_range(h, info.volatile_input);
        }
    }
}

fn hash_input_range(h: &mut Fnv, r: Option<InputRange>) {
    match r {
        None => h.byte(0),
        Some(InputRange::Int(lo, hi)) => {
            h.byte(1);
            h.i64(lo);
            h.i64(hi);
        }
        Some(InputRange::Float(lo, hi)) => {
            h.byte(2);
            h.f64(lo);
            h.f64(hi);
        }
    }
}

fn hash_lvalue(h: &mut Fnv, program: &Program, lv: &Lvalue, mode: IdMode<'_>) {
    hash_var_ref(h, program, lv.base, mode);
    h.usize(lv.path.len());
    for a in &lv.path {
        match a {
            Access::Field(f) => {
                h.byte(0);
                h.u32(*f);
            }
            Access::Index(e) => {
                h.byte(1);
                hash_expr(h, program, e, mode);
            }
        }
    }
}

fn hash_expr(h: &mut Fnv, program: &Program, e: &Expr, mode: IdMode<'_>) {
    match e {
        Expr::Int(v, t) => {
            h.byte(0);
            h.i64(*v);
            hash_int_type(h, *t);
        }
        Expr::Float(bits, k) => {
            h.byte(1);
            h.u64(bits.get().to_bits());
            h.byte(matches!(k, FloatKind::F64) as u8);
        }
        Expr::Load(lv, t) => {
            h.byte(2);
            hash_lvalue(h, program, lv, mode);
            hash_scalar_type(h, *t);
        }
        Expr::Unop(op, t, a) => {
            h.byte(3);
            h.byte(*op as u8);
            hash_scalar_type(h, *t);
            hash_expr(h, program, a, mode);
        }
        Expr::Binop(op, t, a, b) => {
            h.byte(4);
            h.byte(*op as u8);
            hash_scalar_type(h, *t);
            hash_expr(h, program, a, mode);
            hash_expr(h, program, b, mode);
        }
        Expr::Cast(t, a) => {
            h.byte(5);
            hash_scalar_type(h, *t);
            hash_expr(h, program, a, mode);
        }
    }
}

/// Hashes a statement. `callee_fp(f)` supplies the identity of a called
/// function: the raw id in exact mode, the callee's closure fingerprint in
/// stable mode.
fn hash_stmt(
    h: &mut Fnv,
    program: &Program,
    s: &Stmt,
    mode: IdMode<'_>,
    callee_fp: &impl Fn(FuncId) -> u64,
) {
    if mode == IdMode::Exact {
        h.u32(s.id.0);
        h.u32(s.loc.line);
    }
    match &s.kind {
        StmtKind::Assign(lv, e) => {
            h.byte(0);
            hash_lvalue(h, program, lv, mode);
            hash_expr(h, program, e, mode);
        }
        StmtKind::If(c, a, b) => {
            h.byte(1);
            hash_expr(h, program, c, mode);
            hash_block(h, program, a, mode, callee_fp);
            hash_block(h, program, b, mode, callee_fp);
        }
        StmtKind::While(id, c, body) => {
            h.byte(2);
            if mode == IdMode::Exact {
                h.u32(id.0);
            }
            hash_expr(h, program, c, mode);
            hash_block(h, program, body, mode, callee_fp);
        }
        StmtKind::Call(ret, callee, args) => {
            h.byte(3);
            match ret {
                None => h.byte(0),
                Some(lv) => {
                    h.byte(1);
                    hash_lvalue(h, program, lv, mode);
                }
            }
            h.u64(callee_fp(*callee));
            h.usize(args.len());
            for a in args {
                match a {
                    CallArg::Value(e) => {
                        h.byte(0);
                        hash_expr(h, program, e, mode);
                    }
                    CallArg::Ref(lv) => {
                        h.byte(1);
                        hash_lvalue(h, program, lv, mode);
                    }
                }
            }
        }
        StmtKind::Return(e) => {
            h.byte(4);
            match e {
                None => h.byte(0),
                Some(e) => {
                    h.byte(1);
                    hash_expr(h, program, e, mode);
                }
            }
        }
        StmtKind::Wait => h.byte(5),
        StmtKind::Assume(e) => {
            h.byte(6);
            hash_expr(h, program, e, mode);
        }
        StmtKind::ReadVolatile(v) => {
            h.byte(7);
            hash_var_ref(h, program, *v, mode);
        }
    }
}

fn hash_block(
    h: &mut Fnv,
    program: &Program,
    b: &Block,
    mode: IdMode<'_>,
    callee_fp: &impl Fn(FuncId) -> u64,
) {
    h.usize(b.len());
    for s in b {
        hash_stmt(h, program, s, mode, callee_fp);
    }
}

fn hash_func_shape(h: &mut Fnv, program: &Program, f: &crate::program::Function, mode: IdMode<'_>) {
    mode.hash_name(h, &f.name);
    h.usize(f.params.len());
    for p in &f.params {
        h.byte(matches!(p.kind, crate::program::ParamKind::ByRef) as u8);
        hash_var_ref(h, program, p.var, mode);
    }
    match f.ret {
        None => h.byte(0),
        Some(t) => {
            h.byte(1);
            hash_scalar_type(h, t);
        }
    }
    h.usize(f.locals.len());
    for &l in &f.locals {
        hash_var_ref(h, program, l, mode);
    }
}

/// Exact whole-program fingerprint.
///
/// Covers the full variable table, records, every function (including
/// statement ids, loop ids and source lines) and the entry point. Equal
/// fingerprints ⇒ the analyzer produces identical results, down to the
/// statement ids and lines carried by alarms — the key of the full-result
/// replay path of the invariant cache.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut h = Fnv::new();
    h.usize(program.vars.len());
    for v in &program.vars {
        h.str(&v.name);
        hash_type(&mut h, &v.ty, &program.records);
        h.byte(v.kind as u8);
        hash_input_range(&mut h, v.volatile_input);
    }
    h.usize(program.records.len());
    for r in &program.records {
        h.str(&r.name);
        h.usize(r.fields.len());
        for (fname, fty) in &r.fields {
            h.str(fname);
            hash_type(&mut h, fty, &program.records);
        }
    }
    h.usize(program.funcs.len());
    let exact_callee = |f: FuncId| u64::from(f.0);
    for f in &program.funcs {
        hash_func_shape(&mut h, program, f, IdMode::Exact);
        hash_block(&mut h, program, &f.body, IdMode::Exact, &exact_callee);
    }
    h.u32(program.entry.0);
    h.finish()
}

/// Stable closure fingerprint of every function, indexed by `FuncId`.
///
/// Excludes statement/loop ids and locations; folds in the closure
/// fingerprints of all callees (memoized — the call graph is acyclic). A
/// function keeps its fingerprint across edits to *other* functions even
/// though the frontend renumbers ids program-wide.
pub fn func_fingerprints(program: &Program) -> Vec<u64> {
    let n = program.funcs.len();
    let mut memo: Vec<Option<u64>> = vec![None; n];
    for i in 0..n {
        closure_fp(program, i, IdMode::Stable, &mut memo, 0);
    }
    memo.into_iter().map(|m| m.unwrap_or(0)).collect()
}

/// Channel-count-parametric closure fingerprint of every function, indexed
/// by `FuncId`.
///
/// Like [`func_fingerprints`], but each function is hashed with its own
/// channel tag (the trailing digit run of its name, see [`channel_tag`])
/// canonicalized out of every identifier in its whole call closure. Two
/// generated functions that differ only in their channel index — `step3` in
/// a 4-channel member and `step3` in a 46-channel member, or any pair whose
/// bodies coincide up to the tag — share a parametric fingerprint, which is
/// what lets converged seeds transfer across family members whose cell
/// layouts (and thus store keys) differ. Functions without a tag hash
/// exactly as in stable mode.
pub fn parametric_fingerprints(program: &Program) -> Vec<u64> {
    let n = program.funcs.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let tag = channel_tag(&program.funcs[i].name).to_string();
        // The memo is per root: the root's tag applies to the whole closure.
        let mut memo: Vec<Option<u64>> = vec![None; n];
        out.push(closure_fp(program, i, IdMode::Parametric(&tag), &mut memo, 0));
    }
    out
}

fn closure_fp(
    program: &Program,
    idx: usize,
    mode: IdMode<'_>,
    memo: &mut Vec<Option<u64>>,
    depth: usize,
) -> u64 {
    if let Some(fp) = memo[idx] {
        return fp;
    }
    // The call graph is acyclic for valid programs; the depth bound keeps an
    // invalid (recursive) program from overflowing the stack — such programs
    // are rejected before analysis anyway.
    if depth > program.funcs.len() {
        return 0;
    }
    let f = &program.funcs[idx];
    let mut h = Fnv::new();
    hash_func_shape(&mut h, program, f, mode);
    // Collect callee fingerprints first (can't borrow memo mutably inside
    // the Fn closure), then hash the body with a lookup table.
    let mut callees: Vec<(u32, u64)> = Vec::new();
    crate::stmt::for_each_stmt(&f.body, &mut |s| {
        if let StmtKind::Call(_, callee, _) = &s.kind {
            if !callees.iter().any(|(c, _)| *c == callee.0) {
                callees.push((callee.0, 0));
            }
        }
    });
    for entry in &mut callees {
        let c = entry.0 as usize;
        entry.1 = if c == idx { 0 } else { closure_fp(program, c, mode, memo, depth + 1) };
    }
    let lookup =
        |f: FuncId| callees.iter().find(|(c, _)| *c == f.0).map(|(_, fp)| *fp).unwrap_or(0);
    hash_block(&mut h, program, &f.body, mode, &lookup);
    let fp = h.finish();
    memo[idx] = Some(fp);
    fp
}

/// Stable local fingerprint of every loop of `func`, in the same pre-order
/// as the invariant cache's loop-ordinal numbering.
///
/// Each loop is identified by its condition, its body statements, and the
/// layout of every variable it touches (names, types, storage classes,
/// input ranges — via stable-mode variable hashing), with callees named by
/// their closure fingerprints from `stable_fps` ([`func_fingerprints`]).
/// Statement ids, loop ids and locations are excluded, so a loop keeps its
/// fingerprint when code *outside* it is edited — even in the same function,
/// where the whole-function closure fingerprint necessarily misses. That is
/// the key of the per-loop seed-replay path: a matching loop fingerprint
/// means the stored post-fixpoint for this loop is worth verifying as a
/// widening start above the new entry state.
pub fn loop_fingerprints(program: &Program, func: FuncId, stable_fps: &[u64]) -> Vec<u64> {
    let f = &program.funcs[func.0 as usize];
    let lookup = |c: FuncId| stable_fps.get(c.0 as usize).copied().unwrap_or(0);
    let mut out = Vec::new();
    collect_loop_fps(program, &f.body, &lookup, &mut out);
    out
}

fn collect_loop_fps(
    program: &Program,
    block: &Block,
    callee_fp: &impl Fn(FuncId) -> u64,
    out: &mut Vec<u64>,
) {
    for s in block {
        match &s.kind {
            StmtKind::While(_, _, body) => {
                let mut h = Fnv::new();
                hash_stmt(&mut h, program, s, IdMode::Stable, callee_fp);
                out.push(h.finish());
                collect_loop_fps(program, body, callee_fp, out);
            }
            StmtKind::If(_, a, b) => {
                collect_loop_fps(program, a, callee_fp, out);
                collect_loop_fps(program, b, callee_fp, out);
            }
            _ => {}
        }
    }
}

/// Fingerprint of everything that determines the abstract cell layout: the
/// full variable table (names, types, storage classes, input ranges) and the
/// record table, in order.
///
/// Cached invariants are vectors over cell ids; they are only meaningful
/// against the layout they were computed with, so this hash gates all reuse.
pub fn globals_fingerprint(program: &Program) -> u64 {
    let mut h = Fnv::new();
    h.usize(program.vars.len());
    for v in &program.vars {
        h.str(&v.name);
        hash_type(&mut h, &v.ty, &program.records);
        h.byte(v.kind as u8);
        hash_input_range(&mut h, v.volatile_input);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Function, VarInfo};
    use crate::stmt::{Loc, LoopId, StmtId};
    use crate::types::IntType;

    fn two_func_program() -> Program {
        let mut p = Program::new();
        let x = p.add_var(VarInfo::scalar("x", ScalarType::Int(IntType::INT), VarKind::Global));
        let y = p.add_var(VarInfo::scalar("y", ScalarType::Int(IntType::INT), VarKind::Global));
        let helper_body = vec![Stmt::new(StmtKind::Assign(Lvalue::var(y), Expr::int(7)))];
        let helper = p.add_func(Function {
            name: "helper".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: helper_body,
        });
        let main_body = vec![
            Stmt::new(StmtKind::Assign(Lvalue::var(x), Expr::int(1))),
            Stmt::new(StmtKind::Call(None, helper, vec![])),
        ];
        let main = p.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: main_body,
        });
        p.entry = main;
        p.assign_stmt_ids();
        p
    }

    #[test]
    fn fingerprints_are_deterministic() {
        let p = two_func_program();
        assert_eq!(program_fingerprint(&p), program_fingerprint(&p));
        assert_eq!(func_fingerprints(&p), func_fingerprints(&p));
        assert_eq!(globals_fingerprint(&p), globals_fingerprint(&p));
    }

    #[test]
    fn exact_fingerprint_sees_ids_and_locations() {
        let p = two_func_program();
        let base = program_fingerprint(&p);
        let mut q = p.clone();
        q.funcs[1].body[0].loc = Loc::line(99);
        assert_ne!(base, program_fingerprint(&q), "location change must miss");
        let mut q = p.clone();
        q.funcs[1].body[0].id = StmtId(1000);
        assert_ne!(base, program_fingerprint(&q), "stmt-id change must miss");
    }

    #[test]
    fn stable_fingerprint_ignores_ids_and_locations() {
        let p = two_func_program();
        let base = func_fingerprints(&p);
        let mut q = p.clone();
        q.funcs[0].body[0].loc = Loc::line(42);
        q.funcs[0].body[0].id = StmtId(500);
        q.funcs[1].body[0].id = StmtId(501);
        assert_eq!(base, func_fingerprints(&q));
    }

    #[test]
    fn editing_a_body_changes_it_and_its_callers_only() {
        let p = two_func_program();
        let base = func_fingerprints(&p);
        let mut q = p.clone();
        // Change the constant stored by helper.
        q.funcs[0].body[0].kind = StmtKind::Assign(Lvalue::var(VarId(1)), Expr::int(8));
        let edited = func_fingerprints(&q);
        assert_ne!(base[0], edited[0], "edited function must change");
        assert_ne!(base[1], edited[1], "caller's closure must change");

        // A third function not calling helper keeps its fingerprint.
        let mut p3 = p.clone();
        p3.add_func(Function {
            name: "leaf".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::new(StmtKind::Wait)],
        });
        let mut q3 = p3.clone();
        q3.funcs[0].body[0].kind = StmtKind::Assign(Lvalue::var(VarId(1)), Expr::int(8));
        assert_eq!(func_fingerprints(&p3)[2], func_fingerprints(&q3)[2]);
    }

    #[test]
    fn stable_fingerprint_names_vars_not_ids() {
        // Same function body, but the variable sits at a different slot in
        // the table: the stable fingerprint must agree, the exact one not.
        let mut a = Program::new();
        let xa = a.add_var(VarInfo::scalar("x", ScalarType::Int(IntType::INT), VarKind::Global));
        a.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::new(StmtKind::Assign(Lvalue::var(xa), Expr::int(3)))],
        });
        a.assign_stmt_ids();

        let mut b = Program::new();
        b.add_var(VarInfo::scalar("pad", ScalarType::Int(IntType::INT), VarKind::Global));
        let xb = b.add_var(VarInfo::scalar("x", ScalarType::Int(IntType::INT), VarKind::Global));
        b.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::new(StmtKind::Assign(Lvalue::var(xb), Expr::int(3)))],
        });
        b.assign_stmt_ids();

        assert_eq!(func_fingerprints(&a)[0], func_fingerprints(&b)[0]);
        assert_ne!(program_fingerprint(&a), program_fingerprint(&b));
        assert_ne!(globals_fingerprint(&a), globals_fingerprint(&b));
    }

    #[test]
    fn channel_tag_and_canonicalization() {
        assert_eq!(channel_tag("step12"), "12");
        assert_eq!(channel_tag("step0"), "0");
        assert_eq!(channel_tag("main"), "");
        assert_eq!(channel_tag("7"), "7");

        assert_eq!(canon_ident("hist_x12[3]", "12"), "hist_x#[3]");
        assert_eq!(canon_ident("step12::k", "12"), "step#::k");
        assert_eq!(canon_ident("tbl12[12]", "12"), "tbl#[12]", "array index stays");
        assert_eq!(canon_ident("x1", "12"), "x1", "different run untouched");
        assert_eq!(canon_ident("x120", "12"), "x120", "maximal run only");
        assert_eq!(canon_ident("anything", ""), "anything");

        assert_eq!(expand_ident("hist_x#[3]", "7"), "hist_x7[3]");
        assert_eq!(expand_ident(&canon_ident("step12::x1", "12"), "12"), "step12::x1");
    }

    fn one_loop_program(var: &str, fname: &str, extra_stmt: bool) -> Program {
        let mut p = Program::new();
        let x = p.add_var(VarInfo::scalar(var, ScalarType::Int(IntType::INT), VarKind::Global));
        let mut body = vec![Stmt::new(StmtKind::While(
            LoopId(0),
            Expr::int(1),
            vec![Stmt::new(StmtKind::Assign(Lvalue::var(x), Expr::int(1)))],
        ))];
        if extra_stmt {
            body.push(Stmt::new(StmtKind::Assign(Lvalue::var(x), Expr::int(9))));
        }
        p.add_func(Function {
            name: fname.into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body,
        });
        p.entry = FuncId(0);
        p.assign_stmt_ids();
        p
    }

    #[test]
    fn loop_fingerprint_survives_edits_outside_the_loop() {
        let a = one_loop_program("x", "main", false);
        let b = one_loop_program("x", "main", true);
        let fa = loop_fingerprints(&a, FuncId(0), &func_fingerprints(&a));
        let fb = loop_fingerprints(&b, FuncId(0), &func_fingerprints(&b));
        assert_eq!(fa.len(), 1);
        assert_eq!(fa, fb, "edit after the loop must keep the loop fingerprint");
        // But the function's closure fingerprint misses, as it must.
        assert_ne!(func_fingerprints(&a)[0], func_fingerprints(&b)[0]);
        // And a loop over a different variable has a different fingerprint.
        let c = one_loop_program("y", "main", false);
        assert_ne!(fa, loop_fingerprints(&c, FuncId(0), &func_fingerprints(&c)));
    }

    #[test]
    fn parametric_fingerprint_matches_across_channel_tags() {
        let a = one_loop_program("flt3", "step3", false);
        let b = one_loop_program("flt7", "step7", false);
        let c = one_loop_program("other3", "step3", false);
        assert_eq!(parametric_fingerprints(&a)[0], parametric_fingerprints(&b)[0]);
        assert_ne!(parametric_fingerprints(&a)[0], parametric_fingerprints(&c)[0]);
        // Untagged functions hash exactly as in stable mode.
        let m = one_loop_program("x", "main", false);
        assert_eq!(parametric_fingerprints(&m)[0], func_fingerprints(&m)[0]);
    }

    #[test]
    fn loop_ids_do_not_leak_into_stable_fingerprints() {
        let mk = |lid: u32| {
            let mut p = Program::new();
            let x = p.add_var(VarInfo::scalar("x", ScalarType::Int(IntType::INT), VarKind::Global));
            p.add_func(Function {
                name: "main".into(),
                params: vec![],
                ret: None,
                locals: vec![],
                body: vec![Stmt::new(StmtKind::While(
                    LoopId(lid),
                    Expr::int(1),
                    vec![Stmt::new(StmtKind::Assign(Lvalue::var(x), Expr::int(1)))],
                ))],
            });
            p.assign_stmt_ids();
            p
        };
        assert_eq!(func_fingerprints(&mk(0))[0], func_fingerprints(&mk(9))[0]);
        assert_ne!(program_fingerprint(&mk(0)), program_fingerprint(&mk(9)));
    }
}
