//! Typed intermediate representation for the analyzed C subset.
//!
//! The frontend (paper Sect. 5.1) compiles preprocessed, parsed and
//! type-checked C into "a simplified version of the abstract syntax tree with
//! all types explicit and variables given unique identifiers". This crate *is*
//! that representation: scalar and aggregate [`types`], typed
//! [expressions](expr) and l-values, structured [statements](stmt), whole
//! [programs](program) — plus a reference concrete [interpreter](interp) used
//! to test analyzer soundness, and a [pretty-printer](pretty).
//!
//! Design constraints mirror the paper's program family (Sect. 4): no dynamic
//! allocation, no recursion, pointers only as call-by-reference arguments
//! (which the IR models with explicit by-reference parameters), volatile
//! input variables with environment-supplied ranges, and a periodic
//! synchronous `wait` primitive.

pub mod expr;
pub mod fingerprint;
pub mod interp;
pub mod pretty;
pub mod program;
pub mod stmt;
pub mod types;

pub use expr::{Access, Binop, Expr, FloatBits, Lvalue, Unop};
pub use fingerprint::{
    canon_ident, channel_tag, expand_ident, func_fingerprints, globals_fingerprint,
    loop_fingerprints, parametric_fingerprints, program_fingerprint, Fnv,
};
pub use interp::{
    is_persistent, CellKey, ExecError, InputProvider, Interp, InterpConfig, RuntimeEvent,
    SeededInputs, Store, Value,
};
pub use program::{
    ConstValue, FuncId, Function, InputRange, Metrics, Param, ParamKind, Program, VarId, VarInfo,
    VarKind,
};
pub use stmt::{Block, CallArg, Loc, LoopId, Stmt, StmtId, StmtKind};
pub use types::{FloatKind, IntType, RecordDef, RecordId, ScalarType, Type};
