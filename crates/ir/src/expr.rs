//! Typed expressions and l-values.
//!
//! Every operator node records the scalar type *at which the machine performs
//! the operation* (after C's usual arithmetic conversions); the frontend
//! inserts explicit [`Expr::Cast`] nodes so no implicit conversion remains.
//! Conditions are ordinary integer expressions (zero/non-zero); logical
//! connectives are dedicated operators so the abstract `guard` can decompose
//! them structurally, as prescribed in paper Sect. 5.4.

use crate::program::VarId;
use crate::types::{FloatKind, IntType, ScalarType};

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unop {
    /// Arithmetic negation `-e` (at the node's scalar type).
    Neg,
    /// Logical negation `!e` (yields 0/1 `int`).
    LNot,
    /// Bitwise complement `~e` (integers only).
    BNot,
}

/// A binary operator.
///
/// Arithmetic operators are evaluated at the node's scalar type; comparison
/// operators compare at the node's scalar type but yield `int` 0/1; logical
/// connectives operate on zero/non-zero integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binop {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division truncates toward zero)
    Div,
    /// `%` (integers only)
    Rem,
    /// `&` (integers only)
    BAnd,
    /// `|` (integers only)
    BOr,
    /// `^` (integers only)
    BXor,
    /// `<<` (integers only)
    Shl,
    /// `>>` (integers only; arithmetic shift for signed operands)
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (side-effect-free, so plain logical conjunction)
    LAnd,
    /// `||`
    LOr,
}

impl Binop {
    /// `true` for `<`, `<=`, `>`, `>=`, `==`, `!=`.
    pub fn is_comparison(self) -> bool {
        matches!(self, Binop::Lt | Binop::Le | Binop::Gt | Binop::Ge | Binop::Eq | Binop::Ne)
    }

    /// `true` for `&&`, `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, Binop::LAnd | Binop::LOr)
    }

    /// The comparison with swapped operands (`a < b` ⇔ `b > a`).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a comparison.
    pub fn swap(self) -> Binop {
        match self {
            Binop::Lt => Binop::Gt,
            Binop::Le => Binop::Ge,
            Binop::Gt => Binop::Lt,
            Binop::Ge => Binop::Le,
            Binop::Eq => Binop::Eq,
            Binop::Ne => Binop::Ne,
            other => panic!("swap on non-comparison {other:?}"),
        }
    }

    /// The negated comparison (`!(a < b)` ⇔ `a >= b`).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a comparison.
    pub fn negate(self) -> Binop {
        match self {
            Binop::Lt => Binop::Ge,
            Binop::Le => Binop::Gt,
            Binop::Gt => Binop::Le,
            Binop::Ge => Binop::Lt,
            Binop::Eq => Binop::Ne,
            Binop::Ne => Binop::Eq,
            other => panic!("negate on non-comparison {other:?}"),
        }
    }
}

/// One step of an access path into an aggregate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Access {
    /// `.field` — field index into the record definition.
    Field(u32),
    /// `[e]` — array subscript.
    Index(Box<Expr>),
}

/// An l-value: a base variable plus an access path.
///
/// The analyzed subset has no pointer arithmetic, so every l-value is rooted
/// at a named variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lvalue {
    /// The root variable.
    pub base: VarId,
    /// Field selections and array subscripts applied to the root.
    pub path: Vec<Access>,
}

impl Lvalue {
    /// An l-value that is just a variable.
    pub fn var(base: VarId) -> Lvalue {
        Lvalue { base, path: Vec::new() }
    }

    /// An l-value `base[idx]`.
    pub fn index(base: VarId, idx: Expr) -> Lvalue {
        Lvalue { base, path: vec![Access::Index(Box::new(idx))] }
    }

    /// `true` if the path contains no array subscripts with non-constant
    /// indices (i.e. the l-value denotes a statically known cell).
    pub fn is_static_path(&self) -> bool {
        self.path.iter().all(|a| match a {
            Access::Field(_) => true,
            Access::Index(e) => matches!(**e, Expr::Int(_, _)),
        })
    }
}

/// A typed expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer constant with its type.
    Int(i64, IntType),
    /// Floating constant with its format. The payload is the `f64` value of
    /// the constant (exact for `double`; for `float` constants the frontend
    /// stores the value already rounded to the `f32` grid).
    Float(FloatBits, FloatKind),
    /// Read of an l-value, annotated with the scalar type of the cell.
    Load(Lvalue, ScalarType),
    /// Unary operation performed at `ScalarType`.
    Unop(Unop, ScalarType, Box<Expr>),
    /// Binary operation performed at `ScalarType` (for comparisons: the
    /// comparison type of the operands; the result is `int`).
    Binop(Binop, ScalarType, Box<Expr>, Box<Expr>),
    /// Conversion of the operand to the given scalar type.
    Cast(ScalarType, Box<Expr>),
}

/// An `f64` wrapper that is `Eq`/`Hash` by bit pattern, so expressions can be
/// hashed and compared structurally.
#[derive(Debug, Clone, Copy)]
pub struct FloatBits(pub f64);

impl FloatBits {
    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for FloatBits {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for FloatBits {}
impl std::hash::Hash for FloatBits {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}
impl From<f64> for FloatBits {
    fn from(x: f64) -> Self {
        FloatBits(x)
    }
}

impl Expr {
    /// Integer constant of type `int`.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v, IntType::INT)
    }

    /// `double` constant.
    pub fn float(v: f64) -> Expr {
        Expr::Float(FloatBits(v), FloatKind::F64)
    }

    /// Read of a plain `int` variable.
    pub fn var(v: VarId) -> Expr {
        Expr::Load(Lvalue::var(v), ScalarType::Int(IntType::INT))
    }

    /// Read of a plain variable with an explicit scalar type.
    pub fn var_t(v: VarId, t: ScalarType) -> Expr {
        Expr::Load(Lvalue::var(v), t)
    }

    /// The scalar type of the expression's value.
    pub fn ty(&self) -> ScalarType {
        match self {
            Expr::Int(_, t) => ScalarType::Int(*t),
            Expr::Float(_, k) => ScalarType::Float(*k),
            Expr::Load(_, t) => *t,
            Expr::Unop(Unop::LNot, _, _) => ScalarType::Int(IntType::INT),
            Expr::Unop(_, t, _) => *t,
            Expr::Binop(op, t, _, _) => {
                if op.is_comparison() || op.is_logical() {
                    ScalarType::Int(IntType::INT)
                } else {
                    *t
                }
            }
            Expr::Cast(t, _) => *t,
        }
    }

    /// Calls `f` on every l-value read in the expression (including array
    /// index sub-expressions, recursively).
    pub fn for_each_lvalue(&self, f: &mut impl FnMut(&Lvalue)) {
        match self {
            Expr::Int(_, _) | Expr::Float(_, _) => {}
            Expr::Load(lv, _) => {
                f(lv);
                for a in &lv.path {
                    if let Access::Index(e) = a {
                        e.for_each_lvalue(f);
                    }
                }
            }
            Expr::Unop(_, _, e) | Expr::Cast(_, e) => e.for_each_lvalue(f),
            Expr::Binop(_, _, a, b) => {
                a.for_each_lvalue(f);
                b.for_each_lvalue(f);
            }
        }
    }

    /// Collects the set of base variables read by the expression.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.for_each_lvalue(&mut |lv| {
            if !out.contains(&lv.base) {
                out.push(lv.base);
            }
        });
        out
    }

    /// Structural negation of a condition, pushing `!` through logical
    /// connectives and comparisons (De Morgan), used by abstract `guard`.
    pub fn negate_condition(&self) -> Expr {
        match self {
            Expr::Unop(Unop::LNot, _, e) => (**e).clone(),
            Expr::Binop(op, t, a, b) if op.is_comparison() => {
                Expr::Binop(op.negate(), *t, a.clone(), b.clone())
            }
            Expr::Binop(Binop::LAnd, t, a, b) => Expr::Binop(
                Binop::LOr,
                *t,
                Box::new(a.negate_condition()),
                Box::new(b.negate_condition()),
            ),
            Expr::Binop(Binop::LOr, t, a, b) => Expr::Binop(
                Binop::LAnd,
                *t,
                Box::new(a.negate_condition()),
                Box::new(b.negate_condition()),
            ),
            Expr::Int(v, t) => Expr::Int(if *v == 0 { 1 } else { 0 }, *t),
            // A cast to _Bool preserves truthiness exactly, so negation
            // pushes through it.
            Expr::Cast(ScalarType::Int(it), inner) if it.is_bool() => inner.negate_condition(),
            other => Expr::Unop(Unop::LNot, ScalarType::Int(IntType::INT), Box::new(other.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    #[test]
    fn comparison_helpers() {
        assert_eq!(Binop::Lt.negate(), Binop::Ge);
        assert_eq!(Binop::Lt.swap(), Binop::Gt);
        assert_eq!(Binop::Eq.negate(), Binop::Ne);
        assert!(Binop::Le.is_comparison());
        assert!(!Binop::Add.is_comparison());
        assert!(Binop::LAnd.is_logical());
    }

    #[test]
    #[should_panic(expected = "negate on non-comparison")]
    fn negate_arith_panics() {
        let _ = Binop::Add.negate();
    }

    #[test]
    fn expr_types() {
        let t = ScalarType::Int(IntType::INT);
        let cmp = Expr::Binop(
            Binop::Lt,
            ScalarType::Float(FloatKind::F64),
            Box::new(Expr::float(1.0)),
            Box::new(Expr::float(2.0)),
        );
        assert_eq!(cmp.ty(), t);
        let add = Expr::Binop(
            Binop::Add,
            ScalarType::Float(FloatKind::F32),
            Box::new(Expr::float(1.0)),
            Box::new(Expr::float(2.0)),
        );
        assert_eq!(add.ty(), ScalarType::Float(FloatKind::F32));
        let cast = Expr::Cast(ScalarType::Int(IntType::UCHAR), Box::new(Expr::int(300)));
        assert_eq!(cast.ty(), ScalarType::Int(IntType::UCHAR));
    }

    #[test]
    fn negate_condition_pushes_through() {
        let t = ScalarType::Int(IntType::INT);
        // !(a < b && c) == (a >= b || !c)
        let c = Expr::Binop(
            Binop::LAnd,
            t,
            Box::new(Expr::Binop(
                Binop::Lt,
                t,
                Box::new(Expr::var(v(0))),
                Box::new(Expr::var(v(1))),
            )),
            Box::new(Expr::var(v(2))),
        );
        let n = c.negate_condition();
        match n {
            Expr::Binop(Binop::LOr, _, a, b) => {
                assert!(matches!(*a, Expr::Binop(Binop::Ge, _, _, _)));
                assert!(matches!(*b, Expr::Unop(Unop::LNot, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn double_negation_cancels() {
        let x = Expr::var(v(7));
        let once = x.negate_condition();
        let twice = once.negate_condition();
        assert_eq!(twice, x);
    }

    #[test]
    fn collects_vars_through_indices() {
        // a[i] + b
        let e = Expr::Binop(
            Binop::Add,
            ScalarType::Int(IntType::INT),
            Box::new(Expr::Load(
                Lvalue::index(v(0), Expr::var(v(1))),
                ScalarType::Int(IntType::INT),
            )),
            Box::new(Expr::var(v(2))),
        );
        let mut vs = e.vars();
        vs.sort();
        assert_eq!(vs, vec![v(0), v(1), v(2)]);
    }

    #[test]
    fn static_paths() {
        assert!(Lvalue::var(v(0)).is_static_path());
        assert!(Lvalue::index(v(0), Expr::int(3)).is_static_path());
        assert!(!Lvalue::index(v(0), Expr::var(v(1))).is_static_path());
    }

    #[test]
    fn float_bits_eq_distinguishes_zero_signs() {
        assert_ne!(FloatBits(0.0), FloatBits(-0.0));
        assert_eq!(FloatBits(f64::NAN), FloatBits(f64::NAN));
    }
}
