//! Pretty-printer: renders IR back to C-like source.
//!
//! Used for debugging dumps, alarm context in reports, and golden tests. The
//! output is valid input for the frontend's parser for the supported subset
//! (modulo synthesized constructs like `__astree_wait()`).

use crate::expr::{Access, Binop, Expr, Lvalue, Unop};
use crate::program::{ParamKind, Program};
use crate::stmt::{Block, CallArg, Stmt, StmtKind};
use crate::types::{FloatKind, ScalarType, Type};
use std::fmt::Write;

/// Renders a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for f in &p.funcs {
        let ret = match f.ret {
            Some(t) => scalar_to_string(t),
            None => "void".to_string(),
        };
        let params: Vec<String> = f
            .params
            .iter()
            .map(|prm| {
                let v = p.var(prm.var);
                let t = v.ty.as_scalar().map(scalar_to_string).unwrap_or("<aggregate>".into());
                match prm.kind {
                    ParamKind::ByValue => format!("{t} {}", v.name),
                    ParamKind::ByRef => format!("{t} *{}", v.name),
                }
            })
            .collect();
        let _ = writeln!(out, "{ret} {}({}) {{", f.name, params.join(", "));
        for &l in &f.locals {
            let v = p.var(l);
            let _ = writeln!(out, "  {};", decl_to_string(&v.ty, &v.name));
        }
        block_to(&mut out, p, &f.body, 1);
        let _ = writeln!(out, "}}");
        let _ = writeln!(out);
    }
    out
}

/// Renders a declaration `ty name` with C array syntax.
pub fn decl_to_string(ty: &Type, name: &str) -> String {
    match ty {
        Type::Scalar(s) => format!("{} {name}", scalar_to_string(*s)),
        Type::Array(elem, n) => {
            let inner = decl_to_string(elem, name);
            // place the bracket after the existing declarator
            format!("{inner}[{n}]")
        }
        Type::Record(rid) => format!("struct #{} {name}", rid.0),
    }
}

fn scalar_to_string(t: ScalarType) -> String {
    t.to_string()
}

fn block_to(out: &mut String, p: &Program, b: &Block, depth: usize) {
    for s in b {
        stmt_to(out, p, s, depth);
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn stmt_to(out: &mut String, p: &Program, s: &Stmt, depth: usize) {
    indent(out, depth);
    match &s.kind {
        StmtKind::Assign(lv, e) => {
            let _ = writeln!(out, "{} = {};", lvalue_to_string(p, lv), expr_to_string(p, e));
        }
        StmtKind::If(c, a, b) => {
            let _ = writeln!(out, "if ({}) {{", expr_to_string(p, c));
            block_to(out, p, a, depth + 1);
            if b.is_empty() {
                indent(out, depth);
                let _ = writeln!(out, "}}");
            } else {
                indent(out, depth);
                let _ = writeln!(out, "}} else {{");
                block_to(out, p, b, depth + 1);
                indent(out, depth);
                let _ = writeln!(out, "}}");
            }
        }
        StmtKind::While(_, c, body) => {
            let _ = writeln!(out, "while ({}) {{", expr_to_string(p, c));
            block_to(out, p, body, depth + 1);
            indent(out, depth);
            let _ = writeln!(out, "}}");
        }
        StmtKind::Call(ret, f, args) => {
            let fname = &p.func(*f).name;
            let args: Vec<String> = args
                .iter()
                .map(|a| match a {
                    CallArg::Value(e) => expr_to_string(p, e),
                    CallArg::Ref(lv) => format!("&{}", lvalue_to_string(p, lv)),
                })
                .collect();
            match ret {
                Some(lv) => {
                    let _ = writeln!(
                        out,
                        "{} = {fname}({});",
                        lvalue_to_string(p, lv),
                        args.join(", ")
                    );
                }
                None => {
                    let _ = writeln!(out, "{fname}({});", args.join(", "));
                }
            }
        }
        StmtKind::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", expr_to_string(p, e));
        }
        StmtKind::Return(None) => {
            let _ = writeln!(out, "return;");
        }
        StmtKind::Wait => {
            let _ = writeln!(out, "__astree_wait();");
        }
        StmtKind::Assume(e) => {
            let _ = writeln!(out, "__astree_assume({});", expr_to_string(p, e));
        }
        StmtKind::ReadVolatile(v) => {
            let _ = writeln!(out, "__astree_read({});", p.var(*v).name);
        }
    }
}

/// Renders an l-value.
pub fn lvalue_to_string(p: &Program, lv: &Lvalue) -> String {
    let mut s = p.var(lv.base).name.clone();
    let mut ty = p.var(lv.base).ty.clone();
    for a in &lv.path {
        match a {
            Access::Index(e) => {
                let _ = write!(s, "[{}]", expr_to_string(p, e));
                if let Type::Array(elem, _) = ty {
                    ty = *elem;
                }
            }
            Access::Field(f) => {
                if let Type::Record(rid) = &ty {
                    let def = &p.records[rid.0 as usize];
                    let (name, ft) = &def.fields[*f as usize];
                    let _ = write!(s, ".{name}");
                    ty = ft.clone();
                } else {
                    let _ = write!(s, ".#{f}");
                }
            }
        }
    }
    s
}

fn unop_str(op: Unop) -> &'static str {
    match op {
        Unop::Neg => "-",
        Unop::LNot => "!",
        Unop::BNot => "~",
    }
}

fn binop_str(op: Binop) -> &'static str {
    match op {
        Binop::Add => "+",
        Binop::Sub => "-",
        Binop::Mul => "*",
        Binop::Div => "/",
        Binop::Rem => "%",
        Binop::BAnd => "&",
        Binop::BOr => "|",
        Binop::BXor => "^",
        Binop::Shl => "<<",
        Binop::Shr => ">>",
        Binop::Lt => "<",
        Binop::Le => "<=",
        Binop::Gt => ">",
        Binop::Ge => ">=",
        Binop::Eq => "==",
        Binop::Ne => "!=",
        Binop::LAnd => "&&",
        Binop::LOr => "||",
    }
}

/// Renders an expression (fully parenthesized, so precedence never lies).
pub fn expr_to_string(p: &Program, e: &Expr) -> String {
    match e {
        Expr::Int(v, _) => format!("{v}"),
        Expr::Float(b, FloatKind::F32) => format!("{:?}f", b.get()),
        Expr::Float(b, FloatKind::F64) => {
            let v = b.get();
            if v == v.trunc() && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                format!("{v:?}")
            }
        }
        Expr::Load(lv, _) => lvalue_to_string(p, lv),
        Expr::Unop(op, _, a) => format!("{}({})", unop_str(*op), expr_to_string(p, a)),
        Expr::Binop(op, _, a, b) => {
            format!("({} {} {})", expr_to_string(p, a), binop_str(*op), expr_to_string(p, b))
        }
        Expr::Cast(t, a) => format!("({})({})", scalar_to_string(*t), expr_to_string(p, a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Function, VarInfo, VarKind};
    use crate::types::IntType;

    #[test]
    fn renders_simple_program() {
        let mut p = Program::new();
        let x = p.add_var(VarInfo::scalar("x", ScalarType::Int(IntType::INT), VarKind::Global));
        let t = ScalarType::Int(IntType::INT);
        p.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![Stmt::new(StmtKind::Assign(
                Lvalue::var(x),
                Expr::Binop(Binop::Add, t, Box::new(Expr::var(x)), Box::new(Expr::int(1))),
            ))],
        });
        let s = program_to_string(&p);
        assert!(s.contains("void main()"), "{s}");
        assert!(s.contains("x = (x + 1);"), "{s}");
    }

    #[test]
    fn renders_array_decl() {
        assert_eq!(
            decl_to_string(&Type::Array(Box::new(Type::int(IntType::INT)), 8), "a"),
            "int a[8]"
        );
    }

    #[test]
    fn renders_float_constants() {
        let p = Program::new();
        assert_eq!(expr_to_string(&p, &Expr::float(1.0)), "1.0");
        assert_eq!(expr_to_string(&p, &Expr::float(0.25)), "0.25");
    }
}
