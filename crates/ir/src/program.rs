//! Whole-program representation: variables, functions, records.

use crate::expr::{Access, Expr, Lvalue};
use crate::stmt::{Block, StmtId, StmtKind};
use crate::types::{RecordDef, ScalarType, Type};
use std::collections::HashSet;
use std::fmt;

/// Index of a variable in [`Program::vars`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Index of a function in [`Program::funcs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FuncId(pub u32);

/// Storage class of a variable.
///
/// Statics are semantically globals with a fresh name (paper Sect. 4), so the
/// analyzer treats `Global` and `Static` identically; the distinction is kept
/// for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// File-scope variable.
    Global,
    /// `static` variable (block- or file-scope, program lifetime).
    Static,
    /// Function local, created and destroyed with the frame.
    Local,
    /// Function parameter.
    Param,
    /// Compiler-introduced temporary.
    Temp,
}

/// The environment-declared range of a volatile input variable
/// (paper Sect. 4: "ranges of values for a few hardware registers containing
/// volatile input variables").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InputRange {
    /// Integer input in `[lo, hi]`.
    Int(i64, i64),
    /// Floating input in `[lo, hi]`.
    Float(f64, f64),
}

/// A variable: name, type, storage, volatility.
#[derive(Debug, Clone, PartialEq)]
pub struct VarInfo {
    /// Source name (made unique by the frontend).
    pub name: String,
    /// Object type.
    pub ty: Type,
    /// Storage class.
    pub kind: VarKind,
    /// `Some(range)` for volatile hardware inputs; reading such a variable
    /// after a [`StmtKind::ReadVolatile`] yields any value in the range.
    pub volatile_input: Option<InputRange>,
}

impl VarInfo {
    /// A non-volatile scalar variable.
    pub fn scalar(name: impl Into<String>, ty: ScalarType, kind: VarKind) -> VarInfo {
        VarInfo { name: name.into(), ty: Type::Scalar(ty), kind, volatile_input: None }
    }
}

/// How a parameter receives its argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// Copied in.
    ByValue,
    /// Aliases the caller's l-value (a restricted `T*` in the source).
    ByRef,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// The variable standing for the parameter inside the body.
    pub var: VarId,
    /// Passing mode.
    pub kind: ParamKind,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Source name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Return type, if non-`void`.
    pub ret: Option<ScalarType>,
    /// Local (stack) variables, created on entry.
    pub locals: Vec<VarId>,
    /// Body.
    pub body: Block,
}

/// A complete program in the analyzed subset.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// All variables (globals, statics, locals, params, temps).
    pub vars: Vec<VarInfo>,
    /// All functions.
    pub funcs: Vec<Function>,
    /// Record (struct) definitions.
    pub records: Vec<RecordDef>,
    /// The entry function (e.g. `main`).
    pub entry: FuncId,
}

impl Program {
    /// Creates an empty program (entry must be set after adding functions).
    pub fn new() -> Program {
        Program::default()
    }

    /// Adds a variable, returning its id.
    pub fn add_var(&mut self, v: VarInfo) -> VarId {
        self.vars.push(v);
        VarId(self.vars.len() as u32 - 1)
    }

    /// Adds a function, returning its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        self.funcs.push(f);
        FuncId(self.funcs.len() as u32 - 1)
    }

    /// Looks up a variable.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.0 as usize]
    }

    /// Looks up a function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// Finds a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v.name == name).map(|i| VarId(i as u32))
    }

    /// The object type reached by an l-value's access path.
    ///
    /// # Panics
    ///
    /// Panics if the path is ill-typed (the frontend validates paths).
    pub fn lvalue_type(&self, lv: &Lvalue) -> Type {
        let mut t = self.var(lv.base).ty.clone();
        for a in &lv.path {
            t = match (t, a) {
                (Type::Array(elem, _), Access::Index(_)) => (*elem).clone(),
                (Type::Record(rid), Access::Field(f)) => {
                    self.records[rid.0 as usize].fields[*f as usize].1.clone()
                }
                (t, a) => panic!("ill-typed access {a:?} into {t:?}"),
            };
        }
        t
    }

    /// The scalar type of a scalar l-value.
    ///
    /// # Panics
    ///
    /// Panics if the l-value is not scalar.
    pub fn lvalue_scalar_type(&self, lv: &Lvalue) -> ScalarType {
        self.lvalue_type(lv).as_scalar().expect("l-value is not scalar")
    }

    /// Re-numbers every statement id so they are unique across the program,
    /// in pre-order. Returns the number of statements.
    pub fn assign_stmt_ids(&mut self) -> u32 {
        fn renumber(block: &mut Block, next: &mut u32) {
            for s in block {
                s.id = StmtId(*next);
                *next += 1;
                match &mut s.kind {
                    StmtKind::If(_, a, b) => {
                        renumber(a, next);
                        renumber(b, next);
                    }
                    StmtKind::While(_, _, body) => renumber(body, next),
                    _ => {}
                }
            }
        }
        let mut next = 0;
        let mut funcs = std::mem::take(&mut self.funcs);
        for f in &mut funcs {
            renumber(&mut f.body, &mut next);
        }
        self.funcs = funcs;
        next
    }

    /// Validates the program's structural invariants. Returns a list of
    /// human-readable violations (empty means valid).
    ///
    /// Checks: call targets exist; the call graph is acyclic (no recursion,
    /// paper Sect. 5.4); loop ids are unique; l-value paths are well-typed;
    /// volatile inputs are scalars; the entry function exists and takes no
    /// parameters.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        if self.funcs.is_empty() {
            errs.push("program has no functions".to_string());
            return errs;
        }
        if self.entry.0 as usize >= self.funcs.len() {
            errs.push(format!("entry function id {} out of range", self.entry.0));
            return errs;
        }
        if !self.func(self.entry).params.is_empty() {
            errs.push("entry function must take no parameters".to_string());
        }
        // Loop-id uniqueness and per-statement checks.
        let mut loop_ids = HashSet::new();
        for (fi, f) in self.funcs.iter().enumerate() {
            crate::stmt::for_each_stmt(&f.body, &mut |s| {
                match &s.kind {
                    StmtKind::While(id, _, _) if !loop_ids.insert(*id) => {
                        errs.push(format!("duplicate loop id {:?} in {}", id, f.name));
                    }
                    StmtKind::Call(_, callee, args) => {
                        if callee.0 as usize >= self.funcs.len() {
                            errs.push(format!(
                                "call to unknown function {:?} in {}",
                                callee, f.name
                            ));
                        } else {
                            let target = self.func(*callee);
                            if target.params.len() != args.len() {
                                errs.push(format!(
                                    "call to {} with {} args (expected {}) in {}",
                                    target.name,
                                    args.len(),
                                    target.params.len(),
                                    f.name
                                ));
                            }
                        }
                    }
                    StmtKind::ReadVolatile(v) if self.var(*v).volatile_input.is_none() => {
                        errs.push(format!(
                            "ReadVolatile on non-volatile {} in {}",
                            self.var(*v).name,
                            f.name
                        ));
                    }
                    _ => {}
                }
                let _ = fi;
            });
        }
        // Recursion check: DFS for cycles in the call graph.
        let n = self.funcs.len();
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (fi, f) in self.funcs.iter().enumerate() {
            crate::stmt::for_each_stmt(&f.body, &mut |s| {
                if let StmtKind::Call(_, callee, _) = &s.kind {
                    if (callee.0 as usize) < n {
                        callees[fi].push(callee.0 as usize);
                    }
                }
            });
        }
        // 0 = unvisited, 1 = on stack, 2 = done
        let mut state = vec![0u8; n];
        fn dfs(u: usize, callees: &[Vec<usize>], state: &mut [u8]) -> bool {
            state[u] = 1;
            for &v in &callees[u] {
                if state[v] == 1 || (state[v] == 0 && dfs(v, callees, state)) {
                    return true;
                }
            }
            state[u] = 2;
            false
        }
        for u in 0..n {
            if state[u] == 0 && dfs(u, &callees, &mut state) {
                errs.push("recursion detected in the call graph".to_string());
                break;
            }
        }
        errs
    }

    /// Simple size metrics used by benches and reports.
    pub fn metrics(&self) -> Metrics {
        let mut stmts = 0usize;
        let mut loops = 0usize;
        for f in &self.funcs {
            crate::stmt::for_each_stmt(&f.body, &mut |s| {
                stmts += 1;
                if matches!(s.kind, StmtKind::While(..)) {
                    loops += 1;
                }
            });
        }
        let globals = self
            .vars
            .iter()
            .filter(|v| matches!(v.kind, VarKind::Global | VarKind::Static))
            .count();
        let cells = self
            .vars
            .iter()
            .filter(|v| matches!(v.kind, VarKind::Global | VarKind::Static))
            .map(|v| v.ty.scalar_count(&self.records))
            .sum();
        Metrics {
            statements: stmts,
            loops,
            functions: self.funcs.len(),
            globals,
            global_cells: cells,
        }
    }

    /// Evaluates a compile-time-constant expression, if it is one
    /// (constant folding, paper Sect. 5.1).
    pub fn const_eval(e: &Expr) -> Option<ConstValue> {
        use crate::expr::{Binop, Unop};
        match e {
            Expr::Int(v, _) => Some(ConstValue::Int(*v)),
            Expr::Float(b, _) => Some(ConstValue::Float(b.get())),
            Expr::Load(..) => None,
            Expr::Unop(op, t, a) => {
                let a = Self::const_eval(a)?;
                match (op, a) {
                    (Unop::Neg, ConstValue::Int(x)) => {
                        if let ScalarType::Int(it) = t {
                            let r = x.checked_neg()?;
                            it.contains(r).then_some(ConstValue::Int(r))
                        } else {
                            None
                        }
                    }
                    (Unop::Neg, ConstValue::Float(x)) => Some(ConstValue::Float(-x)),
                    (Unop::LNot, ConstValue::Int(x)) => Some(ConstValue::Int((x == 0) as i64)),
                    (Unop::BNot, ConstValue::Int(x)) => {
                        if let ScalarType::Int(it) = t {
                            Some(ConstValue::Int(it.wrap(!x)))
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            Expr::Binop(op, t, a, b) => {
                let a = Self::const_eval(a)?;
                let b = Self::const_eval(b)?;
                match (a, b) {
                    (ConstValue::Int(x), ConstValue::Int(y)) => {
                        let r = match op {
                            Binop::Add => x.checked_add(y)?,
                            Binop::Sub => x.checked_sub(y)?,
                            Binop::Mul => x.checked_mul(y)?,
                            Binop::Div => {
                                if y == 0 {
                                    return None;
                                }
                                x.checked_div(y)?
                            }
                            Binop::Rem => {
                                if y == 0 {
                                    return None;
                                }
                                x.checked_rem(y)?
                            }
                            Binop::BAnd => x & y,
                            Binop::BOr => x | y,
                            Binop::BXor => x ^ y,
                            Binop::Shl => {
                                if !(0..64).contains(&y) {
                                    return None;
                                }
                                x.checked_shl(y as u32)?
                            }
                            Binop::Shr => {
                                if !(0..64).contains(&y) {
                                    return None;
                                }
                                x >> y
                            }
                            Binop::Lt => (x < y) as i64,
                            Binop::Le => (x <= y) as i64,
                            Binop::Gt => (x > y) as i64,
                            Binop::Ge => (x >= y) as i64,
                            Binop::Eq => (x == y) as i64,
                            Binop::Ne => (x != y) as i64,
                            Binop::LAnd => ((x != 0) && (y != 0)) as i64,
                            Binop::LOr => ((x != 0) || (y != 0)) as i64,
                        };
                        if op.is_comparison() || op.is_logical() {
                            Some(ConstValue::Int(r))
                        } else if let ScalarType::Int(it) = t {
                            it.contains(r).then_some(ConstValue::Int(r))
                        } else {
                            None
                        }
                    }
                    (ConstValue::Float(x), ConstValue::Float(y)) => {
                        let r = match op {
                            Binop::Add => x + y,
                            Binop::Sub => x - y,
                            Binop::Mul => x * y,
                            Binop::Div => x / y,
                            Binop::Lt => return Some(ConstValue::Int((x < y) as i64)),
                            Binop::Le => return Some(ConstValue::Int((x <= y) as i64)),
                            Binop::Gt => return Some(ConstValue::Int((x > y) as i64)),
                            Binop::Ge => return Some(ConstValue::Int((x >= y) as i64)),
                            Binop::Eq => return Some(ConstValue::Int((x == y) as i64)),
                            Binop::Ne => return Some(ConstValue::Int((x != y) as i64)),
                            _ => return None,
                        };
                        let r = if let ScalarType::Float(k) = t { k.round_nearest(r) } else { r };
                        r.is_finite().then_some(ConstValue::Float(r))
                    }
                    _ => None,
                }
            }
            Expr::Cast(t, a) => {
                let a = Self::const_eval(a)?;
                match (*t, a) {
                    (ScalarType::Int(it), ConstValue::Int(x)) => Some(ConstValue::Int(it.wrap(x))),
                    (ScalarType::Float(k), ConstValue::Int(x)) => {
                        Some(ConstValue::Float(k.round_nearest(x as f64)))
                    }
                    (ScalarType::Float(k), ConstValue::Float(x)) => {
                        Some(ConstValue::Float(k.round_nearest(x)))
                    }
                    (ScalarType::Int(it), ConstValue::Float(x)) => {
                        let t = x.trunc();
                        (t >= it.min() as f64 && t <= it.max() as f64)
                            .then_some(ConstValue::Int(t as i64))
                    }
                }
            }
        }
    }
}

/// A compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstValue {
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Float(f64),
}

/// Program size metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metrics {
    /// Total statements across all functions.
    pub statements: usize,
    /// Number of loops.
    pub loops: usize,
    /// Number of functions.
    pub functions: usize,
    /// Number of global/static variables.
    pub globals: usize,
    /// Number of scalar cells after array/record expansion.
    pub global_cells: usize,
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} statements, {} loops, {} functions, {} globals ({} cells)",
            self.statements, self.loops, self.functions, self.globals, self.global_cells
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Binop;
    use crate::stmt::{LoopId, Stmt};
    use crate::types::{FloatKind, IntType};

    fn empty_main() -> Program {
        let mut p = Program::new();
        p.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![],
        });
        p
    }

    #[test]
    fn validate_empty_main() {
        let p = empty_main();
        assert!(p.validate().is_empty());
    }

    #[test]
    fn validate_rejects_recursion() {
        let mut p = Program::new();
        let body = vec![Stmt::new(StmtKind::Call(None, FuncId(0), vec![]))];
        p.add_func(Function { name: "f".into(), params: vec![], ret: None, locals: vec![], body });
        let errs = p.validate();
        assert!(errs.iter().any(|e| e.contains("recursion")), "{errs:?}");
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let mut p = Program::new();
        let x = p.add_var(VarInfo::scalar("x", ScalarType::Int(IntType::INT), VarKind::Param));
        p.add_func(Function {
            name: "callee".into(),
            params: vec![Param { var: x, kind: ParamKind::ByValue }],
            ret: None,
            locals: vec![],
            body: vec![],
        });
        let body = vec![Stmt::new(StmtKind::Call(None, FuncId(0), vec![]))];
        p.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body,
        });
        p.entry = FuncId(1);
        let errs = p.validate();
        assert!(errs.iter().any(|e| e.contains("expected 1")), "{errs:?}");
    }

    #[test]
    fn stmt_ids_are_unique_preorder() {
        let mut p = empty_main();
        p.funcs[0].body = vec![
            Stmt::new(StmtKind::If(
                Expr::int(1),
                vec![Stmt::new(StmtKind::Wait)],
                vec![Stmt::new(StmtKind::Wait)],
            )),
            Stmt::new(StmtKind::Return(None)),
        ];
        let n = p.assign_stmt_ids();
        assert_eq!(n, 4);
        let mut ids = Vec::new();
        crate::stmt::for_each_stmt(&p.funcs[0].body, &mut |s| ids.push(s.id.0));
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn lvalue_types_resolve() {
        let mut p = empty_main();
        let arr = p.add_var(VarInfo {
            name: "a".into(),
            ty: Type::Array(Box::new(Type::float(FloatKind::F64)), 4),
            kind: VarKind::Global,
            volatile_input: None,
        });
        let lv = Lvalue::index(arr, Expr::int(2));
        assert_eq!(p.lvalue_scalar_type(&lv), ScalarType::Float(FloatKind::F64));
    }

    #[test]
    fn const_eval_folds() {
        let t = ScalarType::Int(IntType::INT);
        let e = Expr::Binop(Binop::Add, t, Box::new(Expr::int(2)), Box::new(Expr::int(3)));
        assert_eq!(Program::const_eval(&e), Some(ConstValue::Int(5)));
        // Overflow at the op type is not a constant.
        let e = Expr::Binop(
            Binop::Add,
            t,
            Box::new(Expr::int(i32::MAX as i64)),
            Box::new(Expr::int(1)),
        );
        assert_eq!(Program::const_eval(&e), None);
        // Division by zero is not a constant.
        let e = Expr::Binop(Binop::Div, t, Box::new(Expr::int(1)), Box::new(Expr::int(0)));
        assert_eq!(Program::const_eval(&e), None);
        // Casts wrap.
        let e = Expr::Cast(ScalarType::Int(IntType::UCHAR), Box::new(Expr::int(257)));
        assert_eq!(Program::const_eval(&e), Some(ConstValue::Int(1)));
    }

    #[test]
    fn metrics_count() {
        let mut p = empty_main();
        p.funcs[0].body = vec![Stmt::new(StmtKind::While(
            LoopId(0),
            Expr::int(1),
            vec![Stmt::new(StmtKind::Wait)],
        ))];
        let m = p.metrics();
        assert_eq!(m.statements, 2);
        assert_eq!(m.loops, 1);
        assert_eq!(m.functions, 1);
    }
}
