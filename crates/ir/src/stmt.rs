//! Structured statements.
//!
//! The iterator (paper Sect. 5.3–5.4) interprets programs compositionally by
//! induction on the abstract syntax, so the IR keeps C's structured control
//! flow: blocks, `if`, `while`, calls, `return` — plus the periodic
//! synchronous `wait` of the program family and `assume` directives carrying
//! the environment specifications (hardware input ranges, maximal execution
//! time).

use crate::expr::{Expr, Lvalue};
use crate::program::{FuncId, VarId};

/// A stable identifier for a loop, used to attach per-loop analysis
/// parameters (unrolling factors, widening state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

/// A stable identifier for a statement, used for alarms and slicing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

/// A source position (1-based line in the preprocessed translation unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Loc {
    /// Line number; 0 when synthesized.
    pub line: u32,
}

impl Loc {
    /// A location on `line`.
    pub fn line(line: u32) -> Loc {
        Loc { line }
    }
}

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// A statement: a kind, a stable id, and a source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What the statement does.
    pub kind: StmtKind,
    /// Stable id (unique within a program, assigned by the frontend/builder).
    pub id: StmtId,
    /// Source location for alarm reporting.
    pub loc: Loc,
}

/// An argument at a call site.
#[derive(Debug, Clone, PartialEq)]
pub enum CallArg {
    /// Pass by value.
    Value(Expr),
    /// Pass by reference (`&lv` in the source); the callee's by-reference
    /// parameter aliases this l-value.
    Ref(Lvalue),
}

/// The statement kinds of the analyzed subset.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `lv = e;`
    Assign(Lvalue, Expr),
    /// `if (c) { .. } else { .. }`
    If(Expr, Block, Block),
    /// `while (c) { .. }`, with a stable loop id.
    While(LoopId, Expr, Block),
    /// `lv = f(args);` or `f(args);` — calls are statements so conditions
    /// stay side-effect-free (paper Sect. 5.4).
    Call(Option<Lvalue>, FuncId, Vec<CallArg>),
    /// `return e;` / `return;`
    Return(Option<Expr>),
    /// The end-of-cycle `wait for next clock tick` of periodic synchronous
    /// programs; increments the hidden clock of the clocked domain.
    Wait,
    /// Environment specification: the condition may be assumed true here
    /// (used for volatile input ranges and physical-limit assumptions).
    Assume(Expr),
    /// Refresh a volatile input variable from the environment: the variable
    /// takes any value in its declared input range.
    ReadVolatile(VarId),
}

impl Stmt {
    /// Builds a statement with id 0 and no location (for tests and synthetic
    /// programs; the program builder re-numbers ids).
    pub fn new(kind: StmtKind) -> Stmt {
        Stmt { kind, id: StmtId(0), loc: Loc::default() }
    }

    /// Builds a statement at a given line.
    pub fn at(kind: StmtKind, line: u32) -> Stmt {
        Stmt { kind, id: StmtId(0), loc: Loc::line(line) }
    }

    /// Calls `f` on this statement and every statement nested inside it.
    pub fn for_each(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match &self.kind {
            StmtKind::If(_, a, b) => {
                for s in a {
                    s.for_each(f);
                }
                for s in b {
                    s.for_each(f);
                }
            }
            StmtKind::While(_, _, body) => {
                for s in body {
                    s.for_each(f);
                }
            }
            _ => {}
        }
    }
}

/// Calls `f` on every statement of a block, recursively.
pub fn for_each_stmt(block: &Block, f: &mut impl FnMut(&Stmt)) {
    for s in block {
        s.for_each(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn for_each_visits_nested() {
        let inner = Stmt::new(StmtKind::Wait);
        let loop_s = Stmt::new(StmtKind::While(LoopId(0), Expr::int(1), vec![inner]));
        let iff = Stmt::new(StmtKind::If(Expr::int(0), vec![loop_s], vec![]));
        let mut count = 0;
        iff.for_each(&mut |_| count += 1);
        assert_eq!(count, 3);
    }

    #[test]
    fn block_helper_visits_all() {
        let b: Block = vec![Stmt::new(StmtKind::Wait), Stmt::new(StmtKind::Return(None))];
        let mut n = 0;
        for_each_stmt(&b, &mut |_| n += 1);
        assert_eq!(n, 2);
    }
}
