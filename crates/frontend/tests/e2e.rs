//! End-to-end frontend tests: C source → IR → concrete interpretation.

use astree_frontend::Frontend;
use astree_ir::{ExecError, InputRange, Interp, InterpConfig, SeededInputs, Value, VarKind};

fn run_main(src: &str) -> astree_ir::Store {
    let p = Frontend::new().compile_str(src).expect("compiles");
    assert!(p.validate().is_empty(), "{:?}", p.validate());
    let mut inputs = SeededInputs::new(3);
    let mut i = Interp::new(&p, InterpConfig::default(), &mut inputs);
    i.run().expect("runs");
    i.store().clone()
}

fn get(p: &astree_ir::Program, store: &astree_ir::Store, name: &str) -> Value {
    let v = p.var_by_name(name).unwrap_or_else(|| panic!("no var {name}"));
    store[&(v, vec![])]
}

#[test]
fn arithmetic_and_control_flow() {
    let src = r#"
        int fib;
        void main(void) {
            int a = 0; int b = 1; int i;
            for (i = 0; i < 10; i++) {
                int t = a + b;
                a = b;
                b = t;
            }
            fib = a;
        }
    "#;
    let p = Frontend::new().compile_str(src).unwrap();
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    it.run().unwrap();
    assert_eq!(get(&p, it.store(), "fib"), Value::Int(55));
}

#[test]
fn float_filter_runs() {
    let src = r#"
        double x; double y;
        void main(void) {
            int i;
            x = 0.0; y = 0.0;
            for (i = 0; i < 100; i++) {
                double nx = 1.5 * x - 0.7 * y + 1.0;
                y = x;
                x = nx;
            }
        }
    "#;
    let p = Frontend::new().compile_str(src).unwrap();
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    it.run().unwrap();
    let xv = get(&p, it.store(), "x").as_float();
    assert!(xv.is_finite() && xv.abs() < 10.0, "filter diverged: {xv}");
}

#[test]
#[allow(clippy::identity_op)] // the expected sum spells out each iteration's contribution
fn structs_and_arrays() {
    let src = r#"
        struct Point { int x; int y; };
        struct Point pts[3];
        int sum;
        void main(void) {
            int i;
            for (i = 0; i < 3; i++) {
                pts[i].x = i;
                pts[i].y = 2 * i;
            }
            sum = 0;
            for (i = 0; i < 3; i++) {
                sum = sum + pts[i].x + pts[i].y;
            }
        }
    "#;
    let p = Frontend::new().compile_str(src).unwrap();
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    it.run().unwrap();
    assert_eq!(get(&p, it.store(), "sum"), Value::Int(0 + 0 + 1 + 2 + 2 + 4));
}

#[test]
fn call_by_reference() {
    let src = r#"
        int result;
        void scale(int *out, int k) { *out = *out * k; }
        void main(void) {
            result = 7;
            scale(&result, 6);
        }
    "#;
    let p = Frontend::new().compile_str(src).unwrap();
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    it.run().unwrap();
    assert_eq!(get(&p, it.store(), "result"), Value::Int(42));
}

#[test]
fn function_results_in_expressions() {
    let src = r#"
        int r;
        int sq(int v) { return v * v; }
        void main(void) { r = sq(3) + sq(4); }
    "#;
    let p = Frontend::new().compile_str(src).unwrap();
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    it.run().unwrap();
    assert_eq!(get(&p, it.store(), "r"), Value::Int(25));
}

#[test]
fn periodic_synchronous_shape() {
    // The canonical family shape from paper Sect. 4.
    let src = r#"
        volatile int sensor;
        int ticks;
        int acc;
        void main(void) {
            __astree_input_int(sensor, -100, 100);
            ticks = 0;
            acc = 0;
            while (1) {
                int v = sensor;
                if (v > 0) { acc = acc + 1; }
                ticks = ticks + 1;
                __astree_wait();
            }
        }
    "#;
    let p = Frontend::new().compile_str(src).unwrap();
    let sensor = p.var_by_name("sensor").unwrap();
    assert_eq!(p.var(sensor).volatile_input, Some(InputRange::Int(-100, 100)));
    let mut inputs = SeededInputs::new(9);
    let mut it =
        Interp::new(&p, InterpConfig { max_steps: 10_000_000, max_ticks: 500 }, &mut inputs);
    it.run().unwrap();
    assert_eq!(it.ticks(), 500);
    let ticks = get(&p, it.store(), "ticks").as_int();
    assert_eq!(ticks, 500);
    let acc = get(&p, it.store(), "acc").as_int();
    assert!(acc <= ticks);
}

#[test]
fn constant_folding_folds() {
    let src = r#"
        int x;
        void main(void) { x = 2 * 3 + 4; }
    "#;
    let p = Frontend::new().compile_str(src).unwrap();
    let text = astree_ir::pretty::program_to_string(&p);
    assert!(text.contains("x = 10;"), "{text}");
}

#[test]
fn unused_globals_removed() {
    let src = r#"
        int used;
        int unused_table[1000];
        void main(void) { used = 1; }
    "#;
    let p = Frontend::new().compile_str(src).unwrap();
    assert!(p.var_by_name("unused_table").is_none());
    assert!(p.var_by_name("used").is_some());
    let kept = Frontend::new().keep_unused_globals(true).compile_str(src).unwrap();
    assert!(kept.var_by_name("unused_table").is_some());
}

#[test]
fn runtime_error_is_caught() {
    let src = r#"
        int x; int d;
        void main(void) { d = 0; x = 10 / d; }
    "#;
    let p = Frontend::new().compile_str(src).unwrap();
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    assert!(matches!(it.run(), Err(ExecError::DivByZero(_))));
}

#[test]
fn static_locals_persist() {
    let src = r#"
        int out;
        void bump(void) { static int count = 5; count = count + 1; out = count; }
        void main(void) { bump(); bump(); bump(); }
    "#;
    let p = Frontend::new().compile_str(src).unwrap();
    let statics: Vec<_> = p.vars.iter().filter(|v| matches!(v.kind, VarKind::Static)).collect();
    assert_eq!(statics.len(), 1);
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    it.run().unwrap();
    assert_eq!(get(&p, it.store(), "out"), Value::Int(8));
}

#[test]
fn ternary_hoisting() {
    let src = r#"
        int y;
        void main(void) {
            int x = -5;
            y = x > 0 ? x : -x;
        }
    "#;
    let store_p = Frontend::new().compile_str(src).unwrap();
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&store_p, InterpConfig::default(), &mut inputs);
    it.run().unwrap();
    assert_eq!(get(&store_p, it.store(), "y"), Value::Int(5));
}

#[test]
fn bool_normalization() {
    let src = r#"
        _Bool b; int n;
        void main(void) { n = 7; b = (_Bool)n; }
    "#;
    let p = Frontend::new().compile_str(src).unwrap();
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    it.run().unwrap();
    assert_eq!(get(&p, it.store(), "b"), Value::Int(1));
}

#[test]
fn mixed_types_insert_casts() {
    let src = r#"
        double d; int i;
        void main(void) {
            i = 3;
            d = i / 2;        /* integer division, then int->double */
        }
    "#;
    let p = Frontend::new().compile_str(src).unwrap();
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    it.run().unwrap();
    assert_eq!(get(&p, it.store(), "d"), Value::Float(1.0));
}

#[test]
fn multi_unit_link() {
    let unit_a = r#"
        extern int shared;
        int get3(void);
        void main(void) { shared = get3(); }
    "#;
    let unit_b = r#"
        int shared;
        int get3(void) { return 3; }
    "#;
    let p = Frontend::new().compile_units(&[unit_a, unit_b]).unwrap();
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    it.run().unwrap();
    assert_eq!(get(&p, it.store(), "shared"), Value::Int(3));
}

#[test]
fn do_while_executes_once() {
    let src = r#"
        int n;
        void main(void) {
            n = 0;
            do { n = n + 1; } while (0);
        }
    "#;
    let store = run_main(src);
    let p = Frontend::new().compile_str(src).unwrap();
    let v = p.var_by_name("n").unwrap();
    assert_eq!(store[&(v, vec![])], Value::Int(1));
}

#[test]
fn global_initializer_lists() {
    let src = r#"
        int table[4] = {10, 20, 30};
        int x;
        void main(void) { x = table[0] + table[1] + table[2] + table[3]; }
    "#;
    let p = Frontend::new().compile_str(src).unwrap();
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    it.run().unwrap();
    assert_eq!(get(&p, it.store(), "x"), Value::Int(60));
}
