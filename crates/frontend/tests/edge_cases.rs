//! Frontend edge cases: preprocessor corner cases, diagnostics quality,
//! and lowering details the generated family exercises indirectly.

use astree_frontend::{Frontend, FrontendError};
use astree_ir::{Interp, InterpConfig, ScalarType, SeededInputs, Value};

fn compile(src: &str) -> Result<astree_ir::Program, FrontendError> {
    Frontend::new().compile_str(src)
}

fn run_get(src: &str, name: &str) -> Value {
    let p = compile(src).expect("compiles");
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    it.run().expect("runs");
    let v = p.var_by_name(name).unwrap_or_else(|| panic!("no var {name}"));
    it.store()[&(v, vec![])]
}

// ----- preprocessor ---------------------------------------------------------

#[test]
fn nested_function_macros_with_sat() {
    // The SAT macro of the generated family: nested ternaries.
    let src = r#"
        #define SAT(v, lo, hi) ((v) > (hi) ? (hi) : ((v) < (lo) ? (lo) : (v)))
        int a; int b; int c;
        void main(void) {
            a = SAT(150, 0, 100);
            b = SAT(-3, 0, 100);
            c = SAT(42, 0, 100);
        }
    "#;
    assert_eq!(run_get(src, "a"), Value::Int(100));
    assert_eq!(run_get(src, "b"), Value::Int(0));
    assert_eq!(run_get(src, "c"), Value::Int(42));
}

#[test]
fn macro_arguments_with_commas_in_parens() {
    let src = r#"
        #define APPLY(f, x) f(x)
        int out;
        int twice(int v) { return v * 2; }
        void main(void) { out = APPLY(twice, 21); }
    "#;
    assert_eq!(run_get(src, "out"), Value::Int(42));
}

#[test]
fn conditional_compilation_selects_variant() {
    let base = r#"
        #ifdef FAST
        int rate = 10;
        #else
        int rate = 1;
        #endif
        int out;
        void main(void) { out = rate; }
    "#;
    assert_eq!(run_get(base, "out"), Value::Int(1));
    let mut fe = Frontend::new();
    fe.define("FAST", "1");
    let p = fe.compile_str(base).unwrap();
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    it.run().unwrap();
    let v = p.var_by_name("out").unwrap();
    assert_eq!(it.store()[&(v, vec![])], Value::Int(10));
}

#[test]
fn include_chains_and_guards() {
    let mut fe = Frontend::new();
    fe.add_include("config.h", "#ifndef CONFIG_H\n#define CONFIG_H\n#define LIMIT 7\n#endif\n");
    fe.add_include("lib.h", "#include \"config.h\"\nint limit_value(void);");
    let p = fe
        .compile_str(
            r#"
            #include "lib.h"
            #include "config.h"
            int out;
            int limit_value(void) { return LIMIT; }
            void main(void) { out = limit_value(); }
        "#,
        )
        .unwrap();
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    it.run().unwrap();
    let v = p.var_by_name("out").unwrap();
    assert_eq!(it.store()[&(v, vec![])], Value::Int(7));
}

// ----- diagnostics -----------------------------------------------------------

#[test]
fn errors_carry_line_numbers() {
    let e = compile("int x;\nvoid main(void) {\n    x = ;\n}").unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("line 3"), "{msg}");
}

#[test]
fn unknown_variable_is_a_semantic_error() {
    let e = compile("void main(void) { nosuch = 1; }").unwrap_err();
    assert!(matches!(e, FrontendError::Lower(_)), "{e}");
    assert!(e.to_string().contains("nosuch"));
}

#[test]
fn missing_main_is_rejected() {
    let e = compile("int x; void helper(void) { x = 1; }").unwrap_err();
    assert!(e.to_string().contains("main"), "{e}");
}

#[test]
fn call_arity_is_checked() {
    let e = compile("void f(int a, int b) { } void main(void) { f(1); }").unwrap_err();
    assert!(e.to_string().contains("expects 2"), "{e}");
}

#[test]
fn by_ref_requires_address_of() {
    let e = compile("void f(int *p) { *p = 1; } int g; void main(void) { f(g); }").unwrap_err();
    assert!(e.to_string().contains("&lvalue"), "{e}");
}

#[test]
fn void_function_in_expression_is_rejected() {
    let e = compile("int x; void f(void) { } void main(void) { x = f() + 1; }").unwrap_err();
    assert!(e.to_string().contains("void"), "{e}");
}

// ----- lowering details ------------------------------------------------------

#[test]
fn unsigned_arithmetic_uses_uint_semantics() {
    // 2147483648u is representable as unsigned; comparing signed/unsigned
    // promotes to unsigned.
    let src = r#"
        unsigned int u; int out;
        void main(void) {
            u = 3000000000u;
            out = (u > 2000000000u) ? 1 : 0;
        }
    "#;
    assert_eq!(run_get(src, "out"), Value::Int(1));
}

#[test]
fn char_arithmetic_promotes_to_int() {
    let src = r#"
        unsigned char a; unsigned char b; int out;
        void main(void) {
            a = 200; b = 100;
            out = a + b;    /* 300: fine at int width */
        }
    "#;
    assert_eq!(run_get(src, "out"), Value::Int(300));
}

#[test]
fn float_literal_suffix_selects_f32() {
    let p = compile("float f; void main(void) { f = 0.1f; }").unwrap();
    let v = p.var_by_name("f").unwrap();
    assert_eq!(p.var(v).ty.as_scalar(), Some(ScalarType::Float(astree_ir::FloatKind::F32)));
    let mut inputs = SeededInputs::new(1);
    let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
    it.run().unwrap();
    assert_eq!(it.store()[&(v, vec![])], Value::Float(0.1f32 as f64));
}

#[test]
fn logical_operators_short_circuit_value() {
    let src = r#"
        int a; int b; int c;
        void main(void) {
            a = (1 && 2) + (0 || 0);  /* 1 + 0 */
            b = !5;
            c = !0;
        }
    "#;
    assert_eq!(run_get(src, "a"), Value::Int(1));
    assert_eq!(run_get(src, "b"), Value::Int(0));
    assert_eq!(run_get(src, "c"), Value::Int(1));
}

#[test]
fn hex_octal_char_literals() {
    let src = r#"
        int a; int b; int c;
        void main(void) { a = 0xFF; b = 010; c = 'A'; }
    "#;
    assert_eq!(run_get(src, "a"), Value::Int(255));
    assert_eq!(run_get(src, "b"), Value::Int(8));
    assert_eq!(run_get(src, "c"), Value::Int(65));
}

#[test]
fn enum_constants_in_expressions() {
    let src = r#"
        enum Mode { OFF, INIT = 5, RUN };
        int out;
        void main(void) { out = RUN; }
    "#;
    assert_eq!(run_get(src, "out"), Value::Int(6));
}

#[test]
fn typedef_chains() {
    let src = r#"
        typedef unsigned char BYTE;
        typedef BYTE OCTET;
        OCTET o; int out;
        void main(void) { o = 255; out = o + 1; }
    "#;
    assert_eq!(run_get(src, "out"), Value::Int(256));
}

#[test]
fn two_dim_arrays() {
    let src = r#"
        int m[3][4]; int out;
        void main(void) {
            int i; int j;
            for (i = 0; i < 3; i++) {
                for (j = 0; j < 4; j++) { m[i][j] = i * 10 + j; }
            }
            out = m[2][3];
        }
    "#;
    assert_eq!(run_get(src, "out"), Value::Int(23));
}

#[test]
fn struct_initializers_apply_in_order() {
    let src = r#"
        struct P { int x; int y; };
        struct P p = { 3, 4 };
        int out;
        void main(void) { out = p.x * 10 + p.y; }
    "#;
    assert_eq!(run_get(src, "out"), Value::Int(34));
}

#[test]
fn volatile_reads_are_fresh_each_statement() {
    // Two consecutive reads may differ: the sum ranges over [0, 2], and the
    // analyzer must not assume both reads are equal.
    let src = r#"
        volatile int in; int s;
        void main(void) {
            __astree_input_int(in, 0, 1);
            s = in + in;
        }
    "#;
    let p = compile(src).unwrap();
    let r = astree_core::AnalysisSession::builder(&p).build().run();
    assert!(r.alarms.is_empty());
    // Concretely, collect different sums across seeds.
    let mut seen = std::collections::BTreeSet::new();
    for seed in 0..50 {
        let mut inputs = SeededInputs::new(seed);
        let mut it = Interp::new(&p, InterpConfig::default(), &mut inputs);
        it.run().unwrap();
        let v = p.var_by_name("s").unwrap();
        seen.insert(it.store()[&(v, vec![])].as_int());
    }
    assert!(seen.len() >= 2, "sums never varied: {seen:?}");
}
