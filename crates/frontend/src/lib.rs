//! C-subset frontend: preprocessing, parsing, type checking and lowering.
//!
//! Implements the preprocessing-and-parsing phase of the analyzer (paper
//! Sect. 5.1): the source is preprocessed with a small C preprocessor
//! ([`preprocess`]), parsed with a C99-compatible recursive-descent parser
//! for the analyzed subset ([`parse`]), several translation units can be
//! linked ([`parse::link`]), and the result is type-checked and compiled into the
//! typed IR of [`astree_ir`] with all conversions explicit ([`lower`]).
//! Syntactically constant expressions are folded and unused globals removed
//! ([`simplify`]), which matters because the family's large constant arrays
//! index hardware tables.
//!
//! The accepted subset follows the family of programs in paper Sect. 4: no
//! dynamic allocation, pointers only as call-by-reference function
//! parameters, no recursion, `struct`s and fixed-size arrays, `enum`s,
//! `typedef`s, the usual scalar types, and the periodic-synchronous
//! intrinsics `__astree_wait()`, `__astree_assume(e)` and volatile input
//! declarations with environment-supplied ranges.
//!
//! # Examples
//!
//! ```
//! use astree_frontend::Frontend;
//!
//! let src = r#"
//!     int x;
//!     void main(void) {
//!         x = 1 + 2;
//!     }
//! "#;
//! let program = Frontend::new().compile_str(src).expect("compiles");
//! assert!(program.validate().is_empty());
//! ```

pub mod ast;
pub mod lex;
pub mod lower;
pub mod parse;
pub mod preprocess;
pub mod simplify;

use astree_ir::Program;
use std::collections::HashMap;

pub use lex::{LexError, Token, TokenKind};
pub use lower::LowerError;
pub use parse::ParseError;
pub use preprocess::PreprocessError;

/// A frontend error from any phase.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// Preprocessor failure.
    Preprocess(PreprocessError),
    /// Lexical failure.
    Lex(LexError),
    /// Syntax failure.
    Parse(ParseError),
    /// Type/semantic failure.
    Lower(LowerError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Preprocess(e) => write!(f, "preprocess: {e}"),
            FrontendError::Lex(e) => write!(f, "lex: {e}"),
            FrontendError::Parse(e) => write!(f, "parse: {e}"),
            FrontendError::Lower(e) => write!(f, "semantic: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<PreprocessError> for FrontendError {
    fn from(e: PreprocessError) -> Self {
        FrontendError::Preprocess(e)
    }
}
impl From<LexError> for FrontendError {
    fn from(e: LexError) -> Self {
        FrontendError::Lex(e)
    }
}
impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}
impl From<LowerError> for FrontendError {
    fn from(e: LowerError) -> Self {
        FrontendError::Lower(e)
    }
}

/// The complete compilation pipeline, configurable with include files and
/// predefined macros.
///
/// # Examples
///
/// ```
/// use astree_frontend::Frontend;
/// let mut fe = Frontend::new();
/// fe.define("LIMIT", "100");
/// fe.add_include("config.h", "int shared;");
/// let p = fe
///     .compile_str("#include \"config.h\"\nvoid main(void) { shared = LIMIT; }")
///     .unwrap();
/// assert!(p.var_by_name("shared").is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Frontend {
    includes: HashMap<String, String>,
    defines: Vec<(String, String)>,
    keep_unused_globals: bool,
}

impl Frontend {
    /// Creates a frontend with no include files and no predefined macros.
    pub fn new() -> Frontend {
        Frontend::default()
    }

    /// Registers an include file (the "simple linker"'s view of headers).
    pub fn add_include(
        &mut self,
        name: impl Into<String>,
        content: impl Into<String>,
    ) -> &mut Self {
        self.includes.insert(name.into(), content.into());
        self
    }

    /// Predefines an object-like macro.
    pub fn define(&mut self, name: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.defines.push((name.into(), value.into()));
        self
    }

    /// Keeps unused globals instead of deleting them (paper Sect. 5.1 deletes
    /// them; tests sometimes want them kept).
    pub fn keep_unused_globals(&mut self, keep: bool) -> &mut Self {
        self.keep_unused_globals = keep;
        self
    }

    /// Compiles one translation unit from source text to IR.
    ///
    /// # Errors
    ///
    /// Returns the first error of any phase.
    pub fn compile_str(&self, src: &str) -> Result<Program, FrontendError> {
        self.compile_units(&[src])
    }

    /// Compiles and links several translation units (paper Sect. 5.1:
    /// "a simple linker allows programs consisting of several source files
    /// to be processed").
    ///
    /// # Errors
    ///
    /// Returns the first error of any phase.
    pub fn compile_units(&self, sources: &[&str]) -> Result<Program, FrontendError> {
        let mut asts = Vec::new();
        for src in sources {
            let tokens = preprocess::preprocess(src, &self.includes, &self.defines)?;
            let ast = parse::parse(&tokens)?;
            asts.push(ast);
        }
        let merged = parse::link(asts).map_err(FrontendError::Parse)?;
        let mut program = lower::lower(&merged)?;
        simplify::fold_constants(&mut program);
        if !self.keep_unused_globals {
            simplify::remove_unused_globals(&mut program);
        }
        program.assign_stmt_ids();
        Ok(program)
    }
}
