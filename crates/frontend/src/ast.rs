//! Surface abstract syntax, produced by the parser and consumed by lowering.
//!
//! Typedefs and enumeration constants are resolved during parsing (the
//! parser needs them to disambiguate anyway), so the AST contains only
//! structural types and plain identifiers.

use astree_ir::ScalarType;

/// A surface type.
#[derive(Debug, Clone, PartialEq)]
pub enum AstType {
    /// `void` (function returns only).
    Void,
    /// A scalar type, already resolved to the machine model.
    Scalar(ScalarType),
    /// Fixed-size array (size from a constant expression).
    Array(Box<AstType>, usize),
    /// `struct tag`.
    Struct(String),
    /// Pointer — only legal as a function parameter type (call-by-reference).
    Pointer(Box<AstType>),
}

/// An initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// `= expr`
    Scalar(AstExpr),
    /// `= { ... }`
    List(Vec<Init>),
}

/// A surface expression with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct AstExpr {
    /// Expression node.
    pub kind: ExprKind,
    /// 1-based line.
    pub line: u32,
}

/// Surface expression nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer constant (value, unsigned suffix).
    Int(i64, bool),
    /// Float constant (value, `f` suffix means `float`).
    Float(f64, bool),
    /// Identifier (variable or enum constant; resolved at lowering).
    Ident(String),
    /// `a[i]`
    Index(Box<AstExpr>, Box<AstExpr>),
    /// `s.f`
    Field(Box<AstExpr>, String),
    /// `p->f` (by-ref struct parameter)
    Arrow(Box<AstExpr>, String),
    /// `*p` (by-ref scalar parameter)
    Deref(Box<AstExpr>),
    /// `&lv` (call arguments only)
    AddrOf(Box<AstExpr>),
    /// `f(args)`
    Call(String, Vec<AstExpr>),
    /// Unary `-`, `!`, `~`
    Unop(UnopKind, Box<AstExpr>),
    /// Binary operator
    Binop(BinopKind, Box<AstExpr>, Box<AstExpr>),
    /// `c ? a : b`
    Ternary(Box<AstExpr>, Box<AstExpr>, Box<AstExpr>),
    /// `(T)e`
    Cast(AstType, Box<AstExpr>),
    /// `l = r` (expression statements only)
    Assign(Box<AstExpr>, Box<AstExpr>),
    /// `l op= r` (expression statements only)
    CompoundAssign(BinopKind, Box<AstExpr>, Box<AstExpr>),
}

/// Surface unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnopKind {
    /// `-`
    Neg,
    /// `!`
    LNot,
    /// `~`
    BNot,
}

/// Surface binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinopKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    BAnd,
    /// `|`
    BOr,
    /// `^`
    BXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    LAnd,
    /// `||`
    LOr,
}

/// A surface statement with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct AstStmt {
    /// Statement node.
    pub kind: StmtKindAst,
    /// 1-based line.
    pub line: u32,
}

/// Surface statement nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKindAst {
    /// Local declaration (name, type, static storage, initializer).
    Decl(String, AstType, bool, Option<Init>),
    /// Expression statement: assignment, compound assignment, or call.
    Expr(AstExpr),
    /// `if`
    If(AstExpr, Vec<AstStmt>, Vec<AstStmt>),
    /// `while`
    While(AstExpr, Vec<AstStmt>),
    /// `do { } while (c);`
    DoWhile(Vec<AstStmt>, AstExpr),
    /// `for (init; cond; step)`
    For(Option<AstExpr>, Option<AstExpr>, Option<AstExpr>, Vec<AstStmt>),
    /// `return`
    Return(Option<AstExpr>),
    /// `{ ... }` (scoping block)
    Block(Vec<AstStmt>),
    /// `;`
    Empty,
}

/// A global (or file-`static`) variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: AstType,
    /// `static` storage class.
    pub is_static: bool,
    /// `volatile` qualifier (hardware input).
    pub is_volatile: bool,
    /// `extern` (declaration only; merged by the linker).
    pub is_extern: bool,
    /// Initializer.
    pub init: Option<Init>,
    /// 1-based line.
    pub line: u32,
}

/// A function definition or prototype.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: AstType,
    /// Parameters (name, type).
    pub params: Vec<(String, AstType)>,
    /// `None` for a prototype.
    pub body: Option<Vec<AstStmt>>,
    /// 1-based line.
    pub line: u32,
}

/// A parsed translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AstProgram {
    /// Struct definitions (tag, fields).
    pub structs: Vec<(String, Vec<(String, AstType)>)>,
    /// Globals in declaration order.
    pub globals: Vec<GlobalDecl>,
    /// Functions in declaration order.
    pub funcs: Vec<FuncDecl>,
}
