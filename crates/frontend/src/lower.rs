//! Type checking and lowering from the surface AST to the typed IR.
//!
//! All implicit conversions become explicit [`ir::Expr::Cast`] nodes (usual
//! arithmetic conversions on the 32-bit target), ternaries and calls inside
//! expressions are hoisted into temporaries so conditions stay side-effect
//! free (the program transformation assumed in paper Sect. 5.4), global and
//! static initializers become explicit assignments at the head of the entry
//! function, and reads of volatile variables are preceded by explicit
//! [`ir::StmtKind::ReadVolatile`] refreshes.
//!
//! The periodic-synchronous intrinsics are recognized here:
//!
//! - `__astree_wait()` — end of cycle, clock tick;
//! - `__astree_assume(e)` — environment assumption;
//! - `__astree_input_int(v, lo, hi)` / `__astree_input_float(v, lo, hi)` —
//!   declare the range of a volatile input variable.

use crate::ast::*;
use astree_ir as ir;
use astree_ir::{
    Access, CallArg, FloatKind, FuncId, InputRange, IntType, LoopId, Lvalue, Param, ParamKind,
    RecordDef, RecordId, ScalarType, Stmt, StmtKind, Type, VarId, VarInfo, VarKind,
};
use std::collections::HashMap;

/// A semantic (type-checking/lowering) error.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LowerError {}

/// Lowers a linked AST program into the typed IR.
///
/// # Errors
///
/// Returns the first [`LowerError`]: unknown names, type mismatches, uses of
/// constructs outside the analyzed subset.
pub fn lower(ast: &AstProgram) -> Result<ir::Program, LowerError> {
    let mut lw = Lowerer {
        program: ir::Program::new(),
        record_ids: HashMap::new(),
        globals: HashMap::new(),
        func_ids: HashMap::new(),
        func_sigs: HashMap::new(),
        scopes: Vec::new(),
        ref_params: HashMap::new(),
        next_loop: 0,
        next_temp: 0,
        init_stmts: Vec::new(),
    };
    lw.run(ast)?;
    Ok(lw.program)
}

#[derive(Clone)]
struct FuncSig {
    params: Vec<(Type, ParamKind)>,
    ret: Option<ScalarType>,
}

struct Lowerer {
    program: ir::Program,
    record_ids: HashMap<String, RecordId>,
    globals: HashMap<String, VarId>,
    func_ids: HashMap<String, FuncId>,
    func_sigs: HashMap<String, FuncSig>,
    /// Lexical scopes for the function currently being lowered.
    scopes: Vec<HashMap<String, VarId>>,
    /// Parameters passed by reference in the current function.
    ref_params: HashMap<VarId, ()>,
    next_loop: u32,
    next_temp: u32,
    /// Initializer assignments accumulated for the entry function.
    init_stmts: Vec<Stmt>,
}

impl Lowerer {
    fn err(&self, line: u32, msg: impl Into<String>) -> LowerError {
        LowerError { line, msg: msg.into() }
    }

    fn run(&mut self, ast: &AstProgram) -> Result<(), LowerError> {
        // Records first (types may reference them).
        for (tag, _fields) in &ast.structs {
            let id = RecordId(self.program.records.len() as u32);
            self.record_ids.insert(tag.clone(), id);
            self.program.records.push(RecordDef { name: tag.clone(), fields: Vec::new() });
        }
        for (tag, fields) in &ast.structs {
            let mut lowered = Vec::new();
            for (fname, fty) in fields {
                lowered.push((fname.clone(), self.lower_type(fty, 0)?));
            }
            let id = self.record_ids[tag];
            self.program.records[id.0 as usize].fields = lowered;
        }
        // Globals.
        for g in &ast.globals {
            let ty = self.lower_type(&g.ty, g.line)?;
            if matches!(g.ty, AstType::Pointer(_)) {
                return Err(self.err(g.line, "global pointers are not in the analyzed subset"));
            }
            let kind = if g.is_static { VarKind::Static } else { VarKind::Global };
            let volatile_input =
                if g.is_volatile {
                    Some(default_range(&ty).ok_or_else(|| {
                        self.err(g.line, "volatile qualifier requires a scalar type")
                    })?)
                } else {
                    None
                };
            let id =
                self.program.add_var(VarInfo { name: g.name.clone(), ty, kind, volatile_input });
            self.globals.insert(g.name.clone(), id);
        }
        // Global initializers become entry-prologue assignments.
        for g in &ast.globals {
            if let Some(init) = &g.init {
                let var = self.globals[&g.name];
                let ty = self.program.var(var).ty.clone();
                let mut stmts = Vec::new();
                self.lower_init(var, &mut Vec::new(), &ty, init, g.line, &mut stmts)?;
                self.init_stmts.extend(stmts);
            }
        }
        // Function signatures (so calls can be typed before bodies).
        for f in &ast.funcs {
            let mut params = Vec::new();
            for (_, pty) in &f.params {
                match pty {
                    AstType::Pointer(inner) => {
                        params.push((self.lower_type(inner, f.line)?, ParamKind::ByRef))
                    }
                    other => {
                        let t = self.lower_type(other, f.line)?;
                        if !matches!(t, Type::Scalar(_)) {
                            return Err(self.err(
                                f.line,
                                "aggregate by-value parameters are not in the analyzed subset",
                            ));
                        }
                        params.push((t, ParamKind::ByValue))
                    }
                }
            }
            let ret =
                match &f.ret {
                    AstType::Void => None,
                    other => {
                        let t = self.lower_type(other, f.line)?;
                        Some(t.as_scalar().ok_or_else(|| {
                            self.err(f.line, "functions must return scalars or void")
                        })?)
                    }
                };
            self.func_sigs.insert(f.name.clone(), FuncSig { params, ret });
        }
        // Pre-create FuncIds in declaration order so calls resolve.
        for f in &ast.funcs {
            if f.body.is_none() {
                continue;
            }
            let id = self.program.add_func(ir::Function {
                name: f.name.clone(),
                params: Vec::new(),
                ret: self.func_sigs[&f.name].ret,
                locals: Vec::new(),
                body: Vec::new(),
            });
            self.func_ids.insert(f.name.clone(), id);
        }
        // Bodies.
        for f in ast.funcs.iter().filter(|f| f.body.is_some()) {
            self.lower_function(f)?;
        }
        // Entry = main; prepend accumulated initializers.
        let entry =
            self.func_ids.get("main").copied().ok_or_else(|| self.err(0, "no `main` function"))?;
        self.program.entry = entry;
        let mut init = std::mem::take(&mut self.init_stmts);
        if !init.is_empty() {
            let body = &mut self.program.funcs[entry.0 as usize].body;
            init.extend(std::mem::take(body));
            *body = init;
        }
        Ok(())
    }

    fn lower_type(&self, t: &AstType, line: u32) -> Result<Type, LowerError> {
        match t {
            AstType::Void => Err(self.err(line, "void is not an object type")),
            AstType::Scalar(s) => Ok(Type::Scalar(*s)),
            AstType::Array(elem, n) => Ok(Type::Array(Box::new(self.lower_type(elem, line)?), *n)),
            AstType::Struct(tag) => self
                .record_ids
                .get(tag)
                .map(|id| Type::Record(*id))
                .ok_or_else(|| self.err(line, format!("unknown struct {tag}"))),
            AstType::Pointer(_) => {
                Err(self.err(line, "pointers only appear as by-reference parameters"))
            }
        }
    }

    fn lower_function(&mut self, f: &FuncDecl) -> Result<(), LowerError> {
        let fid = self.func_ids[&f.name];
        self.scopes.clear();
        self.scopes.push(HashMap::new());
        self.ref_params.clear();
        let sig = self.func_sigs[&f.name].clone();
        let mut params = Vec::new();
        for ((pname, _), (pty, pkind)) in f.params.iter().zip(&sig.params) {
            let var = self.program.add_var(VarInfo {
                name: format!("{}::{}", f.name, pname),
                ty: pty.clone(),
                kind: VarKind::Param,
                volatile_input: None,
            });
            if *pkind == ParamKind::ByRef {
                self.ref_params.insert(var, ());
            }
            self.scopes.last_mut().expect("scope").insert(pname.clone(), var);
            params.push(Param { var, kind: *pkind });
        }
        let mut locals = Vec::new();
        let mut body = Vec::new();
        self.lower_block(f.body.as_ref().expect("definition"), &f.name, &mut locals, &mut body)?;
        let func = &mut self.program.funcs[fid.0 as usize];
        func.params = params;
        func.locals = locals;
        func.body = body;
        Ok(())
    }

    fn lower_block(
        &mut self,
        stmts: &[AstStmt],
        fname: &str,
        locals: &mut Vec<VarId>,
        out: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.lower_stmt(s, fname, locals, out)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn fresh_temp(&mut self, ty: ScalarType) -> VarId {
        let n = self.next_temp;
        self.next_temp += 1;
        self.program.add_var(VarInfo {
            name: format!("__tmp{n}"),
            ty: Type::Scalar(ty),
            kind: VarKind::Temp,
            volatile_input: None,
        })
    }

    fn lookup(&self, name: &str) -> Option<VarId> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(*v);
            }
        }
        self.globals.get(name).copied()
    }

    fn lower_stmt(
        &mut self,
        s: &AstStmt,
        fname: &str,
        locals: &mut Vec<VarId>,
        out: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        let line = s.line;
        match &s.kind {
            StmtKindAst::Empty => Ok(()),
            StmtKindAst::Decl(name, ty, is_static, init) => {
                let ty = self.lower_type(ty, line)?;
                let kind = if *is_static { VarKind::Static } else { VarKind::Local };
                let var = self.program.add_var(VarInfo {
                    name: format!("{fname}::{name}"),
                    ty: ty.clone(),
                    kind,
                    volatile_input: None,
                });
                self.scopes.last_mut().expect("scope").insert(name.clone(), var);
                if !*is_static {
                    locals.push(var);
                }
                if let Some(init) = init {
                    if *is_static {
                        // Static initialization happens once, before main.
                        let mut stmts = Vec::new();
                        self.lower_init(var, &mut Vec::new(), &ty, init, line, &mut stmts)?;
                        self.init_stmts.extend(stmts);
                    } else {
                        self.lower_init(var, &mut Vec::new(), &ty, init, line, out)?;
                    }
                }
                Ok(())
            }
            StmtKindAst::Expr(e) => self.lower_expr_stmt(e, line, out),
            StmtKindAst::If(c, a, b) => {
                let cond = self.lower_condition(c, line, out)?;
                let mut then_b = Vec::new();
                self.lower_block(a, fname, locals, &mut then_b)?;
                let mut else_b = Vec::new();
                self.lower_block(b, fname, locals, &mut else_b)?;
                out.push(Stmt::at(StmtKind::If(cond, then_b, else_b), line));
                Ok(())
            }
            StmtKindAst::While(c, body) => {
                let cond = self.lower_loop_condition(c, line)?;
                let mut b = Vec::new();
                self.lower_block(body, fname, locals, &mut b)?;
                let id = LoopId(self.next_loop);
                self.next_loop += 1;
                self.emit_volatile_reads(&cond, line, out);
                // Volatile variables in the condition must also be refreshed
                // at the end of each iteration (each test is a fresh read).
                let mut tail = Vec::new();
                self.emit_volatile_reads(&cond, line, &mut tail);
                b.extend(tail);
                out.push(Stmt::at(StmtKind::While(id, cond, b), line));
                Ok(())
            }
            StmtKindAst::DoWhile(body, c) => {
                // do { B } while (c)  ≡  B; while (c) { B }
                let mut first = Vec::new();
                self.lower_block(body, fname, locals, &mut first)?;
                out.extend(first.clone());
                let cond = self.lower_loop_condition(c, line)?;
                let id = LoopId(self.next_loop);
                self.next_loop += 1;
                self.emit_volatile_reads(&cond, line, out);
                let mut b = first;
                self.emit_volatile_reads(&cond, line, &mut b);
                out.push(Stmt::at(StmtKind::While(id, cond, b), line));
                Ok(())
            }
            StmtKindAst::For(init, cond, step, body) => {
                if let Some(init) = init {
                    self.lower_expr_stmt(init, line, out)?;
                }
                let cond = match cond {
                    Some(c) => self.lower_loop_condition(c, line)?,
                    None => ir::Expr::int(1),
                };
                let mut b = Vec::new();
                self.lower_block(body, fname, locals, &mut b)?;
                if let Some(step) = step {
                    self.lower_expr_stmt(step, line, &mut b)?;
                }
                let id = LoopId(self.next_loop);
                self.next_loop += 1;
                self.emit_volatile_reads(&cond, line, out);
                let mut tail = Vec::new();
                self.emit_volatile_reads(&cond, line, &mut tail);
                b.extend(tail);
                out.push(Stmt::at(StmtKind::While(id, cond, b), line));
                Ok(())
            }
            StmtKindAst::Return(e) => {
                let sig_ret = self.func_sigs[fname].ret;
                match (e, sig_ret) {
                    (None, None) => {
                        out.push(Stmt::at(StmtKind::Return(None), line));
                        Ok(())
                    }
                    (Some(e), Some(rt)) => {
                        let (ex, ty) = self.lower_expr(e, out)?;
                        let ex = convert(ex, ty, rt);
                        self.emit_volatile_reads(&ex, line, out);
                        out.push(Stmt::at(StmtKind::Return(Some(ex)), line));
                        Ok(())
                    }
                    (None, Some(_)) => Err(self.err(line, "missing return value")),
                    (Some(_), None) => Err(self.err(line, "return value in void function")),
                }
            }
            StmtKindAst::Block(body) => self.lower_block(body, fname, locals, out),
        }
    }

    /// Lowers an expression used as a statement: assignment, compound
    /// assignment, or call (including the analyzer intrinsics).
    fn lower_expr_stmt(
        &mut self,
        e: &AstExpr,
        line: u32,
        out: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        match &e.kind {
            ExprKind::Assign(l, r) => {
                let (lv, lty) = self.lower_lvalue(l)?;
                let (rex, rty) = self.lower_expr(r, out)?;
                let rex = convert(rex, rty, lty);
                self.emit_volatile_reads_lv(&lv, line, out);
                self.emit_volatile_reads(&rex, line, out);
                out.push(Stmt::at(StmtKind::Assign(lv, rex), line));
                Ok(())
            }
            ExprKind::CompoundAssign(op, l, r) => {
                // l op= r  ≡  l = l op r (l-value is side-effect free).
                let lop =
                    AstExpr { kind: ExprKind::Binop(*op, l.clone(), r.clone()), line: e.line };
                let assign =
                    AstExpr { kind: ExprKind::Assign(l.clone(), Box::new(lop)), line: e.line };
                self.lower_expr_stmt(&assign, line, out)
            }
            ExprKind::Call(name, args) => match name.as_str() {
                "__astree_wait" => {
                    out.push(Stmt::at(StmtKind::Wait, line));
                    Ok(())
                }
                "__astree_assume" => {
                    if args.len() != 1 {
                        return Err(self.err(line, "__astree_assume takes one argument"));
                    }
                    let (c, _) = self.lower_expr(&args[0], out)?;
                    out.push(Stmt::at(StmtKind::Assume(c), line));
                    Ok(())
                }
                "__astree_input_int" | "__astree_input_float" => {
                    self.lower_input_decl(name, args, line)
                }
                _ => {
                    let (stmt, _) = self.lower_call(name, args, line, out)?;
                    out.push(stmt);
                    Ok(())
                }
            },
            _ => Err(self.err(line, "expression statement must be an assignment or a call")),
        }
    }

    fn lower_input_decl(
        &mut self,
        name: &str,
        args: &[AstExpr],
        line: u32,
    ) -> Result<(), LowerError> {
        if args.len() != 3 {
            return Err(self.err(line, format!("{name} takes (var, lo, hi)")));
        }
        let var = match &args[0].kind {
            ExprKind::Ident(n) => {
                self.lookup(n).ok_or_else(|| self.err(line, format!("unknown variable {n}")))?
            }
            _ => return Err(self.err(line, "first argument must be a variable")),
        };
        let lo = const_num(&args[1]).ok_or_else(|| self.err(line, "lo must be constant"))?;
        let hi = const_num(&args[2]).ok_or_else(|| self.err(line, "hi must be constant"))?;
        if lo > hi {
            return Err(self.err(line, "empty input range"));
        }
        let range = if name.ends_with("_int") {
            InputRange::Int(lo as i64, hi as i64)
        } else {
            InputRange::Float(lo, hi)
        };
        self.program.vars[var.0 as usize].volatile_input = Some(range);
        Ok(())
    }

    /// Lowers a call appearing as a statement (possibly with a result
    /// destination handled by the caller for `x = f(...)` forms).
    fn lower_call(
        &mut self,
        name: &str,
        args: &[AstExpr],
        line: u32,
        out: &mut Vec<Stmt>,
    ) -> Result<(Stmt, Option<ScalarType>), LowerError> {
        let fid = *self
            .func_ids
            .get(name)
            .ok_or_else(|| self.err(line, format!("call to undefined function {name}")))?;
        let sig = self.func_sigs[name].clone();
        if sig.params.len() != args.len() {
            return Err(self.err(
                line,
                format!("{name} expects {} arguments, got {}", sig.params.len(), args.len()),
            ));
        }
        let mut lowered = Vec::new();
        for ((pty, pkind), a) in sig.params.iter().zip(args) {
            match pkind {
                ParamKind::ByValue => {
                    let (ex, ty) = self.lower_expr(a, out)?;
                    let target = pty.as_scalar().expect("by-value params are scalar");
                    let ex = convert(ex, ty, target);
                    self.emit_volatile_reads(&ex, line, out);
                    lowered.push(CallArg::Value(ex));
                }
                ParamKind::ByRef => {
                    let inner = match &a.kind {
                        ExprKind::AddrOf(lv) => lv,
                        _ => {
                            return Err(
                                self.err(line, "by-reference arguments must have the form &lvalue")
                            )
                        }
                    };
                    let (lv, _) = self.lower_lvalue_any(inner)?;
                    lowered.push(CallArg::Ref(lv));
                }
            }
        }
        Ok((Stmt::at(StmtKind::Call(None, fid, lowered), line), sig.ret))
    }

    /// Lowers a condition; calls and ternaries inside are hoisted to temps.
    fn lower_condition(
        &mut self,
        c: &AstExpr,
        line: u32,
        out: &mut Vec<Stmt>,
    ) -> Result<ir::Expr, LowerError> {
        let (e, _) = self.lower_expr(c, out)?;
        self.emit_volatile_reads(&e, line, out);
        Ok(e)
    }

    /// Loop conditions may not contain calls (they would need re-evaluation
    /// machinery the family does not use).
    fn lower_loop_condition(&mut self, c: &AstExpr, line: u32) -> Result<ir::Expr, LowerError> {
        let mut tmp = Vec::new();
        let (e, _) = self.lower_expr(c, &mut tmp)?;
        if !tmp.is_empty() {
            return Err(self.err(
                line,
                "calls and ternaries in loop conditions are not in the analyzed subset",
            ));
        }
        Ok(e)
    }

    /// Lowers an l-value required to be scalar; returns it with its type.
    fn lower_lvalue(&mut self, e: &AstExpr) -> Result<(Lvalue, ScalarType), LowerError> {
        let (lv, ty) = self.lower_lvalue_any(e)?;
        let st =
            ty.as_scalar().ok_or_else(|| self.err(e.line, "assignment target must be scalar"))?;
        Ok((lv, st))
    }

    /// Lowers an l-value of any type (aggregates allowed for `&arg`).
    fn lower_lvalue_any(&mut self, e: &AstExpr) -> Result<(Lvalue, Type), LowerError> {
        match &e.kind {
            ExprKind::Ident(n) => {
                let var = self
                    .lookup(n)
                    .ok_or_else(|| self.err(e.line, format!("unknown variable {n}")))?;
                let ty = self.program.var(var).ty.clone();
                Ok((Lvalue::var(var), ty))
            }
            ExprKind::Deref(inner) => {
                // `*p` where p is a by-ref scalar parameter.
                let (lv, ty) = self.lower_lvalue_any(inner)?;
                if !self.ref_params.contains_key(&lv.base) {
                    return Err(self.err(e.line, "dereference of a non-parameter pointer"));
                }
                Ok((lv, ty))
            }
            ExprKind::Index(base, idx) => {
                let (mut lv, ty) = self.lower_lvalue_any(base)?;
                let (elem, _n) = match ty {
                    Type::Array(elem, n) => (*elem, n),
                    _ => return Err(self.err(e.line, "subscript of a non-array")),
                };
                let mut tmp = Vec::new();
                let (iex, ity) = self.lower_expr(idx, &mut tmp)?;
                if !tmp.is_empty() {
                    return Err(self.err(e.line, "calls in array subscripts are not supported"));
                }
                let iex = convert(iex, ity, ScalarType::Int(IntType::INT));
                lv.path.push(Access::Index(Box::new(iex)));
                Ok((lv, elem))
            }
            ExprKind::Field(base, fname) | ExprKind::Arrow(base, fname) => {
                if matches!(e.kind, ExprKind::Arrow(..)) {
                    // p->f requires p to be a by-ref struct parameter.
                    if let ExprKind::Ident(n) = &base.kind {
                        let var = self
                            .lookup(n)
                            .ok_or_else(|| self.err(e.line, format!("unknown variable {n}")))?;
                        if !self.ref_params.contains_key(&var) {
                            return Err(self.err(e.line, "-> on a non-parameter pointer"));
                        }
                    }
                }
                let (mut lv, ty) = self.lower_lvalue_any(base)?;
                let rid = match ty {
                    Type::Record(rid) => rid,
                    _ => return Err(self.err(e.line, "field access on a non-struct")),
                };
                let def = &self.program.records[rid.0 as usize];
                let (fi, fty) = def
                    .fields
                    .iter()
                    .enumerate()
                    .find(|(_, (n, _))| n == fname)
                    .map(|(i, (_, t))| (i as u32, t.clone()))
                    .ok_or_else(|| {
                        self.err(e.line, format!("no field {fname} in struct {}", def.name))
                    })?;
                lv.path.push(Access::Field(fi));
                Ok((lv, fty))
            }
            _ => Err(self.err(e.line, "expression is not an l-value")),
        }
    }

    /// Lowers an expression; calls and ternaries are hoisted into `out`.
    /// Returns the IR expression and its scalar type.
    fn lower_expr(
        &mut self,
        e: &AstExpr,
        out: &mut Vec<Stmt>,
    ) -> Result<(ir::Expr, ScalarType), LowerError> {
        let line = e.line;
        match &e.kind {
            ExprKind::Int(v, unsigned) => {
                let it =
                    if *unsigned || *v > i32::MAX as i64 { IntType::UINT } else { IntType::INT };
                Ok((ir::Expr::Int(*v, it), ScalarType::Int(it)))
            }
            ExprKind::Float(v, is_f32) => {
                let k = if *is_f32 { FloatKind::F32 } else { FloatKind::F64 };
                let v = k.round_nearest(*v);
                Ok((ir::Expr::Float(v.into(), k), ScalarType::Float(k)))
            }
            ExprKind::Ident(_)
            | ExprKind::Index(..)
            | ExprKind::Field(..)
            | ExprKind::Arrow(..)
            | ExprKind::Deref(_) => {
                let (lv, ty) = self.lower_lvalue_any(e)?;
                let st =
                    ty.as_scalar().ok_or_else(|| self.err(line, "aggregate used as a value"))?;
                Ok((ir::Expr::Load(lv, st), st))
            }
            ExprKind::AddrOf(_) => Err(self.err(line, "& outside a call argument")),
            ExprKind::Call(name, args) => {
                // Hoist into a temp: t = f(args).
                let (stmt, ret) = self.lower_call(name, args, line, out)?;
                let ret = ret.ok_or_else(|| {
                    self.err(line, format!("void function {name} used in an expression"))
                })?;
                let tmp = self.fresh_temp(ret);
                let stmt = match stmt.kind {
                    StmtKind::Call(None, fid, args) => {
                        Stmt::at(StmtKind::Call(Some(Lvalue::var(tmp)), fid, args), line)
                    }
                    _ => unreachable!("lower_call returns a call"),
                };
                out.push(stmt);
                Ok((ir::Expr::var_t(tmp, ret), ret))
            }
            ExprKind::Unop(op, a) => {
                let (ax, aty) = self.lower_expr(a, out)?;
                match op {
                    UnopKind::Neg => {
                        let rty = promote(aty);
                        let ax = convert(ax, aty, rty);
                        Ok((ir::Expr::Unop(ir::Unop::Neg, rty, Box::new(ax)), rty))
                    }
                    UnopKind::LNot => Ok((
                        ir::Expr::Unop(ir::Unop::LNot, ScalarType::Int(IntType::INT), Box::new(ax)),
                        ScalarType::Int(IntType::INT),
                    )),
                    UnopKind::BNot => {
                        let rty = promote(aty);
                        if !rty.is_int() {
                            return Err(self.err(line, "~ requires an integer operand"));
                        }
                        let ax = convert(ax, aty, rty);
                        Ok((ir::Expr::Unop(ir::Unop::BNot, rty, Box::new(ax)), rty))
                    }
                }
            }
            ExprKind::Binop(op, a, b) => {
                let (ax, aty) = self.lower_expr(a, out)?;
                let (bx, bty) = self.lower_expr(b, out)?;
                let irop = binop_to_ir(*op);
                if irop.is_logical() {
                    return Ok((
                        ir::Expr::Binop(
                            irop,
                            ScalarType::Int(IntType::INT),
                            Box::new(ax),
                            Box::new(bx),
                        ),
                        ScalarType::Int(IntType::INT),
                    ));
                }
                if matches!(irop, ir::Binop::Shl | ir::Binop::Shr) {
                    let rty = promote(aty);
                    if !rty.is_int() || !bty.is_int() {
                        return Err(self.err(line, "shift requires integer operands"));
                    }
                    let ax = convert(ax, aty, rty);
                    let bx = convert(bx, bty, ScalarType::Int(IntType::INT));
                    return Ok((ir::Expr::Binop(irop, rty, Box::new(ax), Box::new(bx)), rty));
                }
                let common = ScalarType::usual_conversion(aty, bty);
                if matches!(
                    irop,
                    ir::Binop::Rem | ir::Binop::BAnd | ir::Binop::BOr | ir::Binop::BXor
                ) && !common.is_int()
                {
                    return Err(self.err(line, "integer operator applied to floats"));
                }
                let ax = convert(ax, aty, common);
                let bx = convert(bx, bty, common);
                let node = ir::Expr::Binop(irop, common, Box::new(ax), Box::new(bx));
                if irop.is_comparison() {
                    Ok((node, ScalarType::Int(IntType::INT)))
                } else {
                    Ok((node, common))
                }
            }
            ExprKind::Ternary(c, a, b) => {
                // Hoist:  t; if (c) t = a; else t = b;
                let (cx, _) = self.lower_expr(c, out)?;
                let mut then_b = Vec::new();
                let (ax, aty) = self.lower_expr(a, &mut then_b)?;
                let mut else_b = Vec::new();
                let (bx, bty) = self.lower_expr(b, &mut else_b)?;
                let rty = ScalarType::usual_conversion(aty, bty);
                let tmp = self.fresh_temp(rty);
                then_b.push(Stmt::at(
                    StmtKind::Assign(Lvalue::var(tmp), convert(ax, aty, rty)),
                    line,
                ));
                else_b.push(Stmt::at(
                    StmtKind::Assign(Lvalue::var(tmp), convert(bx, bty, rty)),
                    line,
                ));
                self.emit_volatile_reads(&cx, line, out);
                out.push(Stmt::at(StmtKind::If(cx, then_b, else_b), line));
                Ok((ir::Expr::var_t(tmp, rty), rty))
            }
            ExprKind::Cast(ty, a) => {
                let (ax, aty) = self.lower_expr(a, out)?;
                let target = self
                    .lower_type(ty, line)?
                    .as_scalar()
                    .ok_or_else(|| self.err(line, "cast to non-scalar type"))?;
                Ok((convert_always(ax, aty, target), target))
            }
            ExprKind::Assign(..) | ExprKind::CompoundAssign(..) => {
                Err(self.err(line, "assignment used as a value is not in the analyzed subset"))
            }
        }
    }

    /// Emits `ReadVolatile` refreshes for every volatile variable read by `e`.
    fn emit_volatile_reads(&self, e: &ir::Expr, line: u32, out: &mut Vec<Stmt>) {
        let mut vars = Vec::new();
        e.for_each_lvalue(&mut |lv| {
            if self.program.var(lv.base).volatile_input.is_some() && !vars.contains(&lv.base) {
                vars.push(lv.base);
            }
        });
        for v in vars {
            out.push(Stmt::at(StmtKind::ReadVolatile(v), line));
        }
    }

    /// Same for index expressions inside an l-value.
    fn emit_volatile_reads_lv(&self, lv: &Lvalue, line: u32, out: &mut Vec<Stmt>) {
        for a in &lv.path {
            if let Access::Index(e) = a {
                self.emit_volatile_reads(e, line, out);
            }
        }
    }

    /// Lowers an initializer into assignments on `var` at path `path`.
    fn lower_init(
        &mut self,
        var: VarId,
        path: &mut Vec<Access>,
        ty: &Type,
        init: &Init,
        line: u32,
        out: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        match (ty, init) {
            (Type::Scalar(st), Init::Scalar(e)) => {
                let mut tmp = Vec::new();
                let (ex, ety) = self.lower_expr(e, &mut tmp)?;
                if !tmp.is_empty() {
                    return Err(self.err(line, "initializers must be call-free"));
                }
                let ex = convert(ex, ety, *st);
                let lv = Lvalue { base: var, path: path.clone() };
                out.push(Stmt::at(StmtKind::Assign(lv, ex), line));
                Ok(())
            }
            (Type::Array(elem, n), Init::List(items)) => {
                if items.len() > *n {
                    return Err(self.err(line, "too many initializers"));
                }
                for (i, item) in items.iter().enumerate() {
                    path.push(Access::Index(Box::new(ir::Expr::int(i as i64))));
                    self.lower_init(var, path, elem, item, line, out)?;
                    path.pop();
                }
                Ok(())
            }
            (Type::Record(rid), Init::List(items)) => {
                let fields = self.program.records[rid.0 as usize].fields.clone();
                if items.len() > fields.len() {
                    return Err(self.err(line, "too many initializers"));
                }
                for (i, item) in items.iter().enumerate() {
                    path.push(Access::Field(i as u32));
                    self.lower_init(var, path, &fields[i].1, item, line, out)?;
                    path.pop();
                }
                Ok(())
            }
            (Type::Array(..) | Type::Record(_), Init::Scalar(_)) => {
                Err(self.err(line, "aggregate initializer must be a brace list"))
            }
            (Type::Scalar(_), Init::List(_)) => {
                Err(self.err(line, "scalar initializer must not be a brace list"))
            }
        }
    }
}

/// Integer promotion for unary contexts.
fn promote(t: ScalarType) -> ScalarType {
    match t {
        ScalarType::Int(it) => ScalarType::Int(it.promoted()),
        f => f,
    }
}

/// Inserts a cast if the types differ.
fn convert(e: ir::Expr, from: ScalarType, to: ScalarType) -> ir::Expr {
    if from == to {
        e
    } else {
        ir::Expr::Cast(to, Box::new(e))
    }
}

/// Inserts a cast unconditionally unless trivially identical (used for
/// explicit source casts, which must round even when types match).
fn convert_always(e: ir::Expr, from: ScalarType, to: ScalarType) -> ir::Expr {
    convert(e, from, to)
}

fn binop_to_ir(op: BinopKind) -> ir::Binop {
    match op {
        BinopKind::Add => ir::Binop::Add,
        BinopKind::Sub => ir::Binop::Sub,
        BinopKind::Mul => ir::Binop::Mul,
        BinopKind::Div => ir::Binop::Div,
        BinopKind::Rem => ir::Binop::Rem,
        BinopKind::BAnd => ir::Binop::BAnd,
        BinopKind::BOr => ir::Binop::BOr,
        BinopKind::BXor => ir::Binop::BXor,
        BinopKind::Shl => ir::Binop::Shl,
        BinopKind::Shr => ir::Binop::Shr,
        BinopKind::Lt => ir::Binop::Lt,
        BinopKind::Le => ir::Binop::Le,
        BinopKind::Gt => ir::Binop::Gt,
        BinopKind::Ge => ir::Binop::Ge,
        BinopKind::Eq => ir::Binop::Eq,
        BinopKind::Ne => ir::Binop::Ne,
        BinopKind::LAnd => ir::Binop::LAnd,
        BinopKind::LOr => ir::Binop::LOr,
    }
}

/// Default full range for a volatile variable without an explicit
/// `__astree_input_*` declaration.
fn default_range(ty: &Type) -> Option<InputRange> {
    match ty.as_scalar()? {
        ScalarType::Int(it) => Some(InputRange::Int(it.min(), it.max())),
        ScalarType::Float(k) => Some(InputRange::Float(-k.max_finite(), k.max_finite())),
    }
}

/// Evaluates a numeric constant AST expression (for intrinsic arguments).
fn const_num(e: &AstExpr) -> Option<f64> {
    match &e.kind {
        ExprKind::Int(v, _) => Some(*v as f64),
        ExprKind::Float(v, _) => Some(*v),
        ExprKind::Unop(UnopKind::Neg, a) => Some(-const_num(a)?),
        _ => None,
    }
}
