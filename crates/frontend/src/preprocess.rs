//! A small C preprocessor.
//!
//! Supports what the analyzed program family uses (paper Sect. 4 notes the
//! code is "132,000 lines of C with macros"): object-like and function-like
//! `#define` (without `#`/`##` operators), `#undef`, `#include "file"` from a
//! caller-supplied file map, and the conditional family `#if`/`#ifdef`/
//! `#ifndef`/`#elif`/`#else`/`#endif` with full integer constant expressions
//! and `defined(X)`. Comments are stripped and line continuations spliced
//! before directive handling; macro expansion operates on token streams.

use crate::lex::{lex_line, LexError, Token, TokenKind};
use std::collections::{HashMap, HashSet};

/// A preprocessing error.
#[derive(Debug, Clone, PartialEq)]
pub struct PreprocessError {
    /// 1-based line of the offending directive or token.
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl std::fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for PreprocessError {}

impl From<LexError> for PreprocessError {
    fn from(e: LexError) -> Self {
        PreprocessError { line: e.line, msg: e.msg }
    }
}

#[derive(Debug, Clone)]
struct Macro {
    /// `None` for object-like macros; parameter names for function-like.
    params: Option<Vec<String>>,
    body: Vec<Token>,
}

/// Runs the preprocessor over `src`, resolving `#include "name"` against
/// `includes` and predefining `defines` as object-like macros.
///
/// Returns the fully expanded token stream of the translation unit.
///
/// # Errors
///
/// Returns a [`PreprocessError`] on malformed directives, unknown includes,
/// unbalanced conditionals, or lexical errors.
pub fn preprocess(
    src: &str,
    includes: &HashMap<String, String>,
    defines: &[(String, String)],
) -> Result<Vec<Token>, PreprocessError> {
    let mut macros = HashMap::new();
    for (name, value) in defines {
        let body = lex_line(value, 0)?;
        macros.insert(name.clone(), Macro { params: None, body });
    }
    let mut out = Vec::new();
    process_unit(src, includes, &mut macros, &mut out, 0)?;
    Ok(out)
}

fn process_unit(
    src: &str,
    includes: &HashMap<String, String>,
    macros: &mut HashMap<String, Macro>,
    out: &mut Vec<Token>,
    depth: u32,
) -> Result<(), PreprocessError> {
    if depth > 32 {
        return Err(PreprocessError { line: 0, msg: "#include nesting too deep".into() });
    }
    let clean = strip_comments(src);
    let lines = splice_lines(&clean);
    // Conditional-inclusion stack: (currently_active, some_branch_taken).
    let mut conds: Vec<(bool, bool)> = Vec::new();
    for (text, line) in lines {
        let active = conds.iter().all(|(a, _)| *a);
        let trimmed = text.trim_start();
        if trimmed.starts_with('#') {
            let toks = lex_line(trimmed, line)?;
            // toks[0] is Hash; toks[1] the directive name.
            let dname = toks.get(1).and_then(|t| t.ident()).unwrap_or("");
            let rest = &toks[2.min(toks.len())..];
            match dname {
                "include" if active => {
                    let name = match rest.first().map(|t| &t.kind) {
                        Some(TokenKind::StrLit(s)) => s.clone(),
                        Some(TokenKind::Punct("<")) => {
                            // <name.h> — accepted; joined from tokens.
                            let mut s = String::new();
                            for t in &rest[1..] {
                                match &t.kind {
                                    TokenKind::Punct(">") => break,
                                    TokenKind::Ident(i) => s.push_str(i),
                                    TokenKind::Punct(p) => s.push_str(p),
                                    _ => {}
                                }
                            }
                            s
                        }
                        _ => {
                            return Err(PreprocessError { line, msg: "malformed #include".into() })
                        }
                    };
                    let content = includes.get(&name).ok_or_else(|| PreprocessError {
                        line,
                        msg: format!("include file {name:?} not found"),
                    })?;
                    let content = content.clone();
                    process_unit(&content, includes, macros, out, depth + 1)?;
                }
                "define" if active => {
                    let name = rest
                        .first()
                        .and_then(|t| t.ident())
                        .ok_or_else(|| PreprocessError { line, msg: "malformed #define".into() })?
                        .to_string();
                    // Function-like only when '(' immediately follows with no
                    // space; the lexer drops spacing, so approximate: treat as
                    // function-like when the next token is '(' and a ')'
                    // exists. This matches the family's macros.
                    let mut params = None;
                    let mut body_start = 1;
                    if rest.len() > 1 && rest[1].is_punct("(") {
                        let mut ps = Vec::new();
                        let mut i = 2;
                        loop {
                            match rest.get(i).map(|t| &t.kind) {
                                Some(TokenKind::Punct(")")) => {
                                    i += 1;
                                    break;
                                }
                                Some(TokenKind::Ident(p)) => {
                                    ps.push(p.clone());
                                    i += 1;
                                    if rest.get(i).map(|t| t.is_punct(",")) == Some(true) {
                                        i += 1;
                                    }
                                }
                                _ => {
                                    return Err(PreprocessError {
                                        line,
                                        msg: "malformed #define parameter list".into(),
                                    })
                                }
                            }
                        }
                        params = Some(ps);
                        body_start = i;
                    }
                    let body = rest[body_start..].to_vec();
                    macros.insert(name, Macro { params, body });
                }
                "undef" if active => {
                    if let Some(name) = rest.first().and_then(|t| t.ident()) {
                        macros.remove(name);
                    }
                }
                "ifdef" | "ifndef" => {
                    let defined = rest
                        .first()
                        .and_then(|t| t.ident())
                        .map(|n| macros.contains_key(n))
                        .unwrap_or(false);
                    let taken = if dname == "ifdef" { defined } else { !defined };
                    conds.push((active && taken, taken));
                }
                "if" => {
                    let v = eval_condition(rest, macros, line)?;
                    conds.push((active && v, v));
                }
                "elif" => {
                    let (_, taken) = conds
                        .pop()
                        .ok_or_else(|| PreprocessError { line, msg: "#elif without #if".into() })?;
                    let parent_active = conds.iter().all(|(a, _)| *a);
                    if taken {
                        conds.push((false, true));
                    } else {
                        let v = eval_condition(rest, macros, line)?;
                        conds.push((parent_active && v, v));
                    }
                }
                "else" => {
                    let (_, taken) = conds
                        .pop()
                        .ok_or_else(|| PreprocessError { line, msg: "#else without #if".into() })?;
                    let parent_active = conds.iter().all(|(a, _)| *a);
                    conds.push((parent_active && !taken, true));
                }
                "endif" => {
                    conds.pop().ok_or_else(|| PreprocessError {
                        line,
                        msg: "#endif without #if".into(),
                    })?;
                }
                "pragma" | "error" | "warning" => {
                    if dname == "error" && active {
                        return Err(PreprocessError {
                            line,
                            msg: "#error directive reached".into(),
                        });
                    }
                    // #pragma ignored.
                }
                _ if !active => { /* skipped directive in inactive region */ }
                other => {
                    return Err(PreprocessError {
                        line,
                        msg: format!("unsupported directive #{other}"),
                    })
                }
            }
        } else if active {
            let toks = lex_line(&text, line)?;
            let expanded = expand(&toks, macros, &HashSet::new())?;
            out.extend(expanded);
        }
    }
    if !conds.is_empty() {
        return Err(PreprocessError { line: 0, msg: "unterminated #if".into() });
    }
    Ok(())
}

/// Replaces comments with spaces (preserving line structure).
fn strip_comments(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            i += 2;
            out.push(' ');
            while i < b.len() && !(b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/') {
                if b[i] == b'\n' {
                    out.push('\n');
                }
                i += 1;
            }
            i = (i + 2).min(b.len());
        } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
        } else {
            out.push(b[i] as char);
            i += 1;
        }
    }
    out
}

/// Splices backslash-newline continuations; returns (logical line, 1-based
/// line number of its first physical line).
fn splice_lines(src: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut start_line = 1u32;
    let mut fresh = true;
    for (idx, l) in src.split('\n').enumerate() {
        let line = idx as u32 + 1;
        if fresh {
            start_line = line;
        }
        if let Some(stripped) = l.strip_suffix('\\') {
            current.push_str(stripped);
            current.push(' ');
            fresh = false;
        } else {
            current.push_str(l);
            out.push((std::mem::take(&mut current), start_line));
            fresh = true;
        }
    }
    if !current.is_empty() {
        out.push((current, start_line));
    }
    out
}

/// Token-level macro expansion with a hide set for recursion safety.
fn expand(
    tokens: &[Token],
    macros: &HashMap<String, Macro>,
    hide: &HashSet<String>,
) -> Result<Vec<Token>, PreprocessError> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        let name = match t.ident() {
            Some(n) if !hide.contains(n) && macros.contains_key(n) => n.to_string(),
            _ => {
                out.push(t.clone());
                i += 1;
                continue;
            }
        };
        let mac = &macros[&name];
        match &mac.params {
            None => {
                let mut h = hide.clone();
                h.insert(name);
                out.extend(expand(&mac.body, macros, &h)?);
                i += 1;
            }
            Some(params) => {
                // Needs a call: `NAME ( args )`. Otherwise it's a plain ident.
                if tokens.get(i + 1).map(|t| t.is_punct("(")) != Some(true) {
                    out.push(t.clone());
                    i += 1;
                    continue;
                }
                let (args, consumed) = collect_args(&tokens[i + 2..], t.line)?;
                if args.len() != params.len()
                    && !(params.is_empty() && args.len() == 1 && args[0].is_empty())
                {
                    return Err(PreprocessError {
                        line: t.line,
                        msg: format!(
                            "macro {name} called with {} args, expects {}",
                            args.len(),
                            params.len()
                        ),
                    });
                }
                // Pre-expand arguments, then substitute.
                let mut expanded_args = Vec::new();
                for a in &args {
                    expanded_args.push(expand(a, macros, hide)?);
                }
                let mut subst = Vec::new();
                for bt in &mac.body {
                    match bt.ident().and_then(|n| params.iter().position(|p| p == n)) {
                        Some(pi) if pi < expanded_args.len() => {
                            subst.extend(expanded_args[pi].iter().cloned())
                        }
                        _ => subst.push(bt.clone()),
                    }
                }
                let mut h = hide.clone();
                h.insert(name);
                out.extend(expand(&subst, macros, &h)?);
                i += 2 + consumed + 1; // name, '(', args..., ')'
            }
        }
    }
    Ok(out)
}

/// Collects macro call arguments from the tokens after `(`. Returns the
/// argument token lists and the number of tokens consumed *before* the
/// closing `)`.
fn collect_args(tokens: &[Token], line: u32) -> Result<(Vec<Vec<Token>>, usize), PreprocessError> {
    let mut args = vec![Vec::new()];
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        match &t.kind {
            TokenKind::Punct("(") => {
                depth += 1;
                args.last_mut().expect("non-empty").push(t.clone());
            }
            TokenKind::Punct(")") => {
                if depth == 0 {
                    return Ok((args, i));
                }
                depth -= 1;
                args.last_mut().expect("non-empty").push(t.clone());
            }
            TokenKind::Punct(",") if depth == 0 => args.push(Vec::new()),
            _ => args.last_mut().expect("non-empty").push(t.clone()),
        }
    }
    Err(PreprocessError { line, msg: "unterminated macro call".into() })
}

/// Evaluates a `#if` condition: handle `defined`, expand macros, then parse
/// an integer constant expression.
fn eval_condition(
    tokens: &[Token],
    macros: &HashMap<String, Macro>,
    line: u32,
) -> Result<bool, PreprocessError> {
    // Resolve `defined X` / `defined(X)` before expansion.
    let mut resolved = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].ident() == Some("defined") {
            let (name, consumed) = if tokens.get(i + 1).map(|t| t.is_punct("(")) == Some(true) {
                let n = tokens
                    .get(i + 2)
                    .and_then(|t| t.ident())
                    .ok_or_else(|| PreprocessError { line, msg: "malformed defined()".into() })?;
                (n.to_string(), 4)
            } else {
                let n = tokens
                    .get(i + 1)
                    .and_then(|t| t.ident())
                    .ok_or_else(|| PreprocessError { line, msg: "malformed defined".into() })?;
                (n.to_string(), 2)
            };
            resolved.push(Token {
                kind: TokenKind::IntLit(macros.contains_key(&name) as i64, false),
                line,
            });
            i += consumed;
        } else {
            resolved.push(tokens[i].clone());
            i += 1;
        }
    }
    let expanded = expand(&resolved, macros, &HashSet::new())?;
    // Remaining identifiers evaluate to 0 (C preprocessor rule).
    let mut p = CondParser { toks: &expanded, pos: 0, line };
    let v = p.ternary()?;
    Ok(v != 0)
}

struct CondParser<'a> {
    toks: &'a [Token],
    pos: usize,
    line: u32,
}

impl CondParser<'_> {
    fn err(&self, msg: &str) -> PreprocessError {
        PreprocessError { line: self.line, msg: msg.into() }
    }

    fn peek_punct(&self) -> Option<&'static str> {
        match self.toks.get(self.pos).map(|t| &t.kind) {
            Some(TokenKind::Punct(p)) => Some(p),
            _ => None,
        }
    }

    fn eat(&mut self, p: &str) -> bool {
        if self.peek_punct() == Some(p)
            || (p == "("
                && matches!(self.toks.get(self.pos).map(|t| &t.kind), Some(TokenKind::Punct("("))))
        {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ternary(&mut self) -> Result<i64, PreprocessError> {
        let c = self.or()?;
        if self.eat("?") {
            let a = self.ternary()?;
            if !self.eat(":") {
                return Err(self.err("expected : in ?:"));
            }
            let b = self.ternary()?;
            Ok(if c != 0 { a } else { b })
        } else {
            Ok(c)
        }
    }

    fn or(&mut self) -> Result<i64, PreprocessError> {
        let mut v = self.and()?;
        while self.eat("||") {
            let r = self.and()?;
            v = ((v != 0) || (r != 0)) as i64;
        }
        Ok(v)
    }

    fn and(&mut self) -> Result<i64, PreprocessError> {
        let mut v = self.cmp()?;
        while self.eat("&&") {
            let r = self.cmp()?;
            v = ((v != 0) && (r != 0)) as i64;
        }
        Ok(v)
    }

    fn cmp(&mut self) -> Result<i64, PreprocessError> {
        let mut v = self.add()?;
        loop {
            let op = match self.peek_punct() {
                Some(p @ ("<" | "<=" | ">" | ">=" | "==" | "!=")) => p,
                _ => return Ok(v),
            };
            self.pos += 1;
            let r = self.add()?;
            v = match op {
                "<" => (v < r) as i64,
                "<=" => (v <= r) as i64,
                ">" => (v > r) as i64,
                ">=" => (v >= r) as i64,
                "==" => (v == r) as i64,
                "!=" => (v != r) as i64,
                _ => unreachable!(),
            };
        }
    }

    fn add(&mut self) -> Result<i64, PreprocessError> {
        let mut v = self.mul()?;
        loop {
            if self.eat("+") {
                v = v.wrapping_add(self.mul()?);
            } else if self.eat("-") {
                v = v.wrapping_sub(self.mul()?);
            } else {
                return Ok(v);
            }
        }
    }

    fn mul(&mut self) -> Result<i64, PreprocessError> {
        let mut v = self.unary()?;
        loop {
            if self.eat("*") {
                v = v.wrapping_mul(self.unary()?);
            } else if self.eat("/") {
                let r = self.unary()?;
                if r == 0 {
                    return Err(self.err("division by zero in #if"));
                }
                v /= r;
            } else if self.eat("%") {
                let r = self.unary()?;
                if r == 0 {
                    return Err(self.err("modulo by zero in #if"));
                }
                v %= r;
            } else {
                return Ok(v);
            }
        }
    }

    fn unary(&mut self) -> Result<i64, PreprocessError> {
        if self.eat("!") {
            return Ok((self.unary()? == 0) as i64);
        }
        if self.eat("-") {
            return Ok(-self.unary()?);
        }
        if self.eat("+") {
            return self.unary();
        }
        if self.eat("(") {
            let v = self.ternary()?;
            if !self.eat(")") {
                return Err(self.err("expected )"));
            }
            return Ok(v);
        }
        match self.toks.get(self.pos).map(|t| t.kind.clone()) {
            Some(TokenKind::IntLit(v, _)) => {
                self.pos += 1;
                Ok(v)
            }
            Some(TokenKind::CharLit(v)) => {
                self.pos += 1;
                Ok(v)
            }
            Some(TokenKind::Ident(_)) => {
                self.pos += 1;
                Ok(0) // undefined identifiers are 0 in #if
            }
            _ => Err(self.err("expected constant in #if expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(src: &str) -> Vec<Token> {
        preprocess(src, &HashMap::new(), &[]).unwrap()
    }

    fn texts(toks: &[Token]) -> Vec<String> {
        toks.iter()
            .map(|t| match &t.kind {
                TokenKind::Ident(s) => s.clone(),
                TokenKind::IntLit(v, _) => v.to_string(),
                TokenKind::FloatLit(v, _) => v.to_string(),
                TokenKind::Punct(p) => p.to_string(),
                other => format!("{other:?}"),
            })
            .collect()
    }

    #[test]
    fn object_macro_expands() {
        let t = pp("#define N 10\nint a[N];");
        assert_eq!(texts(&t), vec!["int", "a", "[", "10", "]", ";"]);
    }

    #[test]
    fn function_macro_expands() {
        let t = pp("#define MAX(a,b) ((a) > (b) ? (a) : (b))\nx = MAX(1, y);");
        let s = texts(&t).join(" ");
        assert!(s.contains("( 1 ) > ( y )"), "{s}");
    }

    #[test]
    fn nested_macro_calls() {
        let t = pp("#define SQ(x) ((x)*(x))\n#define QU(x) SQ(SQ(x))\ny = QU(2);");
        let s = texts(&t).join("");
        assert_eq!(s, "y=((((2)*(2)))*(((2)*(2))));");
    }

    #[test]
    fn recursion_is_hidden() {
        let t = pp("#define A A B\nA");
        assert_eq!(texts(&t), vec!["A", "B"]);
    }

    #[test]
    fn conditionals() {
        let t = pp("#define ON 1\n#if ON\nyes;\n#else\nno;\n#endif");
        assert_eq!(texts(&t), vec!["yes", ";"]);
        let t = pp("#ifdef MISSING\nyes;\n#else\nno;\n#endif");
        assert_eq!(texts(&t), vec!["no", ";"]);
        let t = pp("#if 0\na;\n#elif 2 > 1\nb;\n#else\nc;\n#endif");
        assert_eq!(texts(&t), vec!["b", ";"]);
    }

    #[test]
    fn nested_inactive_regions() {
        let t = pp("#if 0\n#if 1\na;\n#endif\nb;\n#endif\nc;");
        assert_eq!(texts(&t), vec!["c", ";"]);
    }

    #[test]
    fn defined_operator() {
        let t = pp("#define X 1\n#if defined(X) && !defined(Y)\nok;\n#endif");
        assert_eq!(texts(&t), vec!["ok", ";"]);
    }

    #[test]
    fn includes_resolve() {
        let mut inc = HashMap::new();
        inc.insert("h.h".to_string(), "#define K 3\n".to_string());
        let t = preprocess("#include \"h.h\"\nint a = K;", &inc, &[]).unwrap();
        assert_eq!(texts(&t), vec!["int", "a", "=", "3", ";"]);
    }

    #[test]
    fn missing_include_errors() {
        let e = preprocess("#include \"nope.h\"", &HashMap::new(), &[]).unwrap_err();
        assert!(e.msg.contains("not found"));
    }

    #[test]
    fn comments_stripped() {
        let t = pp("int /* comment */ x; // tail\nfloat y;");
        assert_eq!(texts(&t), vec!["int", "x", ";", "float", "y", ";"]);
    }

    #[test]
    fn multiline_comment_preserves_lines() {
        let t = pp("int x;\n/* a\nb\nc */\nint y;");
        assert_eq!(t.last().unwrap().line, 5);
    }

    #[test]
    fn line_continuation() {
        let t = pp("#define LONG 1 + \\\n 2\nx = LONG;");
        assert_eq!(texts(&t), vec!["x", "=", "1", "+", "2", ";"]);
    }

    #[test]
    fn undef_removes() {
        let t = pp("#define A 1\n#undef A\nA;");
        assert_eq!(texts(&t), vec!["A", ";"]);
    }

    #[test]
    fn error_directive_fires() {
        assert!(preprocess("#error boom", &HashMap::new(), &[]).is_err());
        assert!(preprocess("#if 0\n#error boom\n#endif", &HashMap::new(), &[]).is_ok());
    }

    #[test]
    fn predefines_apply() {
        let t = preprocess("int a = N;", &HashMap::new(), &[("N".into(), "5".into())]).unwrap();
        assert_eq!(texts(&t), vec!["int", "a", "=", "5", ";"]);
    }

    #[test]
    fn unbalanced_endif_errors() {
        assert!(preprocess("#endif", &HashMap::new(), &[]).is_err());
        assert!(preprocess("#if 1\nx;", &HashMap::new(), &[]).is_err());
    }
}
