//! Post-lowering simplifications (paper Sect. 5.1): constant folding and
//! unused-global deletion.
//!
//! "Syntactically constant expressions are evaluated and replaced by their
//! value. Unused global variables are then deleted. This phase is important
//! since the analyzed programs use large arrays representing hardware
//! features with constant subscripts; those arrays are thus optimized away."

use astree_ir::{
    Access, Block, ConstValue, Expr, Lvalue, Program, ScalarType, Stmt, StmtKind, VarId, VarKind,
};

/// Folds every syntactically constant sub-expression in the program.
pub fn fold_constants(program: &mut Program) {
    let mut funcs = std::mem::take(&mut program.funcs);
    for f in &mut funcs {
        fold_block(&mut f.body);
    }
    program.funcs = funcs;
}

fn fold_block(b: &mut Block) {
    for s in b {
        fold_stmt(s);
    }
}

fn fold_stmt(s: &mut Stmt) {
    match &mut s.kind {
        StmtKind::Assign(lv, e) => {
            fold_lvalue(lv);
            fold_expr(e);
        }
        StmtKind::If(c, a, b) => {
            fold_expr(c);
            fold_block(a);
            fold_block(b);
        }
        StmtKind::While(_, c, body) => {
            fold_expr(c);
            fold_block(body);
        }
        StmtKind::Call(ret, _, args) => {
            if let Some(lv) = ret {
                fold_lvalue(lv);
            }
            for a in args {
                match a {
                    astree_ir::CallArg::Value(e) => fold_expr(e),
                    astree_ir::CallArg::Ref(lv) => fold_lvalue(lv),
                }
            }
        }
        StmtKind::Return(Some(e)) | StmtKind::Assume(e) => fold_expr(e),
        StmtKind::Return(None) | StmtKind::Wait | StmtKind::ReadVolatile(_) => {}
    }
}

fn fold_lvalue(lv: &mut Lvalue) {
    for a in &mut lv.path {
        if let Access::Index(e) = a {
            fold_expr(e);
        }
    }
}

fn fold_expr(e: &mut Expr) {
    // Fold children first.
    match e {
        Expr::Unop(_, _, a) | Expr::Cast(_, a) => fold_expr(a),
        Expr::Binop(_, _, a, b) => {
            fold_expr(a);
            fold_expr(b);
        }
        Expr::Load(lv, _) => fold_lvalue(lv),
        Expr::Int(..) | Expr::Float(..) => return,
    }
    if matches!(e, Expr::Load(..)) {
        return;
    }
    if let Some(v) = Program::const_eval(e) {
        let ty = e.ty();
        *e = match (v, ty) {
            (ConstValue::Int(v), ScalarType::Int(it)) => Expr::Int(v, it),
            (ConstValue::Float(v), ScalarType::Float(k)) => Expr::Float(v.into(), k),
            // Type-kind mismatch (shouldn't happen for well-typed IR): leave.
            _ => return,
        };
    }
}

/// Deletes global/static variables never referenced by any statement and
/// renumbers all `VarId`s accordingly.
pub fn remove_unused_globals(program: &mut Program) {
    let n = program.vars.len();
    let mut used = vec![false; n];
    // Params, locals and temps are always kept (they belong to functions).
    for (i, v) in program.vars.iter().enumerate() {
        if !matches!(v.kind, VarKind::Global | VarKind::Static) {
            used[i] = true;
        }
    }
    for f in &program.funcs {
        astree_ir::stmt::for_each_stmt(&f.body, &mut |s| mark_stmt(s, &mut used));
    }
    if used.iter().all(|u| *u) {
        return;
    }
    // Build the renumbering.
    let mut remap = vec![VarId(u32::MAX); n];
    let mut new_vars = Vec::new();
    for (i, v) in program.vars.iter().enumerate() {
        if used[i] {
            remap[i] = VarId(new_vars.len() as u32);
            new_vars.push(v.clone());
        }
    }
    program.vars = new_vars;
    let remap_fn = |v: VarId| remap[v.0 as usize];
    let mut funcs = std::mem::take(&mut program.funcs);
    for f in &mut funcs {
        for p in &mut f.params {
            p.var = remap_fn(p.var);
        }
        for l in &mut f.locals {
            *l = remap_fn(*l);
        }
        remap_block(&mut f.body, &remap_fn);
    }
    program.funcs = funcs;
}

fn mark_stmt(s: &Stmt, used: &mut [bool]) {
    fn mark_expr(e: &Expr, used: &mut [bool]) {
        e.for_each_lvalue(&mut |lv| used[lv.base.0 as usize] = true);
    }
    match &s.kind {
        StmtKind::Assign(lv, e) => {
            used[lv.base.0 as usize] = true;
            for a in &lv.path {
                if let Access::Index(ie) = a {
                    mark_expr(ie, used);
                }
            }
            mark_expr(e, used);
        }
        StmtKind::If(c, _, _) | StmtKind::While(_, c, _) => mark_expr(c, used),
        StmtKind::Call(ret, _, args) => {
            if let Some(lv) = ret {
                used[lv.base.0 as usize] = true;
                for a in &lv.path {
                    if let Access::Index(ie) = a {
                        mark_expr(ie, used);
                    }
                }
            }
            for a in args {
                match a {
                    astree_ir::CallArg::Value(e) => mark_expr(e, used),
                    astree_ir::CallArg::Ref(lv) => {
                        used[lv.base.0 as usize] = true;
                        for acc in &lv.path {
                            if let Access::Index(ie) = acc {
                                mark_expr(ie, used);
                            }
                        }
                    }
                }
            }
        }
        StmtKind::Return(Some(e)) | StmtKind::Assume(e) => mark_expr(e, used),
        StmtKind::ReadVolatile(v) => used[v.0 as usize] = true,
        StmtKind::Return(None) | StmtKind::Wait => {}
    }
}

fn remap_block(b: &mut Block, remap: &impl Fn(VarId) -> VarId) {
    for s in b {
        match &mut s.kind {
            StmtKind::Assign(lv, e) => {
                remap_lvalue(lv, remap);
                remap_expr(e, remap);
            }
            StmtKind::If(c, a, bb) => {
                remap_expr(c, remap);
                remap_block(a, remap);
                remap_block(bb, remap);
            }
            StmtKind::While(_, c, body) => {
                remap_expr(c, remap);
                remap_block(body, remap);
            }
            StmtKind::Call(ret, _, args) => {
                if let Some(lv) = ret {
                    remap_lvalue(lv, remap);
                }
                for a in args {
                    match a {
                        astree_ir::CallArg::Value(e) => remap_expr(e, remap),
                        astree_ir::CallArg::Ref(lv) => remap_lvalue(lv, remap),
                    }
                }
            }
            StmtKind::Return(Some(e)) | StmtKind::Assume(e) => remap_expr(e, remap),
            StmtKind::ReadVolatile(v) => *v = remap(*v),
            StmtKind::Return(None) | StmtKind::Wait => {}
        }
    }
}

fn remap_lvalue(lv: &mut Lvalue, remap: &impl Fn(VarId) -> VarId) {
    lv.base = remap(lv.base);
    for a in &mut lv.path {
        if let Access::Index(e) = a {
            remap_expr(e, remap);
        }
    }
}

fn remap_expr(e: &mut Expr, remap: &impl Fn(VarId) -> VarId) {
    match e {
        Expr::Load(lv, _) => remap_lvalue(lv, remap),
        Expr::Unop(_, _, a) | Expr::Cast(_, a) => remap_expr(a, remap),
        Expr::Binop(_, _, a, b) => {
            remap_expr(a, remap);
            remap_expr(b, remap);
        }
        Expr::Int(..) | Expr::Float(..) => {}
    }
}
