//! Recursive-descent parser for the analyzed C subset, plus the simple
//! linker merging several translation units (paper Sect. 5.1).
//!
//! Typedefs, enum constants and struct tags are tracked during parsing;
//! array sizes are constant expressions evaluated immediately (the family's
//! hardware tables are declared with macro-computed sizes).

use crate::ast::*;
use crate::lex::{Token, TokenKind};
use astree_ir::{FloatKind, IntType, ScalarType};
use std::collections::HashMap;

/// A syntax error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one preprocessed translation unit.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse(tokens: &[Token]) -> Result<AstProgram, ParseError> {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        typedefs: HashMap::new(),
        enum_consts: HashMap::new(),
        out: AstProgram::default(),
    };
    p.unit()?;
    Ok(p.out)
}

/// Links several parsed units into one (the paper's "simple linker").
///
/// Struct definitions must agree; `extern` declarations merge with their
/// definitions; function prototypes merge with their bodies; duplicate
/// definitions are errors.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the conflict.
pub fn link(units: Vec<AstProgram>) -> Result<AstProgram, ParseError> {
    let mut out = AstProgram::default();
    for unit in units {
        for (tag, fields) in unit.structs {
            match out.structs.iter().find(|(t, _)| *t == tag) {
                None => out.structs.push((tag, fields)),
                Some((_, existing)) if *existing == fields => {}
                Some(_) => {
                    return Err(ParseError {
                        line: 0,
                        msg: format!("conflicting definitions of struct {tag}"),
                    })
                }
            }
        }
        for g in unit.globals {
            match out.globals.iter_mut().find(|o| o.name == g.name) {
                None => out.globals.push(g),
                Some(existing) => {
                    if existing.ty != g.ty {
                        return Err(ParseError {
                            line: g.line,
                            msg: format!("conflicting types for global {}", g.name),
                        });
                    }
                    match (&existing.init, &g.init) {
                        (Some(_), Some(_)) => {
                            return Err(ParseError {
                                line: g.line,
                                msg: format!("multiple initializations of {}", g.name),
                            })
                        }
                        (None, Some(_)) => {
                            existing.init = g.init;
                            existing.is_extern = existing.is_extern && g.is_extern;
                        }
                        _ => {}
                    }
                }
            }
        }
        for f in unit.funcs {
            match out.funcs.iter_mut().find(|o| o.name == f.name) {
                None => out.funcs.push(f),
                Some(existing) => {
                    if existing.params.len() != f.params.len() || existing.ret != f.ret {
                        return Err(ParseError {
                            line: f.line,
                            msg: format!("conflicting declarations of function {}", f.name),
                        });
                    }
                    match (&existing.body, f.body) {
                        (Some(_), Some(_)) => {
                            return Err(ParseError {
                                line: f.line,
                                msg: format!("multiple definitions of function {}", f.name),
                            })
                        }
                        (None, Some(b)) => {
                            existing.params = f.params;
                            existing.body = Some(b);
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    Ok(out)
}

const KEYWORDS: &[&str] = &[
    "void", "char", "short", "int", "long", "float", "double", "signed", "unsigned", "_Bool",
    "struct", "enum", "union", "typedef", "static", "extern", "const", "volatile", "register",
    "if", "else", "while", "do", "for", "return", "break", "continue", "switch", "case", "default",
    "goto", "sizeof", "inline",
];

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    typedefs: HashMap<String, AstType>,
    enum_consts: HashMap<String, i64>,
    out: AstProgram,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { line: self.line(), msg: msg.into() }
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))).map_or(0, |t| t.line)
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn peek_at(&self, off: usize) -> Option<&TokenKind> {
        self.toks.get(self.pos + off).map(|t| &t.kind)
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Punct(q)) if *q == p)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(s)) if s == name)
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.at_ident(name) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(s)) if !KEYWORDS.contains(&s.as_str()) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// `true` when the token at `pos + off` starts a type.
    fn is_type_start_at(&self, off: usize) -> bool {
        match self.peek_at(off) {
            Some(TokenKind::Ident(s)) => {
                matches!(
                    s.as_str(),
                    "void"
                        | "char"
                        | "short"
                        | "int"
                        | "long"
                        | "float"
                        | "double"
                        | "signed"
                        | "unsigned"
                        | "_Bool"
                        | "struct"
                        | "enum"
                        | "const"
                        | "volatile"
                ) || self.typedefs.contains_key(s)
            }
            _ => false,
        }
    }

    fn is_type_start(&self) -> bool {
        self.is_type_start_at(0)
    }

    // ----- top level ---------------------------------------------------

    fn unit(&mut self) -> Result<(), ParseError> {
        while self.peek().is_some() {
            self.top_decl()?;
        }
        Ok(())
    }

    fn top_decl(&mut self) -> Result<(), ParseError> {
        let line = self.line();
        if self.eat_ident("typedef") {
            let base = self.parse_type()?.0;
            let (name, ty) = self.declarator(base)?;
            self.expect_punct(";")?;
            self.typedefs.insert(name, ty);
            return Ok(());
        }
        // enum definition (possibly anonymous) used purely for constants.
        if self.at_ident("enum") && !self.is_enum_type_ref() {
            self.parse_enum_def()?;
            self.expect_punct(";")?;
            return Ok(());
        }
        // struct definition without declarator: struct S { ... };
        if self.at_ident("struct")
            && matches!(self.peek_at(1), Some(TokenKind::Ident(_)))
            && matches!(self.peek_at(2), Some(TokenKind::Punct("{")))
        {
            self.parse_struct_def()?;
            self.expect_punct(";")?;
            return Ok(());
        }
        // storage class and qualifiers
        let mut is_static = false;
        let mut is_extern = false;
        let mut is_volatile = false;
        loop {
            if self.eat_ident("static") {
                is_static = true;
            } else if self.eat_ident("extern") {
                is_extern = true;
            } else if self.eat_ident("inline") {
                // accepted, ignored
            } else {
                break;
            }
        }
        let (base, vol) = self.parse_type()?;
        is_volatile |= vol;
        let (name, ty) = self.declarator(base)?;
        if self.at_punct("(") {
            // function
            self.expect_punct("(")?;
            let mut params = Vec::new();
            if self.eat_ident("void") {
                // (void)
            } else if !self.at_punct(")") {
                loop {
                    let (pbase, _) = self.parse_type()?;
                    let (pname, pty) = self.declarator(pbase)?;
                    params.push((pname, pty));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
            }
            self.expect_punct(")")?;
            if self.eat_punct(";") {
                self.out.funcs.push(FuncDecl { name, ret: ty, params, body: None, line });
                return Ok(());
            }
            self.expect_punct("{")?;
            let body = self.block_items()?;
            self.expect_punct("}")?;
            self.out.funcs.push(FuncDecl { name, ret: ty, params, body: Some(body), line });
            return Ok(());
        }
        // global variable(s)
        let mut name = name;
        let mut ty = ty;
        loop {
            let init = if self.eat_punct("=") { Some(self.initializer()?) } else { None };
            self.out.globals.push(GlobalDecl {
                name,
                ty,
                is_static,
                is_volatile,
                is_extern,
                init,
                line,
            });
            if self.eat_punct(",") {
                let base = self.out.globals.last().expect("just pushed").ty.clone();
                // Re-derive the base type: strip array suffixes added by the
                // previous declarator (C allows `int a[2], b;`).
                let base = strip_declarator_suffixes(base);
                let (n2, t2) = self.declarator(base)?;
                name = n2;
                ty = t2;
                continue;
            }
            self.expect_punct(";")?;
            return Ok(());
        }
    }

    /// `true` if `enum` here is a type reference (enum X ident) rather than a
    /// definition (enum [tag] { ... }).
    fn is_enum_type_ref(&self) -> bool {
        matches!(self.peek_at(1), Some(TokenKind::Ident(_)))
            && !matches!(self.peek_at(2), Some(TokenKind::Punct("{")))
            && !matches!(self.peek_at(1), Some(TokenKind::Punct("{")))
    }

    fn parse_enum_def(&mut self) -> Result<(), ParseError> {
        assert!(self.eat_ident("enum"));
        // optional tag
        if matches!(self.peek(), Some(TokenKind::Ident(s)) if !KEYWORDS.contains(&s.as_str())) {
            self.pos += 1;
        }
        self.expect_punct("{")?;
        let mut next = 0i64;
        loop {
            if self.eat_punct("}") {
                break;
            }
            let name = self.expect_ident()?;
            if self.eat_punct("=") {
                let e = self.ternary_expr()?;
                next = self.eval_const(&e)?;
            }
            self.enum_consts.insert(name, next);
            next += 1;
            if !self.eat_punct(",") {
                self.expect_punct("}")?;
                break;
            }
        }
        Ok(())
    }

    fn parse_struct_def(&mut self) -> Result<String, ParseError> {
        assert!(self.eat_ident("struct"));
        let tag = self.expect_ident()?;
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        while !self.eat_punct("}") {
            let (base, _) = self.parse_type()?;
            loop {
                let (fname, fty) = self.declarator(base.clone())?;
                fields.push((fname, fty));
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(";")?;
        }
        if self.out.structs.iter().any(|(t, _)| *t == tag) {
            return Err(self.err(format!("duplicate struct {tag}")));
        }
        self.out.structs.push((tag.clone(), fields));
        Ok(tag)
    }

    /// Parses type specifiers and qualifiers; returns the type and whether
    /// `volatile` appeared.
    #[allow(clippy::while_let_loop)] // the specifier loop has several distinct exits
    fn parse_type(&mut self) -> Result<(AstType, bool), ParseError> {
        let mut volatile = false;
        let mut signedness: Option<bool> = None;
        let mut base: Option<AstType> = None;
        let mut long_count = 0u8;
        let mut int_seen = false;
        loop {
            match self.peek() {
                Some(TokenKind::Ident(s)) => match s.as_str() {
                    "const" | "register" => {
                        self.pos += 1;
                    }
                    "volatile" => {
                        volatile = true;
                        self.pos += 1;
                    }
                    "signed" => {
                        signedness = Some(true);
                        self.pos += 1;
                    }
                    "unsigned" => {
                        signedness = Some(false);
                        self.pos += 1;
                    }
                    "void" => {
                        base = Some(AstType::Void);
                        self.pos += 1;
                    }
                    "char" => {
                        base = Some(AstType::Scalar(ScalarType::Int(IntType::UCHAR)));
                        self.pos += 1;
                    }
                    "short" => {
                        base = Some(AstType::Scalar(ScalarType::Int(IntType::SHORT)));
                        self.pos += 1;
                    }
                    "int" => {
                        int_seen = true;
                        if base.is_none() {
                            base = Some(AstType::Scalar(ScalarType::Int(IntType::INT)));
                        }
                        self.pos += 1;
                    }
                    "long" => {
                        long_count += 1;
                        if base.is_none() {
                            base = Some(AstType::Scalar(ScalarType::Int(IntType::INT)));
                        }
                        self.pos += 1;
                    }
                    "float" => {
                        base = Some(AstType::Scalar(ScalarType::Float(FloatKind::F32)));
                        self.pos += 1;
                    }
                    "double" => {
                        base = Some(AstType::Scalar(ScalarType::Float(FloatKind::F64)));
                        self.pos += 1;
                    }
                    "_Bool" => {
                        base = Some(AstType::Scalar(ScalarType::Int(IntType::BOOL)));
                        self.pos += 1;
                    }
                    "struct" => {
                        if matches!(self.peek_at(2), Some(TokenKind::Punct("{"))) {
                            let tag = self.parse_struct_def()?;
                            base = Some(AstType::Struct(tag));
                        } else {
                            self.pos += 1;
                            let tag = self.expect_ident()?;
                            base = Some(AstType::Struct(tag));
                        }
                    }
                    "enum" => {
                        if self.is_enum_type_ref() {
                            self.pos += 2; // enum Tag
                        } else {
                            self.parse_enum_def()?;
                        }
                        base = Some(AstType::Scalar(ScalarType::Int(IntType::INT)));
                    }
                    "union" => return Err(self.err("unions are not in the analyzed subset")),
                    name if self.typedefs.contains_key(name)
                        && base.is_none()
                        && signedness.is_none() =>
                    {
                        base = Some(self.typedefs[name].clone());
                        self.pos += 1;
                        break; // a typedef name is a complete type
                    }
                    _ => break,
                },
                _ => break,
            }
            if long_count >= 2 {
                return Err(self.err("long long is not in the analyzed subset (32-bit target)"));
            }
        }
        let _ = int_seen;
        let mut ty = base.ok_or_else(|| {
            if signedness.is_some() {
                // bare `signed` / `unsigned` means int
                return ParseError { line: 0, msg: String::new() };
            }
            self.err("expected type")
        });
        if ty.is_err() && signedness.is_some() {
            ty = Ok(AstType::Scalar(ScalarType::Int(IntType::INT)));
        }
        let mut ty = ty?;
        // Apply signedness to integer bases.
        if let (Some(sig), AstType::Scalar(ScalarType::Int(it))) = (signedness, &ty) {
            let bits = if it.bits == 1 { 8 } else { it.bits };
            ty = AstType::Scalar(ScalarType::Int(IntType { bits, signed: sig }));
        } else if let AstType::Scalar(ScalarType::Int(it)) = &ty {
            // plain char is unsigned on the target; plain short/int/long signed
            if it.bits != 8 && it.bits != 1 {
                ty = AstType::Scalar(ScalarType::Int(IntType { bits: it.bits, signed: true }));
            }
        }
        // trailing qualifiers (e.g. `int volatile`)
        loop {
            if self.eat_ident("volatile") {
                volatile = true;
            } else if self.eat_ident("const") {
            } else {
                break;
            }
        }
        Ok((ty, volatile))
    }

    /// Parses `'*'* name ('[' const ']')*` and applies it to `base`.
    fn declarator(&mut self, base: AstType) -> Result<(String, AstType), ParseError> {
        let mut ptr_depth = 0;
        while self.eat_punct("*") {
            ptr_depth += 1;
        }
        if ptr_depth > 1 {
            return Err(self.err("multi-level pointers are not in the analyzed subset"));
        }
        let name = self.expect_ident()?;
        let mut ty = base;
        let mut sizes = Vec::new();
        while self.eat_punct("[") {
            let e = self.ternary_expr()?;
            let n = self.eval_const(&e)?;
            if n <= 0 {
                return Err(self.err("array size must be positive"));
            }
            sizes.push(n as usize);
            self.expect_punct("]")?;
        }
        for n in sizes.into_iter().rev() {
            ty = AstType::Array(Box::new(ty), n);
        }
        if ptr_depth == 1 {
            ty = AstType::Pointer(Box::new(ty));
        }
        Ok((name, ty))
    }

    fn initializer(&mut self) -> Result<Init, ParseError> {
        if self.eat_punct("{") {
            let mut items = Vec::new();
            loop {
                if self.eat_punct("}") {
                    break;
                }
                items.push(self.initializer()?);
                if !self.eat_punct(",") {
                    self.expect_punct("}")?;
                    break;
                }
            }
            Ok(Init::List(items))
        } else {
            Ok(Init::Scalar(self.ternary_expr()?))
        }
    }

    // ----- statements ---------------------------------------------------

    fn block_items(&mut self) -> Result<Vec<AstStmt>, ParseError> {
        let mut out = Vec::new();
        while !self.at_punct("}") {
            if self.peek().is_none() {
                return Err(self.err("unexpected end of input in block"));
            }
            out.push(self.statement()?);
        }
        Ok(out)
    }

    fn statement(&mut self) -> Result<AstStmt, ParseError> {
        let line = self.line();
        // local declaration
        if self.at_ident("static") || self.is_type_start() || self.at_ident("typedef") {
            if self.eat_ident("typedef") {
                let base = self.parse_type()?.0;
                let (name, ty) = self.declarator(base)?;
                self.expect_punct(";")?;
                self.typedefs.insert(name, ty);
                return Ok(AstStmt { kind: StmtKindAst::Empty, line });
            }
            let is_static = self.eat_ident("static");
            let (base, _) = self.parse_type()?;
            // Could still be a struct def used as a statement? Not supported.
            let mut decls = Vec::new();
            loop {
                let (name, ty) = self.declarator(base.clone())?;
                let init = if self.eat_punct("=") { Some(self.initializer()?) } else { None };
                decls.push(AstStmt { kind: StmtKindAst::Decl(name, ty, is_static, init), line });
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(";")?;
            return Ok(if decls.len() == 1 {
                decls.pop().expect("one")
            } else {
                AstStmt { kind: StmtKindAst::Block(decls), line }
            });
        }
        if self.eat_ident("if") {
            self.expect_punct("(")?;
            let c = self.ternary_expr()?;
            self.expect_punct(")")?;
            let then_b = self.stmt_as_block()?;
            let else_b = if self.eat_ident("else") { self.stmt_as_block()? } else { Vec::new() };
            return Ok(AstStmt { kind: StmtKindAst::If(c, then_b, else_b), line });
        }
        if self.eat_ident("while") {
            self.expect_punct("(")?;
            let c = self.ternary_expr()?;
            self.expect_punct(")")?;
            let body = self.stmt_as_block()?;
            return Ok(AstStmt { kind: StmtKindAst::While(c, body), line });
        }
        if self.eat_ident("do") {
            let body = self.stmt_as_block()?;
            if !self.eat_ident("while") {
                return Err(self.err("expected `while` after do-body"));
            }
            self.expect_punct("(")?;
            let c = self.ternary_expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(AstStmt { kind: StmtKindAst::DoWhile(body, c), line });
        }
        if self.eat_ident("for") {
            self.expect_punct("(")?;
            let init = if self.at_punct(";") { None } else { Some(self.assignment_expr()?) };
            self.expect_punct(";")?;
            let cond = if self.at_punct(";") { None } else { Some(self.ternary_expr()?) };
            self.expect_punct(";")?;
            let step = if self.at_punct(")") { None } else { Some(self.assignment_expr()?) };
            self.expect_punct(")")?;
            let body = self.stmt_as_block()?;
            return Ok(AstStmt { kind: StmtKindAst::For(init, cond, step, body), line });
        }
        if self.eat_ident("return") {
            let e = if self.at_punct(";") { None } else { Some(self.ternary_expr()?) };
            self.expect_punct(";")?;
            return Ok(AstStmt { kind: StmtKindAst::Return(e), line });
        }
        if self.at_ident("break")
            || self.at_ident("continue")
            || self.at_ident("goto")
            || self.at_ident("switch")
        {
            return Err(self.err("break/continue/goto/switch are not in the analyzed subset"));
        }
        if self.eat_punct("{") {
            let body = self.block_items()?;
            self.expect_punct("}")?;
            return Ok(AstStmt { kind: StmtKindAst::Block(body), line });
        }
        if self.eat_punct(";") {
            return Ok(AstStmt { kind: StmtKindAst::Empty, line });
        }
        let e = self.assignment_expr()?;
        self.expect_punct(";")?;
        Ok(AstStmt { kind: StmtKindAst::Expr(e), line })
    }

    fn stmt_as_block(&mut self) -> Result<Vec<AstStmt>, ParseError> {
        if self.eat_punct("{") {
            let b = self.block_items()?;
            self.expect_punct("}")?;
            Ok(b)
        } else {
            Ok(vec![self.statement()?])
        }
    }

    // ----- expressions ---------------------------------------------------

    fn assignment_expr(&mut self) -> Result<AstExpr, ParseError> {
        let line = self.line();
        let lhs = self.ternary_expr()?;
        let op = match self.peek() {
            Some(TokenKind::Punct("=")) => None,
            Some(TokenKind::Punct("+=")) => Some(BinopKind::Add),
            Some(TokenKind::Punct("-=")) => Some(BinopKind::Sub),
            Some(TokenKind::Punct("*=")) => Some(BinopKind::Mul),
            Some(TokenKind::Punct("/=")) => Some(BinopKind::Div),
            Some(TokenKind::Punct("%=")) => Some(BinopKind::Rem),
            Some(TokenKind::Punct("&=")) => Some(BinopKind::BAnd),
            Some(TokenKind::Punct("|=")) => Some(BinopKind::BOr),
            Some(TokenKind::Punct("^=")) => Some(BinopKind::BXor),
            Some(TokenKind::Punct("<<=")) => Some(BinopKind::Shl),
            Some(TokenKind::Punct(">>=")) => Some(BinopKind::Shr),
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.assignment_expr()?;
        let kind = match op {
            None => ExprKind::Assign(Box::new(lhs), Box::new(rhs)),
            Some(op) => ExprKind::CompoundAssign(op, Box::new(lhs), Box::new(rhs)),
        };
        Ok(AstExpr { kind, line })
    }

    fn ternary_expr(&mut self) -> Result<AstExpr, ParseError> {
        let line = self.line();
        let c = self.binary_expr(0)?;
        if self.eat_punct("?") {
            let a = self.ternary_expr()?;
            self.expect_punct(":")?;
            let b = self.ternary_expr()?;
            Ok(AstExpr { kind: ExprKind::Ternary(Box::new(c), Box::new(a), Box::new(b)), line })
        } else {
            Ok(c)
        }
    }

    /// Precedence-climbing binary expression parser.
    #[allow(clippy::while_let_loop)] // the operator match doubles as the exit test
    fn binary_expr(&mut self, min_prec: u8) -> Result<AstExpr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                Some(TokenKind::Punct(p)) => match *p {
                    "||" => (BinopKind::LOr, 1),
                    "&&" => (BinopKind::LAnd, 2),
                    "|" => (BinopKind::BOr, 3),
                    "^" => (BinopKind::BXor, 4),
                    "&" => (BinopKind::BAnd, 5),
                    "==" => (BinopKind::Eq, 6),
                    "!=" => (BinopKind::Ne, 6),
                    "<" => (BinopKind::Lt, 7),
                    "<=" => (BinopKind::Le, 7),
                    ">" => (BinopKind::Gt, 7),
                    ">=" => (BinopKind::Ge, 7),
                    "<<" => (BinopKind::Shl, 8),
                    ">>" => (BinopKind::Shr, 8),
                    "+" => (BinopKind::Add, 9),
                    "-" => (BinopKind::Sub, 9),
                    "*" => (BinopKind::Mul, 10),
                    "/" => (BinopKind::Div, 10),
                    "%" => (BinopKind::Rem, 10),
                    _ => break,
                },
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.pos += 1;
            let rhs = self.binary_expr(prec + 1)?;
            lhs = AstExpr { kind: ExprKind::Binop(op, Box::new(lhs), Box::new(rhs)), line };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<AstExpr, ParseError> {
        let line = self.line();
        if self.eat_punct("-") {
            let e = self.unary_expr()?;
            return Ok(AstExpr { kind: ExprKind::Unop(UnopKind::Neg, Box::new(e)), line });
        }
        if self.eat_punct("+") {
            return self.unary_expr();
        }
        if self.eat_punct("!") {
            let e = self.unary_expr()?;
            return Ok(AstExpr { kind: ExprKind::Unop(UnopKind::LNot, Box::new(e)), line });
        }
        if self.eat_punct("~") {
            let e = self.unary_expr()?;
            return Ok(AstExpr { kind: ExprKind::Unop(UnopKind::BNot, Box::new(e)), line });
        }
        if self.eat_punct("*") {
            let e = self.unary_expr()?;
            return Ok(AstExpr { kind: ExprKind::Deref(Box::new(e)), line });
        }
        if self.eat_punct("&") {
            let e = self.unary_expr()?;
            return Ok(AstExpr { kind: ExprKind::AddrOf(Box::new(e)), line });
        }
        if self.eat_punct("++") {
            let e = self.unary_expr()?;
            let one = AstExpr { kind: ExprKind::Int(1, false), line };
            return Ok(AstExpr {
                kind: ExprKind::CompoundAssign(BinopKind::Add, Box::new(e), Box::new(one)),
                line,
            });
        }
        if self.eat_punct("--") {
            let e = self.unary_expr()?;
            let one = AstExpr { kind: ExprKind::Int(1, false), line };
            return Ok(AstExpr {
                kind: ExprKind::CompoundAssign(BinopKind::Sub, Box::new(e), Box::new(one)),
                line,
            });
        }
        // cast: '(' type ')' unary
        if self.at_punct("(") && self.is_type_start_at(1) {
            self.expect_punct("(")?;
            let (ty, _) = self.parse_type()?;
            // abstract declarator: allow '*'? not supported beyond scalar casts
            self.expect_punct(")")?;
            let e = self.unary_expr()?;
            return Ok(AstExpr { kind: ExprKind::Cast(ty, Box::new(e)), line });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<AstExpr, ParseError> {
        let line = self.line();
        let mut e = self.primary_expr()?;
        loop {
            if self.eat_punct("[") {
                let idx = self.ternary_expr()?;
                self.expect_punct("]")?;
                e = AstExpr { kind: ExprKind::Index(Box::new(e), Box::new(idx)), line };
            } else if self.eat_punct(".") {
                let f = self.expect_ident()?;
                e = AstExpr { kind: ExprKind::Field(Box::new(e), f), line };
            } else if self.eat_punct("->") {
                let f = self.expect_ident()?;
                e = AstExpr { kind: ExprKind::Arrow(Box::new(e), f), line };
            } else if self.at_punct("++") || self.at_punct("--") {
                let op = if self.eat_punct("++") {
                    BinopKind::Add
                } else {
                    self.pos += 1;
                    BinopKind::Sub
                };
                let one = AstExpr { kind: ExprKind::Int(1, false), line };
                e = AstExpr {
                    kind: ExprKind::CompoundAssign(op, Box::new(e), Box::new(one)),
                    line,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<AstExpr, ParseError> {
        let line = self.line();
        match self.peek().cloned() {
            Some(TokenKind::IntLit(v, u)) => {
                self.pos += 1;
                Ok(AstExpr { kind: ExprKind::Int(v, u), line })
            }
            Some(TokenKind::FloatLit(v, f)) => {
                self.pos += 1;
                Ok(AstExpr { kind: ExprKind::Float(v, f), line })
            }
            Some(TokenKind::CharLit(v)) => {
                self.pos += 1;
                Ok(AstExpr { kind: ExprKind::Int(v, false), line })
            }
            Some(TokenKind::Ident(name)) => {
                if KEYWORDS.contains(&name.as_str()) {
                    if name == "sizeof" {
                        return Err(self.err("sizeof is not in the analyzed subset"));
                    }
                    return Err(self.err(format!("unexpected keyword `{name}`")));
                }
                self.pos += 1;
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.at_punct(")") {
                        loop {
                            args.push(self.ternary_expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")")?;
                    return Ok(AstExpr { kind: ExprKind::Call(name, args), line });
                }
                if let Some(v) = self.enum_consts.get(&name) {
                    return Ok(AstExpr { kind: ExprKind::Int(*v, false), line });
                }
                Ok(AstExpr { kind: ExprKind::Ident(name), line })
            }
            Some(TokenKind::Punct("(")) => {
                self.pos += 1;
                let e = self.ternary_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    /// Evaluates a constant integer expression (array sizes, enum values).
    fn eval_const(&self, e: &AstExpr) -> Result<i64, ParseError> {
        let err =
            || ParseError { line: e.line, msg: "expected integer constant expression".into() };
        match &e.kind {
            ExprKind::Int(v, _) => Ok(*v),
            ExprKind::Ident(n) => self.enum_consts.get(n).copied().ok_or_else(err),
            ExprKind::Unop(UnopKind::Neg, a) => Ok(-self.eval_const(a)?),
            ExprKind::Unop(UnopKind::BNot, a) => Ok(!self.eval_const(a)?),
            ExprKind::Unop(UnopKind::LNot, a) => Ok((self.eval_const(a)? == 0) as i64),
            ExprKind::Binop(op, a, b) => {
                let x = self.eval_const(a)?;
                let y = self.eval_const(b)?;
                Ok(match op {
                    BinopKind::Add => x.wrapping_add(y),
                    BinopKind::Sub => x.wrapping_sub(y),
                    BinopKind::Mul => x.wrapping_mul(y),
                    BinopKind::Div => {
                        if y == 0 {
                            return Err(err());
                        }
                        x / y
                    }
                    BinopKind::Rem => {
                        if y == 0 {
                            return Err(err());
                        }
                        x % y
                    }
                    BinopKind::Shl => x.wrapping_shl(y as u32),
                    BinopKind::Shr => x.wrapping_shr(y as u32),
                    BinopKind::BAnd => x & y,
                    BinopKind::BOr => x | y,
                    BinopKind::BXor => x ^ y,
                    BinopKind::Lt => (x < y) as i64,
                    BinopKind::Le => (x <= y) as i64,
                    BinopKind::Gt => (x > y) as i64,
                    BinopKind::Ge => (x >= y) as i64,
                    BinopKind::Eq => (x == y) as i64,
                    BinopKind::Ne => (x != y) as i64,
                    BinopKind::LAnd => ((x != 0) && (y != 0)) as i64,
                    BinopKind::LOr => ((x != 0) || (y != 0)) as i64,
                })
            }
            ExprKind::Ternary(c, a, b) => {
                if self.eval_const(c)? != 0 {
                    self.eval_const(a)
                } else {
                    self.eval_const(b)
                }
            }
            ExprKind::Cast(_, a) => self.eval_const(a),
            _ => Err(err()),
        }
    }
}

/// Strips array suffixes from a declarator-applied type, recovering the base
/// for `int a[2], b;` style multi-declarators.
fn strip_declarator_suffixes(ty: AstType) -> AstType {
    match ty {
        AstType::Array(inner, _) => strip_declarator_suffixes(*inner),
        AstType::Pointer(inner) => strip_declarator_suffixes(*inner),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use std::collections::HashMap;

    fn parse_src(src: &str) -> AstProgram {
        let toks = preprocess(src, &HashMap::new(), &[]).unwrap();
        parse(&toks).unwrap()
    }

    fn parse_err(src: &str) -> ParseError {
        let toks = preprocess(src, &HashMap::new(), &[]).unwrap();
        parse(&toks).unwrap_err()
    }

    #[test]
    fn globals_and_arrays() {
        let p = parse_src("int x; static float table[4]; volatile int sensor;");
        assert_eq!(p.globals.len(), 3);
        assert!(p.globals[1].is_static);
        assert_eq!(
            p.globals[1].ty,
            AstType::Array(Box::new(AstType::Scalar(ScalarType::Float(FloatKind::F32))), 4)
        );
        assert!(p.globals[2].is_volatile);
    }

    #[test]
    fn multi_declarators_share_base() {
        let p = parse_src("int a[2], b;");
        assert_eq!(
            p.globals[0].ty,
            AstType::Array(Box::new(AstType::Scalar(ScalarType::Int(IntType::INT))), 2)
        );
        assert_eq!(p.globals[1].ty, AstType::Scalar(ScalarType::Int(IntType::INT)));
    }

    #[test]
    fn function_with_body() {
        let p = parse_src("int add(int a, int b) { return a + b; }");
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].params.len(), 2);
        assert!(p.funcs[0].body.is_some());
    }

    #[test]
    fn typedef_resolves() {
        let p = parse_src("typedef unsigned char BYTE; BYTE b;");
        assert_eq!(p.globals[0].ty, AstType::Scalar(ScalarType::Int(IntType::UCHAR)));
    }

    #[test]
    fn enum_constants_fold() {
        let p = parse_src("enum { A, B = 5, C }; int x[C];");
        assert_eq!(
            p.globals[0].ty,
            AstType::Array(Box::new(AstType::Scalar(ScalarType::Int(IntType::INT))), 6)
        );
    }

    #[test]
    fn struct_definition_and_use() {
        let p = parse_src("struct P { int x; float y; }; struct P point;");
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.globals[0].ty, AstType::Struct("P".into()));
    }

    #[test]
    fn statements_parse() {
        let p = parse_src(
            "void main(void) { int i; i = 0; while (i < 10) { i = i + 1; } if (i == 10) { i = 0; } else { i = 1; } }",
        );
        let body = p.funcs[0].body.as_ref().unwrap();
        assert_eq!(body.len(), 4);
        assert!(matches!(body[2].kind, StmtKindAst::While(_, _)));
    }

    #[test]
    fn for_and_do_while() {
        let p = parse_src(
            "void f(void) { int i; for (i = 0; i < 4; i = i + 1) { } do { i = 0; } while (i); }",
        );
        let body = p.funcs[0].body.as_ref().unwrap();
        assert!(matches!(body[1].kind, StmtKindAst::For(..)));
        assert!(matches!(body[2].kind, StmtKindAst::DoWhile(..)));
    }

    #[test]
    fn precedence_is_c() {
        let p = parse_src("int x; void f(void) { x = 1 + 2 * 3; }");
        let body = p.funcs[0].body.as_ref().unwrap();
        if let StmtKindAst::Expr(AstExpr { kind: ExprKind::Assign(_, rhs), .. }) = &body[0].kind {
            if let ExprKind::Binop(BinopKind::Add, _, r) = &rhs.kind {
                assert!(matches!(r.kind, ExprKind::Binop(BinopKind::Mul, _, _)));
                return;
            }
        }
        panic!("wrong tree: {body:?}");
    }

    #[test]
    fn casts_and_ternary() {
        let p = parse_src("double d; int i; void f(void) { d = (double)i; i = i > 0 ? 1 : 2; }");
        let body = p.funcs[0].body.as_ref().unwrap();
        if let StmtKindAst::Expr(AstExpr { kind: ExprKind::Assign(_, rhs), .. }) = &body[0].kind {
            assert!(matches!(rhs.kind, ExprKind::Cast(_, _)));
        } else {
            panic!();
        }
    }

    #[test]
    fn compound_assign_and_incr() {
        let p = parse_src("int x; void f(void) { x += 2; x++; --x; }");
        let body = p.funcs[0].body.as_ref().unwrap();
        assert!(matches!(
            body[0].kind,
            StmtKindAst::Expr(AstExpr { kind: ExprKind::CompoundAssign(BinopKind::Add, _, _), .. })
        ));
    }

    #[test]
    fn by_ref_params() {
        let p = parse_src("void out(int *r) { *r = 1; } void main(void) { int x; out(&x); }");
        assert_eq!(
            p.funcs[0].params[0].1,
            AstType::Pointer(Box::new(AstType::Scalar(ScalarType::Int(IntType::INT))))
        );
    }

    #[test]
    fn rejects_unions_and_switch() {
        assert!(parse_err("union U { int a; };").msg.contains("union"));
        assert!(parse_err("void f(void) { switch (1) {} }").msg.contains("switch"));
    }

    #[test]
    fn rejects_long_long() {
        assert!(parse_err("long long x;").msg.contains("long long"));
    }

    #[test]
    fn rejects_negative_array() {
        assert!(parse_err("int a[-1];").msg.contains("positive"));
    }

    #[test]
    fn initializer_lists() {
        let p =
            parse_src("int a[3] = {1, 2, 3}; struct S { int x; int y; }; struct S s = { 4, 5 };");
        assert!(matches!(p.globals[0].init, Some(Init::List(_))));
    }

    #[test]
    fn link_merges_extern() {
        let a = parse_src("extern int shared; void f(void) { shared = 1; }");
        let b = parse_src("int shared = 0;");
        let m = link(vec![a, b]).unwrap();
        assert_eq!(m.globals.len(), 1);
        assert!(m.globals[0].init.is_some());
    }

    #[test]
    fn link_merges_prototypes() {
        let a = parse_src("int get(void); void main(void) { int x; x = get(); }");
        let b = parse_src("int get(void) { return 3; }");
        let m = link(vec![a, b]).unwrap();
        assert_eq!(m.funcs.iter().filter(|f| f.name == "get").count(), 1);
        assert!(m.funcs.iter().find(|f| f.name == "get").unwrap().body.is_some());
    }

    #[test]
    fn link_rejects_double_definition() {
        let a = parse_src("int f(void) { return 1; }");
        let b = parse_src("int f(void) { return 2; }");
        assert!(link(vec![a, b]).is_err());
    }

    #[test]
    fn comma_in_global_scope_keeps_volatile() {
        let p = parse_src("volatile int a, b;");
        assert!(p.globals[0].is_volatile && p.globals[1].is_volatile);
    }
}
