//! Lexer for the C subset.
//!
//! Produces a token stream with line numbers. The preprocessor lexes each
//! physical line (after continuation splicing) so macro expansion operates on
//! tokens, not text.

use std::fmt;

/// A lexical error with its line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line number.
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// The kind of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Integer constant with suffix-derived unsignedness.
    IntLit(i64, bool),
    /// Floating constant; `true` if it carried an `f`/`F` suffix.
    FloatLit(f64, bool),
    /// Character constant (its integer value).
    CharLit(i64),
    /// String literal (only used by `#include` handling).
    StrLit(String),
    /// Punctuation, e.g. `"+"`, `"<<="`, `"("`.
    Punct(&'static str),
    /// `#` at the start of a preprocessor directive (only inside the
    /// preprocessor; never reaches the parser).
    Hash,
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What it is.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// Returns the identifier text if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.kind, TokenKind::Punct(q) if *q == p)
    }
}

/// Multi-character punctuators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "++", "--", "->", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
    "<", ">", "=", "(", ")", "[", "]", "{", "}", ";", ",", ".", "?", ":", "#",
];

/// Lexes one line of already-spliced source (no embedded newlines).
///
/// Comments must have been stripped by the preprocessor. `line` is the
/// 1-based line number attached to the produced tokens.
///
/// # Errors
///
/// Returns a [`LexError`] on malformed constants or stray characters.
pub fn lex_line(text: &str, line: u32) -> Result<Vec<Token>, LexError> {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    let err = |msg: String| LexError { line, msg };
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Token { kind: TokenKind::Ident(text[start..i].to_string()), line });
            continue;
        }
        // Number.
        if c.is_ascii_digit()
            || (c == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
        {
            let start = i;
            let mut is_float = false;
            if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X') {
                i += 2;
                while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                    i += 1;
                }
                let digits = &text[start + 2..i];
                let v = i64::from_str_radix(digits, 16)
                    .map_err(|e| err(format!("bad hex constant: {e}")))?;
                let unsigned = eat_int_suffix(bytes, &mut i);
                out.push(Token { kind: TokenKind::IntLit(v, unsigned), line });
                continue;
            }
            while i < bytes.len() {
                let d = bytes[i] as char;
                if d.is_ascii_digit() {
                    i += 1;
                } else if d == '.' && !is_float {
                    is_float = true;
                    i += 1;
                } else if (d == 'e' || d == 'E')
                    && i + 1 < bytes.len()
                    && ((bytes[i + 1] as char).is_ascii_digit()
                        || bytes[i + 1] == b'+'
                        || bytes[i + 1] == b'-')
                {
                    is_float = true;
                    i += 1;
                    if bytes[i] == b'+' || bytes[i] == b'-' {
                        i += 1;
                    }
                } else {
                    break;
                }
            }
            let digits = &text[start..i];
            if is_float {
                let v: f64 = digits.parse().map_err(|e| err(format!("bad float constant: {e}")))?;
                let f32_suffix = i < bytes.len() && (bytes[i] == b'f' || bytes[i] == b'F');
                if f32_suffix {
                    i += 1;
                }
                // An `l`/`L` suffix (long double) is accepted and ignored.
                if i < bytes.len() && (bytes[i] == b'l' || bytes[i] == b'L') {
                    i += 1;
                }
                out.push(Token { kind: TokenKind::FloatLit(v, f32_suffix), line });
            } else {
                // Octal constants (leading 0) are parsed base-8 as in C.
                let v = if digits.len() > 1 && digits.starts_with('0') {
                    i64::from_str_radix(&digits[1..], 8)
                        .map_err(|e| err(format!("bad octal constant: {e}")))?
                } else {
                    digits.parse().map_err(|e| err(format!("bad int constant: {e}")))?
                };
                let unsigned = eat_int_suffix(bytes, &mut i);
                out.push(Token { kind: TokenKind::IntLit(v, unsigned), line });
            }
            continue;
        }
        // Character constant.
        if c == '\'' {
            i += 1;
            let (v, used) =
                char_escape(&text[i..]).ok_or_else(|| err("bad char constant".into()))?;
            i += used;
            if i >= bytes.len() || bytes[i] != b'\'' {
                return Err(err("unterminated char constant".into()));
            }
            i += 1;
            out.push(Token { kind: TokenKind::CharLit(v), line });
            continue;
        }
        // String literal.
        if c == '"' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(err("unterminated string literal".into()));
                }
                if bytes[i] == b'"' {
                    i += 1;
                    break;
                }
                if bytes[i] == b'\\' {
                    let (v, used) =
                        char_escape(&text[i..]).ok_or_else(|| err("bad escape".into()))?;
                    s.push(v as u8 as char);
                    i += used;
                } else {
                    s.push(bytes[i] as char);
                    i += 1;
                }
            }
            out.push(Token { kind: TokenKind::StrLit(s), line });
            continue;
        }
        // Punctuation, maximal munch.
        let rest = &text[i..];
        let mut matched = false;
        for p in PUNCTS {
            if rest.starts_with(p) {
                let kind = if *p == "#" { TokenKind::Hash } else { TokenKind::Punct(p) };
                out.push(Token { kind, line });
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(err(format!("stray character {c:?}")));
        }
    }
    Ok(out)
}

/// Consumes `u`/`U`/`l`/`L` integer suffixes; returns `true` if unsigned.
fn eat_int_suffix(bytes: &[u8], i: &mut usize) -> bool {
    let mut unsigned = false;
    while *i < bytes.len() {
        match bytes[*i] {
            b'u' | b'U' => {
                unsigned = true;
                *i += 1;
            }
            b'l' | b'L' => {
                *i += 1;
            }
            _ => break,
        }
    }
    unsigned
}

/// Parses one (possibly escaped) character; returns its value and the number
/// of input bytes consumed.
fn char_escape(s: &str) -> Option<(i64, usize)> {
    let b = s.as_bytes();
    if b.is_empty() {
        return None;
    }
    if b[0] != b'\\' {
        return Some((b[0] as i64, 1));
    }
    if b.len() < 2 {
        return None;
    }
    let (v, n) = match b[1] {
        b'n' => (b'\n' as i64, 2),
        b't' => (b'\t' as i64, 2),
        b'r' => (b'\r' as i64, 2),
        b'0' => (0, 2),
        b'\\' => (b'\\' as i64, 2),
        b'\'' => (b'\'' as i64, 2),
        b'"' => (b'"' as i64, 2),
        _ => return None,
    };
    Some((v, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex_line(src, 1).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_keywords() {
        assert_eq!(
            kinds("int _x y2"),
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("_x".into()),
                TokenKind::Ident("y2".into())
            ]
        );
    }

    #[test]
    fn integer_forms() {
        assert_eq!(kinds("42"), vec![TokenKind::IntLit(42, false)]);
        assert_eq!(kinds("0x1F"), vec![TokenKind::IntLit(31, false)]);
        assert_eq!(kinds("010"), vec![TokenKind::IntLit(8, false)]);
        assert_eq!(kinds("42u"), vec![TokenKind::IntLit(42, true)]);
        assert_eq!(kinds("42UL"), vec![TokenKind::IntLit(42, true)]);
        assert_eq!(kinds("0"), vec![TokenKind::IntLit(0, false)]);
    }

    #[test]
    fn float_forms() {
        assert_eq!(kinds("1.5"), vec![TokenKind::FloatLit(1.5, false)]);
        assert_eq!(kinds("1.5f"), vec![TokenKind::FloatLit(1.5, true)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::FloatLit(1000.0, false)]);
        assert_eq!(kinds("2.5e-2"), vec![TokenKind::FloatLit(0.025, false)]);
        assert_eq!(kinds(".5"), vec![TokenKind::FloatLit(0.5, false)]);
    }

    #[test]
    fn punct_maximal_munch() {
        assert_eq!(
            kinds("a<<=b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("<<="),
                TokenKind::Ident("b".into())
            ]
        );
        assert_eq!(kinds(">>"), vec![TokenKind::Punct(">>")]);
        assert_eq!(kinds("> >"), vec![TokenKind::Punct(">"), TokenKind::Punct(">")]);
    }

    #[test]
    fn char_and_string() {
        assert_eq!(kinds("'a'"), vec![TokenKind::CharLit(97)]);
        assert_eq!(kinds("'\\n'"), vec![TokenKind::CharLit(10)]);
        assert_eq!(kinds("\"hi\""), vec![TokenKind::StrLit("hi".into())]);
    }

    #[test]
    fn hash_token() {
        assert_eq!(kinds("#define"), vec![TokenKind::Hash, TokenKind::Ident("define".into())]);
    }

    #[test]
    fn errors_carry_line() {
        let e = lex_line("@", 7).unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.msg.contains("stray"));
    }

    #[test]
    fn unterminated_literals_error() {
        assert!(lex_line("'a", 1).is_err());
        assert!(lex_line("\"abc", 1).is_err());
    }
}
