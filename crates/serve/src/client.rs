//! A thin blocking client for the `astree-serve/1` protocol.
//!
//! One [`Client`] owns one connection and issues requests sequentially
//! (the protocol allows pipelining, but every caller here wants the answer
//! before the next question). Event frames arriving before the final
//! `result` are handed to a callback as they come, so a CLI can print
//! telemetry live.

use crate::proto::{read_frame, write_frame, Conn, Endpoint, PROTO};
use astree_fleet::JobSpec;
use astree_obs::Json;
use std::io::{BufReader, Read, Write};

/// What went wrong with a request.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The daemon answered, but not with a frame this client understands.
    Protocol(String),
    /// The daemon answered with an `error` frame (`overloaded`,
    /// `bad_request`, `panicked`, `internal`).
    Server { code: String, message: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server { code, message } => write!(f, "{code}: {message}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// An analyze request; `Default` analyzes with the daemon's defaults and
/// coarse event streaming.
#[derive(Debug, Default, Clone)]
pub struct AnalyzeRequest {
    /// C source text of the program.
    pub source: String,
    /// Optional `config` object (see `DESIGN.md` for the keys).
    pub config: Option<Json>,
    /// Event mode: `"none"`, `"coarse"` (default) or `"all"`.
    pub events: Option<&'static str>,
    /// Debug: hold the admission slot for this long before analyzing.
    pub hold_ms: Option<u64>,
}

/// The parsed `result` frame of an analyze request.
#[derive(Debug)]
pub struct RequestOutcome {
    /// Alarms, rendered exactly as the one-shot CLI renders them.
    pub alarms: Vec<String>,
    /// The main loop invariant, rendered exactly as `--dump-invariant`.
    pub main_invariant: Option<String>,
    /// The main loop invariant census, rendered exactly as `--census`.
    pub main_census: Option<String>,
    /// Whether the daemon's shared store replayed the whole result.
    pub cache_full_hit: bool,
    /// Event frames received before the result.
    pub events: Vec<Json>,
    /// The whole `result` frame, for fields not parsed above.
    pub raw: Json,
}

/// A blocking protocol client over one connection.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    next_id: u64,
}

impl Client {
    /// Connects to a serving daemon.
    pub fn connect(endpoint: &Endpoint) -> std::io::Result<Client> {
        let conn = Conn::connect(endpoint)?;
        Ok(Client { reader: BufReader::new(conn.reader), writer: conn.writer, next_id: 1 })
    }

    fn request(&mut self, mut fields: Vec<(&'static str, Json)>) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut all = vec![("proto", Json::str(PROTO)), ("id", Json::UInt(id))];
        all.append(&mut fields);
        write_frame(&mut self.writer, &Json::obj(all))?;
        Ok(id)
    }

    /// Reads frames for `id` until a final (non-event) frame arrives.
    /// Event frames are appended to `events`.
    fn final_frame(&mut self, id: u64, events: &mut Vec<Json>) -> Result<Json, ClientError> {
        loop {
            let frame = read_frame(&mut self.reader)?
                .ok_or_else(|| ClientError::Protocol("daemon closed the connection".into()))?;
            if frame.get("id").and_then(Json::as_u64) != Some(id) {
                continue; // stale frame from an abandoned request
            }
            match frame.get("frame").and_then(Json::as_str) {
                Some("event") => {
                    if let Some(ev) = frame.get("event") {
                        events.push(ev.clone());
                    }
                }
                Some("error") => {
                    let code =
                        frame.get("code").and_then(Json::as_str).unwrap_or("internal").to_string();
                    let message =
                        frame.get("message").and_then(Json::as_str).unwrap_or_default().to_string();
                    return Err(ClientError::Server { code, message });
                }
                Some(_) => return Ok(frame),
                None => return Err(ClientError::Protocol("frame without a `frame` tag".into())),
            }
        }
    }

    /// Analyzes one program on the daemon.
    pub fn analyze(&mut self, req: &AnalyzeRequest) -> Result<RequestOutcome, ClientError> {
        let mut fields =
            vec![("req", Json::str("analyze")), ("source", Json::str(req.source.clone()))];
        if let Some(config) = &req.config {
            fields.push(("config", config.clone()));
        }
        if let Some(mode) = req.events {
            fields.push(("events", Json::str(mode)));
        }
        if let Some(ms) = req.hold_ms {
            fields.push(("hold_ms", Json::UInt(ms)));
        }
        let id = self.request(fields)?;
        let mut events = Vec::new();
        let frame = self.final_frame(id, &mut events)?;
        if frame.get("frame").and_then(Json::as_str) != Some("result") {
            return Err(ClientError::Protocol(format!("unexpected frame {}", frame.to_compact())));
        }
        let strings = |key: &str| -> Vec<String> {
            match frame.get(key) {
                Some(Json::Arr(items)) => {
                    items.iter().filter_map(|v| v.as_str().map(str::to_string)).collect()
                }
                _ => Vec::new(),
            }
        };
        let opt_string = |key: &str| frame.get(key).and_then(Json::as_str).map(str::to_string);
        Ok(RequestOutcome {
            alarms: strings("alarms"),
            main_invariant: opt_string("main_invariant"),
            main_census: opt_string("main_census"),
            cache_full_hit: frame
                .get("cache")
                .and_then(|c| c.get("full_hit"))
                .and_then(Json::as_bool)
                .unwrap_or(false),
            events,
            raw: frame,
        })
    }

    /// Analyzes a fleet of jobs in one request; returns the raw `result`
    /// frame (its `batch` array holds per-job outcomes keyed by the fleet
    /// status slugs). Only each job's name and source travel — overrides
    /// ride in the request-level `config`, oracle jobs are not served.
    pub fn batch(&mut self, jobs: &[JobSpec]) -> Result<Json, ClientError> {
        let items = jobs
            .iter()
            .map(|job| {
                Json::obj([
                    ("name", Json::str(job.name.clone())),
                    ("source", Json::str(job.source.clone())),
                ])
            })
            .collect();
        let id = self.request(vec![
            ("req", Json::str("batch")),
            ("jobs", Json::Arr(items)),
            ("events", Json::str("none")),
        ])?;
        self.final_frame(id, &mut Vec::new())
    }

    /// Fetches the daemon's `status` frame.
    pub fn status(&mut self) -> Result<Json, ClientError> {
        let id = self.request(vec![("req", Json::str("status"))])?;
        self.final_frame(id, &mut Vec::new())
    }

    /// Asks the daemon to shut down; returns once it acknowledges.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.request(vec![("req", Json::str("shutdown"))])?;
        let frame = self.final_frame(id, &mut Vec::new())?;
        match frame.get("frame").and_then(Json::as_str) {
            Some("bye") => Ok(()),
            _ => Err(ClientError::Protocol(format!("unexpected frame {}", frame.to_compact()))),
        }
    }
}
