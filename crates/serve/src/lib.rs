//! `astree-serve` — the resident analysis service.
//!
//! The one-shot CLI pays the whole start-up bill on every invocation: spawn
//! a process, build a worker pool, open the invariant store, analyze, tear
//! everything down. A control-room workflow — re-analyzing a family of
//! periodic synchronous programs after every small edit — wants those costs
//! paid *once*. This crate provides:
//!
//! * [`Server`]: a daemon that listens on a Unix domain socket (default) or
//!   a TCP address, owns one warm [`WorkerPool`](astree_sched::WorkerPool)
//!   and one shared [`InvariantStore`](astree_core::InvariantStore), and
//!   multiplexes concurrent analysis requests over them. Admission control
//!   bounds concurrent work (`max_inflight`) with an explicit `overloaded`
//!   rejection, and a panicking analysis fails alone — the daemon keeps
//!   serving.
//! * [`Client`]: a thin blocking client for the wire protocol, used by the
//!   `astree client` subcommand and the integration tests/benches.
//! * [`proto`]: the `astree-serve/1` protocol itself — length-delimited
//!   compact-JSON frames, reusing the zero-dependency JSON tree from
//!   `astree-obs`. Per-request telemetry streams back to the client as
//!   `astree-events/1` records wrapped in `event` frames, built by the same
//!   `astree_obs::events` builders the on-disk JSONL sink uses.
//!
//! The protocol is specified in `DESIGN.md` ("The astree-serve/1 wire
//! protocol").

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError, RequestOutcome};
pub use proto::{read_frame, write_frame, Endpoint, PROTO};
pub use server::{ServeOptions, Server, ServerHandle};
