//! The `astree-serve/1` wire protocol: framing and endpoints.
//!
//! The framing itself (length-delimited JSON frames, [`Endpoint`],
//! [`Conn`]) lives in [`astree_fleet::proto`] — it is shared with the
//! coordinator↔worker `astree-fleet/1` protocol — and is re-exported here
//! so serve's callers keep one import path. This module only adds the
//! serve protocol identifier.

pub use astree_fleet::proto::{read_frame, write_frame, Conn, Endpoint, MAX_FRAME};

/// The protocol identifier carried by every request.
pub const PROTO: &str = "astree-serve/1";
