//! The resident analysis daemon.
//!
//! One process owns the expensive long-lived machinery — a warm
//! [`WorkerPool`] and a shared [`InvariantStore`] — and serves analysis
//! requests over the `astree-serve/1` protocol. Each connection gets a
//! handler thread; concurrency comes from concurrent connections, all
//! multiplexed onto the same pool (its scatter entry point is designed for
//! exactly this). An admission gate bounds the number of simultaneously
//! running requests: past `max_inflight` the daemon answers `overloaded`
//! immediately instead of queueing unboundedly, so a control script can
//! apply back-pressure. A request that panics is isolated by
//! `catch_unwind` — it answers `panicked` and the daemon keeps serving.

use crate::proto::{read_frame, write_frame, Conn, Endpoint, PROTO};
use astree_core::{AnalysisConfig, AnalysisResult, AnalysisSession, InvariantStore};
use astree_fleet::{FleetSession, JobOutcome, JobSpec, JobStatus};
use astree_frontend::Frontend;
use astree_obs::{
    events, AlarmEvent, BatchJobEvent, CacheCounters, FleetCounters, Json, LoopDoneEvent,
    LoopIterEvent, PoolCounters, Recorder, ServeCounters, SliceEvent,
};
use astree_sched::WorkerPool;
use std::io::{BufReader, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration, filled in by the `astree serve` CLI.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Workers in the shared analysis pool (1 = sequential, no threads).
    pub jobs: usize,
    /// Concurrent requests admitted before `overloaded` rejections.
    pub max_inflight: usize,
    /// Directory of the shared invariant store (None = no cache).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions { jobs: 1, max_inflight: 8, cache_dir: None }
    }
}

/// Everything the connection handlers share.
struct Daemon {
    pool: Option<WorkerPool>,
    jobs: usize,
    store: Option<Arc<InvariantStore>>,
    max_inflight: usize,
    inflight: AtomicUsize,
    stop: AtomicBool,
    counters: Mutex<ServeCounters>,
    started: Instant,
}

impl Daemon {
    /// Tries to take an admission slot; `None` means overloaded.
    fn admit(self: &Arc<Daemon>) -> Option<AdmitGuard> {
        let mut cur = self.inflight.load(Ordering::SeqCst);
        loop {
            if cur >= self.max_inflight {
                return None;
            }
            match self.inflight.compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        let mut c = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        c.max_inflight_seen = c.max_inflight_seen.max(cur as u64 + 1);
        drop(c);
        Some(AdmitGuard { daemon: Arc::clone(self) })
    }

    fn count(&self, f: impl FnOnce(&mut ServeCounters)) {
        f(&mut self.counters.lock().unwrap_or_else(|e| e.into_inner()));
    }
}

/// Releases the admission slot on drop, whatever path the request took.
struct AdmitGuard {
    daemon: Arc<Daemon>,
}

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        self.daemon.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

/// A bound, not-yet-serving daemon.
pub struct Server {
    daemon: Arc<Daemon>,
    listener: Listener,
    endpoint: Endpoint,
}

impl Server {
    /// Binds the endpoint and builds the shared machinery (pool, store).
    /// For `Endpoint::Tcp` with port 0 the resolved address is available
    /// from [`Server::endpoint`]. A stale Unix socket file is replaced.
    pub fn bind(endpoint: Endpoint, opts: ServeOptions) -> std::io::Result<Server> {
        let jobs = opts.jobs.max(1);
        let store = match &opts.cache_dir {
            Some(dir) => Some(Arc::new(InvariantStore::open(dir.clone())?)),
            None => None,
        };
        let daemon = Arc::new(Daemon {
            pool: (jobs > 1).then(|| WorkerPool::new(jobs)),
            jobs,
            store,
            max_inflight: opts.max_inflight.max(1),
            inflight: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            counters: Mutex::new(ServeCounters::default()),
            started: Instant::now(),
        });
        let (listener, endpoint) = match endpoint {
            Endpoint::Unix(path) => {
                // A previous daemon that died without cleanup leaves the
                // socket file behind; connecting distinguishes live from
                // stale.
                if path.exists() {
                    if std::os::unix::net::UnixStream::connect(&path).is_ok() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::AddrInUse,
                            format!("a daemon is already serving on {}", path.display()),
                        ));
                    }
                    std::fs::remove_file(&path)?;
                }
                let l = UnixListener::bind(&path)?;
                l.set_nonblocking(true)?;
                (Listener::Unix(l, path.clone()), Endpoint::Unix(path))
            }
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                let actual = l.local_addr()?.to_string();
                (Listener::Tcp(l), Endpoint::Tcp(actual))
            }
        };
        Ok(Server { daemon, listener, endpoint })
    }

    /// The endpoint clients should connect to (TCP port resolved).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Serves until a `shutdown` request arrives, then joins every
    /// connection handler and removes the Unix socket file.
    pub fn serve(self) -> std::io::Result<()> {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.daemon.stop.load(Ordering::SeqCst) {
                break;
            }
            let conn = match &self.listener {
                Listener::Unix(l, _) => match l.accept() {
                    Ok((s, _)) => Some(Conn::from_unix(s)?),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
                Listener::Tcp(l) => match l.accept() {
                    Ok((s, _)) => Some(Conn::from_tcp(s)?),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
            };
            match conn {
                Some(conn) => {
                    let daemon = Arc::clone(&self.daemon);
                    handlers.push(std::thread::spawn(move || handle_connection(daemon, conn)));
                }
                None => std::thread::sleep(Duration::from_millis(2)),
            }
            // Reap finished handlers so a long-lived daemon does not
            // accumulate join handles.
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// Runs [`Server::serve`] on a background thread — the in-process form
    /// used by tests and benches.
    pub fn spawn(self) -> ServerHandle {
        let endpoint = self.endpoint.clone();
        let daemon = Arc::clone(&self.daemon);
        let thread = std::thread::spawn(move || self.serve());
        ServerHandle { endpoint, daemon, thread }
    }
}

/// Handle on a daemon spawned in-process.
pub struct ServerHandle {
    endpoint: Endpoint,
    daemon: Arc<Daemon>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Snapshot of the daemon-lifetime counters.
    pub fn counters(&self) -> ServeCounters {
        *self.daemon.counters.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Waits for the daemon to shut down (send it a `shutdown` request
    /// first, e.g. via [`crate::Client::shutdown`]).
    pub fn join(self) -> std::io::Result<()> {
        self.thread.join().map_err(|_| std::io::Error::other("serve thread panicked"))?
    }
}

type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn send(writer: &SharedWriter, frame: &Json) {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    // A client that hung up mid-request only loses its own frames.
    let _ = write_frame(&mut **w, frame);
}

fn error_frame(id: u64, code: &str, message: &str) -> Json {
    Json::obj([
        ("frame", Json::str("error")),
        ("id", Json::UInt(id)),
        ("code", Json::str(code)),
        ("message", Json::str(message)),
    ])
}

fn handle_connection(daemon: Arc<Daemon>, conn: Conn) {
    let mut reader = BufReader::new(conn.reader);
    let writer: SharedWriter = Arc::new(Mutex::new(conn.writer));
    loop {
        let req = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // client closed cleanly
            Err(_) => {
                daemon.count(|c| c.bad_requests += 1);
                send(&writer, &error_frame(0, "bad_request", "malformed frame"));
                return;
            }
        };
        daemon.count(|c| c.requests += 1);
        let id = req.get("id").and_then(Json::as_u64).unwrap_or(0);
        match req.get("req").and_then(Json::as_str) {
            Some("status") => send(&writer, &status_frame(&daemon, id)),
            Some("shutdown") => {
                daemon.count(|c| c.completed += 1);
                send(&writer, &Json::obj([("frame", Json::str("bye")), ("id", Json::UInt(id))]));
                daemon.stop.store(true, Ordering::SeqCst);
                return;
            }
            Some("analyze") => handle_analyze(&daemon, &writer, id, &req),
            Some("batch") => handle_batch(&daemon, &writer, id, &req),
            other => {
                daemon.count(|c| c.bad_requests += 1);
                let msg = match other {
                    Some(r) => format!("unknown request `{r}`"),
                    None => "missing `req` field".to_string(),
                };
                send(&writer, &error_frame(id, "bad_request", &msg));
            }
        }
    }
}

fn status_frame(daemon: &Arc<Daemon>, id: u64) -> Json {
    daemon.count(|c| c.completed += 1);
    let counters = *daemon.counters.lock().unwrap_or_else(|e| e.into_inner());
    let cache = match &daemon.store {
        Some(store) => cache_counters_json(&store.counters()),
        None => Json::Null,
    };
    Json::obj([
        ("frame", Json::str("status")),
        ("id", Json::UInt(id)),
        ("proto", Json::str(PROTO)),
        ("workers", Json::UInt(daemon.jobs as u64)),
        ("max_inflight", Json::UInt(daemon.max_inflight as u64)),
        ("inflight", Json::UInt(daemon.inflight.load(Ordering::SeqCst) as u64)),
        ("uptime_ms", Json::UInt(daemon.started.elapsed().as_millis() as u64)),
        ("serve", counters.to_json()),
        ("cache", cache),
    ])
}

fn cache_counters_json(c: &CacheCounters) -> Json {
    Json::obj([
        ("full_hits", Json::UInt(c.full_hits)),
        ("misses", Json::UInt(c.misses)),
        ("seeded_functions", Json::UInt(c.seeded_functions)),
        ("invalidated_functions", Json::UInt(c.invalidated_functions)),
        ("loops_replayed", Json::UInt(c.loops_replayed)),
        ("loops_solved", Json::UInt(c.loops_solved)),
        ("corrupt_files", Json::UInt(c.corrupt_files)),
    ])
}

/// Which telemetry events stream back to the client.
#[derive(Clone, Copy, PartialEq)]
enum EventMode {
    None,
    /// Per-loop and per-phase records, alarms, scheduler and cache reports
    /// — everything except the high-volume per-iteration stream.
    Coarse,
    /// Adds `loop_iter` and batched `domain_op` records.
    All,
}

/// Streams `astree-events/1` records back to the requesting client, each
/// wrapped in an `event` frame tagged with the request id. Reuses the same
/// record builders as the on-disk JSONL sink, so a captured stream is
/// schema-identical to `--metrics-stream` output.
struct FrameRecorder {
    writer: SharedWriter,
    id: u64,
    mode: EventMode,
    streamed: AtomicU64,
}

impl FrameRecorder {
    fn event(&self, record: Json) {
        let frame = Json::obj([
            ("frame", Json::str("event")),
            ("id", Json::UInt(self.id)),
            ("event", record),
        ]);
        self.streamed.fetch_add(1, Ordering::Relaxed);
        send(&self.writer, &frame);
    }
}

impl Recorder for FrameRecorder {
    fn enabled(&self) -> bool {
        self.mode != EventMode::None
    }

    fn loop_iter(&self, e: &LoopIterEvent) {
        if self.mode == EventMode::All {
            self.event(events::loop_iter(e));
        }
    }

    fn loop_done(&self, e: &LoopDoneEvent) {
        self.event(events::loop_done(e));
    }

    fn unroll(&self, func: &str, loop_id: u32, factor: u32) {
        self.event(events::unroll(func, loop_id, factor));
    }

    fn partitions(&self, func: &str, live: u64) {
        self.event(events::partitions(func, live));
    }

    fn domain_op_n(&self, domain: &'static str, op: &'static str, count: u64, nanos: u64) {
        if self.mode == EventMode::All && count > 0 {
            self.event(events::domain_op_n(domain, op, count, nanos));
        }
    }

    fn phase_time(&self, phase: &'static str, nanos: u64) {
        self.event(events::phase_time(phase, nanos));
    }

    fn alarm(&self, e: &AlarmEvent) {
        self.event(events::alarm(e));
    }

    fn slice(&self, e: &SliceEvent) {
        self.event(events::slice(e));
    }

    fn merge(&self, stage: u64, slices: usize, nanos: u64) {
        self.event(events::merge(stage, slices, nanos));
    }

    fn fallback(&self, reason: &'static str) {
        self.event(events::fallback(reason));
    }

    fn pool(&self, p: &PoolCounters) {
        self.event(events::pool(p));
    }

    fn batch_job(&self, e: &BatchJobEvent) {
        self.event(events::batch_job(e));
    }

    fn cache(&self, c: &CacheCounters) {
        self.event(events::cache(c));
    }

    fn fleet(&self, c: &FleetCounters) {
        self.event(events::fleet(c));
    }
}

/// Applies the request's optional `config` object on top of the defaults.
/// Unknown keys are rejected so a typo fails loudly instead of silently
/// analyzing with defaults.
fn parse_config(daemon: &Daemon, req: &Json) -> Result<AnalysisConfig, String> {
    let mut config = AnalysisConfig::default();
    config.jobs = daemon.jobs;
    let Some(obj) = req.get("config") else {
        return Ok(config);
    };
    let Json::Obj(pairs) = obj else {
        return Err("`config` must be an object".into());
    };
    for (key, value) in pairs {
        match key.as_str() {
            "max_clock" => match value {
                Json::UInt(v) => config.max_clock = *v as i64,
                Json::Int(v) => config.max_clock = *v,
                _ => return Err("config.max_clock must be an integer".into()),
            },
            "unroll" => {
                config.loop_unroll = value
                    .as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or("config.unroll must be a small integer")?;
            }
            "jobs" => {
                let j = value.as_u64().ok_or("config.jobs must be an integer")? as usize;
                config.jobs = j.clamp(1, daemon.jobs);
            }
            "octagons" => config.enable_octagons = value.as_bool().ok_or("octagons: bool")?,
            "dtrees" => config.enable_dtrees = value.as_bool().ok_or("dtrees: bool")?,
            "ellipsoids" => config.enable_ellipsoids = value.as_bool().ok_or("ellipsoids: bool")?,
            "clocked" => config.enable_clocked = value.as_bool().ok_or("clocked: bool")?,
            "linearize" => {
                config.enable_linearization = value.as_bool().ok_or("linearize: bool")?
            }
            "partition" => match value {
                Json::Arr(names) => {
                    for n in names {
                        let n = n.as_str().ok_or("config.partition entries must be strings")?;
                        config.partitioned_functions.insert(n.to_string());
                    }
                }
                _ => return Err("config.partition must be an array of function names".into()),
            },
            other => return Err(format!("unknown config key `{other}`")),
        }
    }
    Ok(config)
}

fn parse_event_mode(req: &Json) -> Result<EventMode, String> {
    match req.get("events").map(|v| v.as_str()) {
        None => Ok(EventMode::Coarse),
        Some(Some("none")) => Ok(EventMode::None),
        Some(Some("coarse")) => Ok(EventMode::Coarse),
        Some(Some("all")) => Ok(EventMode::All),
        _ => Err("`events` must be \"none\", \"coarse\" or \"all\"".into()),
    }
}

/// Compiles and analyzes one source on the daemon's shared machinery.
/// Returns the fields of the `result` frame (everything but `frame`/`id`).
fn run_analysis(
    daemon: &Daemon,
    source: &str,
    config: AnalysisConfig,
    recorder: &dyn Recorder,
) -> Result<AnalysisResult, String> {
    let program =
        Frontend::new().compile_units(&[source]).map_err(|e| format!("compile error: {e}"))?;
    let errs = program.validate();
    if !errs.is_empty() {
        return Err(format!("invalid program: {}", errs.join("; ")));
    }
    let mut builder = AnalysisSession::builder(&program).config(config).recorder(recorder);
    if let Some(pool) = &daemon.pool {
        builder = builder.pool(pool);
    }
    if let Some(store) = &daemon.store {
        builder = builder.cache(Arc::clone(store));
    }
    Ok(builder.build().run())
}

/// Renders an [`AnalysisResult`] into `result`-frame fields. The alarm and
/// invariant strings use the same `Display` impls as the one-shot CLI, so
/// a client can diff serve output against `astree analyze` byte-for-byte.
fn result_fields(result: &AnalysisResult) -> Vec<(&'static str, Json)> {
    let alarms = result.alarms.iter().map(|a| Json::str(a.to_string())).collect();
    let s = &result.stats;
    vec![
        ("alarms", Json::Arr(alarms)),
        (
            "main_invariant",
            match &result.main_invariant {
                Some(inv) => Json::str(inv.to_string()),
                None => Json::Null,
            },
        ),
        (
            "main_census",
            match &result.main_census {
                Some(c) => Json::str(c.to_string()),
                None => Json::Null,
            },
        ),
        (
            "stats",
            Json::obj([
                ("cells", Json::UInt(s.cells as u64)),
                ("octagon_packs", Json::UInt(s.octagon_packs as u64)),
                ("ellipse_packs", Json::UInt(s.ellipse_packs as u64)),
                ("dtree_packs", Json::UInt(s.dtree_packs as u64)),
                ("loop_iterations", Json::UInt(s.loop_iterations)),
                ("stmts_interpreted", Json::UInt(s.stmts_interpreted)),
                ("parallel_stages", Json::UInt(s.parallel_stages)),
                ("parallel_slices", Json::UInt(s.parallel_slices)),
                ("loops_solved", Json::UInt(s.loops_solved)),
                ("loops_replayed", Json::UInt(s.loops_replayed)),
                ("time_iterate_ns", Json::UInt(s.time_iterate.as_nanos() as u64)),
                ("time_check_ns", Json::UInt(s.time_check.as_nanos() as u64)),
                ("time_replay_ns", Json::UInt(s.time_replay.as_nanos() as u64)),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("enabled", Json::Bool(result.cache.enabled)),
                ("full_hit", Json::Bool(result.cache.full_hit)),
                ("seeded_functions", Json::UInt(result.cache.seeded_functions as u64)),
                ("invalidated_functions", Json::UInt(result.cache.invalidated_functions as u64)),
            ]),
        ),
    ]
}

fn handle_analyze(daemon: &Arc<Daemon>, writer: &SharedWriter, id: u64, req: &Json) {
    let Some(guard) = daemon.admit() else {
        daemon.count(|c| c.rejected_overloaded += 1);
        let msg = format!("{} requests already in flight", daemon.max_inflight);
        send(writer, &error_frame(id, "overloaded", &msg));
        return;
    };
    // Debug aid for deterministic overload tests: occupy the admission slot
    // for a bit before doing any work.
    if let Some(ms) = req.get("hold_ms").and_then(Json::as_u64) {
        std::thread::sleep(Duration::from_millis(ms.min(10_000)));
    }
    let setup = || -> Result<(String, AnalysisConfig, EventMode), String> {
        let source = req
            .get("source")
            .and_then(Json::as_str)
            .ok_or("analyze needs a `source` string")?
            .to_string();
        Ok((source, parse_config(daemon, req)?, parse_event_mode(req)?))
    };
    let (source, config, mode) = match setup() {
        Ok(parts) => parts,
        Err(msg) => {
            daemon.count(|c| c.bad_requests += 1);
            send(writer, &error_frame(id, "bad_request", &msg));
            return;
        }
    };
    let recorder =
        FrameRecorder { writer: Arc::clone(writer), id, mode, streamed: AtomicU64::new(0) };
    let outcome =
        catch_unwind(AssertUnwindSafe(|| run_analysis(daemon, &source, config, &recorder)));
    let streamed = recorder.streamed.load(Ordering::Relaxed);
    daemon.count(|c| c.events_streamed += streamed);
    drop(guard);
    match outcome {
        Ok(Ok(result)) => {
            daemon.count(|c| c.completed += 1);
            let mut fields = vec![("frame", Json::str("result")), ("id", Json::UInt(id))];
            fields.extend(result_fields(&result));
            fields.push(("events_streamed", Json::UInt(streamed)));
            send(writer, &Json::obj(fields));
        }
        Ok(Err(msg)) => {
            daemon.count(|c| c.bad_requests += 1);
            send(writer, &error_frame(id, "bad_request", &msg));
        }
        Err(panic) => {
            daemon.count(|c| c.panicked += 1);
            send(writer, &error_frame(id, "panicked", &panic_message(&panic)));
        }
    }
}

fn handle_batch(daemon: &Arc<Daemon>, writer: &SharedWriter, id: u64, req: &Json) {
    let Some(guard) = daemon.admit() else {
        daemon.count(|c| c.rejected_overloaded += 1);
        let msg = format!("{} requests already in flight", daemon.max_inflight);
        send(writer, &error_frame(id, "overloaded", &msg));
        return;
    };
    let setup = || -> Result<(Vec<JobSpec>, AnalysisConfig, EventMode), String> {
        let Some(Json::Arr(items)) = req.get("jobs") else {
            return Err("batch needs a `jobs` array".into());
        };
        let mut jobs = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let name = item
                .get("name")
                .and_then(Json::as_str)
                .map(str::to_string)
                .unwrap_or_else(|| format!("job-{i}"));
            let source = item
                .get("source")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("batch job {i} needs a `source` string"))?;
            jobs.push(JobSpec::new(name, source));
        }
        Ok((jobs, parse_config(daemon, req)?, parse_event_mode(req)?))
    };
    let (jobs, config, mode) = match setup() {
        Ok(parts) => parts,
        Err(msg) => {
            daemon.count(|c| c.bad_requests += 1);
            send(writer, &error_frame(id, "bad_request", &msg));
            return;
        }
    };
    // The daemon's batch is a FleetSession on its resident machinery: jobs
    // run in-process (sequentially, on the warm pool), share the daemon's
    // store, and stream through the connection's recorder — same outcomes
    // as `astree batch` at any distribution, per the fleet contract.
    let recorder = Arc::new(FrameRecorder {
        writer: Arc::clone(writer),
        id,
        mode,
        streamed: AtomicU64::new(0),
    });
    let mut builder = FleetSession::builder()
        .jobs(jobs)
        .config(config)
        .recorder(Arc::clone(&recorder) as Arc<dyn Recorder>);
    if let Some(pool) = &daemon.pool {
        builder = builder.pool(pool);
    }
    if let Some(store) = &daemon.store {
        builder = builder.cache(Arc::clone(store));
    }
    let report = builder.run();
    let panicked =
        report.outcomes.iter().filter(|o| o.status == JobStatus::Panicked).count() as u64;
    let outcomes: Vec<Json> = report.outcomes.iter().map(batch_outcome_fields).collect();
    let streamed = recorder.streamed.load(Ordering::Relaxed);
    daemon.count(|c| {
        c.events_streamed += streamed;
        c.completed += 1;
        c.panicked += panicked;
    });
    drop(guard);
    send(
        writer,
        &Json::obj([
            ("frame", Json::str("result")),
            ("id", Json::UInt(id)),
            ("batch", Json::Arr(outcomes)),
            ("events_streamed", Json::UInt(streamed)),
        ]),
    );
}

/// Renders one fleet outcome as a `batch` array entry: `done` jobs carry
/// the analysis fields, everything else carries a `message`.
fn batch_outcome_fields(o: &JobOutcome) -> Json {
    let mut fields =
        vec![("name", Json::str(o.name.clone())), ("status", Json::str(o.status.slug()))];
    if o.status == JobStatus::Done {
        fields.push(("alarms", Json::Arr(o.alarm_lines.iter().map(Json::str).collect())));
        fields.push(("main_invariant", o.main_invariant.as_deref().map_or(Json::Null, Json::str)));
        fields.push(("main_census", o.main_census.as_deref().map_or(Json::Null, Json::str)));
        fields.push(("cache", Json::obj([("full_hit", Json::Bool(o.cache_full_hit))])));
    } else {
        fields.push(("message", Json::str(o.detail.clone().unwrap_or_default())));
    }
    Json::obj(fields)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "analysis panicked".to_string()
    }
}
