//! Generator of the periodic synchronous C program family (paper Sect. 4).
//!
//! The paper's subject programs are proprietary fly-by-wire controllers, so
//! the experiments run on synthetic members of the *same family*: periodic
//! synchronous programs, automatically generated from a block-diagram-style
//! specification, with
//!
//! - the canonical reactive shape (`read inputs; compute; write outputs;
//!   wait for next clock tick`),
//! - a number of global/static state variables linear in the code size,
//! - the idioms each of the paper's abstract domains was built for:
//!   second-order digital filters (ellipsoids), event counters bounded by
//!   the clock (clocked domain), boolean-guarded divisions (decision
//!   trees), rate limiters and difference computations (octagons),
//!   contracting feedback updates (linearization + thresholds), saturators,
//!   interpolation tables (expanded arrays) and shift registers,
//! - generated-code idioms: macros, typedefs, enums, split boolean tests
//!   storing intermediate results in `_Bool` globals.
//!
//! Generated programs are alarm-free by construction (all inputs bounded,
//! divisions guarded, indices clamped) — the analogue of the paper's
//! program "running for 10 years without any run-time error" — unless a
//! [`BugKind`] is injected for soundness experiments.
//!
//! # Examples
//!
//! ```
//! use astree_gen::{generate, GenConfig};
//!
//! let src = generate(&GenConfig { channels: 3, seed: 42, bug: None });
//! assert!(src.contains("__astree_wait"));
//! let program = astree_frontend::Frontend::new().compile_str(&src).unwrap();
//! assert!(program.validate().is_empty());
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// A deliberately injected defect (for soundness experiments: the analyzer
/// must report it, the interpreter must be able to trigger it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugKind {
    /// An unguarded division whose divisor may be zero.
    DivByZero,
    /// An index that can step one past an interpolation table.
    OutOfBounds,
    /// An unguarded accumulator that eventually overflows `int`.
    IntOverflow,
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of processing channels; size scales linearly with this.
    pub channels: usize,
    /// RNG seed (same seed → same program).
    pub seed: u64,
    /// Inject one bug of this kind into the last channel.
    pub bug: Option<BugKind>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { channels: 8, seed: 1, bug: None }
    }
}

/// Structural knobs varying the *shape* of family members beyond channel
/// count — deeper delay lines, wider interpolation tables, different phase
/// periods, and cross-channel coupling. Kept separate from [`GenConfig`] so
/// existing construction sites are untouched; [`generate`] uses the default
/// knobs (the golden digests pin the default output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructKnobs {
    /// Shift-register (delay-line) depth; `HIST` in the emitted source.
    pub hist_depth: usize,
    /// Interpolation-table length; `TBL_SIZE` in the emitted source.
    pub tbl_size: usize,
    /// Modulus of the phase counter gating the output stage.
    pub phase_mod: usize,
    /// Feeds 1% of the previous channel's saturated output into each
    /// integrator, giving the corpus inter-channel dataflow (still
    /// alarm-free: the coupling input is bounded by the saturator).
    pub cross_couple: bool,
}

impl Default for StructKnobs {
    fn default() -> Self {
        StructKnobs { hist_depth: 4, tbl_size: 16, phase_mod: 8, cross_couple: false }
    }
}

/// Random draws for one channel, taken from a per-channel RNG stream so the
/// emitted text for channel `i` does not depend on the member's total channel
/// count (see [`generate_with`]).
struct ChanDraws {
    in_lo: f64,
    in_hi: f64,
    a: f64,
    b: f64,
    k_contract: f64,
    rate_max: f64,
}

/// Approximate generated lines of C per channel (for sizing experiments).
pub const LINES_PER_CHANNEL: usize = 75;

/// Channel count approximating a target size in kLOC.
pub fn channels_for_kloc(kloc: f64) -> usize {
    ((kloc * 1000.0) / LINES_PER_CHANNEL as f64).max(1.0) as usize
}

/// Generates one member of the program family as C source text, with the
/// default structural knobs.
pub fn generate(cfg: &GenConfig) -> String {
    generate_with(cfg, &StructKnobs::default())
}

/// Generates one member of the program family with explicit structural
/// knobs. `generate_with(cfg, &StructKnobs::default())` is byte-identical
/// to [`generate`].
pub fn generate_with(cfg: &GenConfig, knobs: &StructKnobs) -> String {
    let mut out = String::new();
    let w = &mut out;
    let n = cfg.channels.max(1);
    let hist = knobs.hist_depth.max(1);
    let tbl = knobs.tbl_size.max(1);
    let phase_mod = knobs.phase_mod.max(1);

    // One RNG stream per channel, keyed by (seed, channel index) only.
    // Channel i's draws — and therefore its declarations and step function —
    // are byte-identical across members of different channel counts, which is
    // what lets a small member's converged loop invariants seed a large
    // member's solves (cross-member seed transfer in the invariant cache).
    let draws: Vec<ChanDraws> = (0..n)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(
                cfg.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1),
            );
            let in_lo = -(rng.gen_range(1..=10) as f64);
            let in_hi = rng.gen_range(1..=10) as f64;
            // Stable filter coefficients: 0 < b < 1, a² < 4b.
            let b = 0.4 + 0.4 * rng.gen_range(0.0..1.0_f64);
            let a_max = (4.0 * b).sqrt() * 0.9;
            let a = (rng.gen_range(0.3..1.0_f64) * a_max * 100.0).round() / 100.0;
            let b = (b * 100.0).round() / 100.0;
            let k_contract = (rng.gen_range(0.05..0.4_f64) * 100.0).round() / 100.0;
            let rate_max = rng.gen_range(1..=5) as f64;
            ChanDraws { in_lo, in_hi, a, b, k_contract, rate_max }
        })
        .collect();

    let _ = writeln!(w, "/* generated periodic synchronous controller: {n} channels */");
    let _ = writeln!(w, "#define TBL_SIZE {tbl}");
    let _ = writeln!(w, "#define SAT(v, lo, hi) ((v) > (hi) ? (hi) : ((v) < (lo) ? (lo) : (v)))");
    let _ = writeln!(w, "#define HIST {hist}");
    let _ = writeln!(w, "typedef unsigned char BYTE;");
    let _ = writeln!(w, "enum Mode {{ MODE_OFF, MODE_INIT, MODE_RUN }};");
    let _ = writeln!(w, "struct Range {{ double lo; double hi; }};");
    let _ = writeln!(w);
    // Shared helpers: exercised interprocedurally, including by-reference.
    let _ = writeln!(
        w,
        "double clampf(double v, double lo, double hi) {{\n    if (v < lo) {{ return lo; }}\n    if (v > hi) {{ return hi; }}\n    return v;\n}}"
    );
    let _ = writeln!(
        w,
        "void rate_limit(double *cur, double target, double max_d) {{\n    double d = target - *cur;\n    if (d > max_d) {{ d = max_d; }}\n    if (d < -max_d) {{ d = -max_d; }}\n    *cur = *cur + d;\n}}"
    );
    let _ = writeln!(
        w,
        "void track(struct Range *r, double v) {{\n    if (v < r->lo) {{ r->lo = v; }}\n    if (v > r->hi) {{ r->hi = v; }}\n}}"
    );
    let _ = writeln!(w);

    // Per-channel declarations.
    for (i, d) in draws.iter().enumerate() {
        let ChanDraws { in_lo, in_hi, .. } = *d;
        let _ = writeln!(w, "/* --- channel {i} --- */");
        let _ = writeln!(w, "volatile double in{i};");
        let _ = writeln!(w, "volatile int ev{i};");
        let _ = writeln!(w, "double flt_x{i}; double flt_y{i};");
        let _ = writeln!(w, "double integ{i};");
        let _ = writeln!(w, "double rate{i};");
        let _ = writeln!(w, "int count{i};");
        let _ = writeln!(w, "int drift{i}; int dout{i};");
        let _ = writeln!(w, "_Bool nz{i};");
        let _ = writeln!(w, "double quot{i};");
        let _ = writeln!(w, "static double tbl{i}[TBL_SIZE];");
        let _ = writeln!(w, "double interp{i};");
        let _ = writeln!(w, "BYTE mode{i};");
        let _ = writeln!(w, "double hist{i}[HIST];");
        let _ = writeln!(w, "double avg{i};");
        let _ = writeln!(w, "struct Range range{i};");
        let _ = writeln!(w, "int phase{i};");
        let _ = writeln!(w, "double out{i};");
        let _ = writeln!(w, "/* input range [{in_lo}, {in_hi}] */");
        let _ = writeln!(w);
    }
    let _ = writeln!(w, "_Bool initialized;");
    let _ = writeln!(w);

    // Channel step functions.
    for (i, d) in draws.iter().enumerate() {
        let in_lo = -(1.0 + (i % 7) as f64);
        let in_hi = 1.0 + (i % 5) as f64;
        let in_abs = in_lo.abs().max(in_hi);
        let ChanDraws { a, b, k_contract, rate_max, .. } = *d;
        let _ = writeln!(w, "void step{i}(void) {{");
        // Filter with reinitialization (ellipsoid domain).
        let _ = writeln!(w, "    double x1;");
        let _ = writeln!(w, "    if (mode{i} == MODE_INIT) {{");
        let _ = writeln!(w, "        flt_x{i} = in{i};");
        let _ = writeln!(w, "        flt_y{i} = in{i};");
        let _ = writeln!(w, "        mode{i} = MODE_RUN;");
        let _ = writeln!(w, "    }} else {{");
        let _ = writeln!(w, "        x1 = {a} * flt_x{i} - {b} * flt_y{i} + in{i};");
        let _ = writeln!(w, "        flt_y{i} = flt_x{i};");
        let _ = writeln!(w, "        flt_x{i} = x1;");
        let _ = writeln!(w, "    }}");
        // Contracting integrator (linearization + thresholds).
        let _ = writeln!(w, "    integ{i} = integ{i} - {k_contract} * integ{i} + in{i};");
        if knobs.cross_couple && n > 1 {
            // Bounded inter-channel feedback: the coupled term is the
            // previous channel's saturated output, so contraction still
            // bounds the integrator.
            let prev = (i + n - 1) % n;
            let _ = writeln!(w, "    integ{i} = integ{i} + 0.01 * out{prev};");
        }
        // Rate limiter through a by-reference helper (octagons in callee).
        let _ = writeln!(w, "    rate_limit(&rate{i}, in{i}, {rate_max}.0);");
        let _ = writeln!(w, "    rate{i} = clampf(rate{i}, -100.0, 100.0);");
        // Event counter (clocked domain).
        let _ = writeln!(w, "    if (ev{i} == 1) {{ count{i} = count{i} + 1; }}");
        // Drift monitor: a difference bounded only through its relation to
        // the counter (octagon domain): drift − count ∈ [−1, 0], so under
        // `count < 1000` the product fits int; the interval alone overflows.
        let _ = writeln!(w, "    drift{i} = count{i} - ev{i};");
        let _ = writeln!(w, "    if (count{i} < 1000) {{ dout{i} = drift{i} * 2000000; }}");
        // Boolean-guarded division (decision trees). The generated code
        // stores the test in a boolean first — the split-test idiom the
        // paper attributes to code generators.
        let _ = writeln!(w, "    nz{i} = (_Bool)(count{i} > 0);");
        let _ = writeln!(w, "    if (nz{i}) {{ quot{i} = 1000.0 / (double)count{i}; }}");
        // Interpolation table lookup with clamped index (expanded arrays
        // and octagon-friendly index arithmetic).
        let _ = writeln!(w, "    {{");
        let _ = writeln!(w, "        int idx;");
        let _ = writeln!(w, "        idx = (int)(in{i} * 2.0) + 8;");
        let _ = writeln!(w, "        if (idx < 0) {{ idx = 0; }}");
        let _ = writeln!(w, "        if (idx > TBL_SIZE - 1) {{ idx = TBL_SIZE - 1; }}");
        let _ = writeln!(w, "        interp{i} = tbl{i}[idx];");
        let _ = writeln!(w, "    }}");
        // Shift register (delay line): weak array updates inside a loop.
        let _ = writeln!(w, "    {{");
        let _ = writeln!(w, "        int k;");
        let _ = writeln!(w, "        for (k = HIST - 1; k > 0; k = k - 1) {{");
        let _ = writeln!(w, "            hist{i}[k] = hist{i}[k - 1];");
        let _ = writeln!(w, "        }}");
        let _ = writeln!(w, "        hist{i}[0] = in{i};");
        let sum = (0..hist).map(|k| format!("hist{i}[{k}]")).collect::<Vec<_>>().join(" + ");
        let _ = writeln!(w, "        avg{i} = ({sum}) * {};", 1.0 / hist as f64);
        let _ = writeln!(w, "    }}");
        // Min/max tracker through a by-reference struct parameter.
        let _ = writeln!(w, "    track(&range{i}, rate{i});");
        // Modulo phase counter gating the output stage.
        let _ = writeln!(w, "    phase{i} = (phase{i} + 1) % {phase_mod};");
        // Output mix, saturated.
        let _ = writeln!(w, "    if (phase{i} == 0) {{");
        let _ = writeln!(
            w,
            "        out{i} = SAT(flt_x{i} + integ{i} + rate{i} + avg{i}, -1000.0, 1000.0);"
        );
        let _ = writeln!(w, "    }}");
        let _ = writeln!(w, "}}");
        let _ = writeln!(w);
        let _ = (in_abs, in_lo, in_hi);
    }

    // Injected bug, if requested (into a dedicated function).
    if let Some(bug) = cfg.bug {
        let _ = writeln!(w, "int bug_num; int bug_den; int bug_acc; double bug_out;");
        let _ = writeln!(w, "void buggy(void) {{");
        match bug {
            BugKind::DivByZero => {
                let _ = writeln!(w, "    bug_den = ev0 - 1;          /* may be -1..0 */");
                let _ = writeln!(
                    w,
                    "    bug_num = 100 / (bug_den + 1); /* div by zero when ev0 == 0 */"
                );
            }
            BugKind::OutOfBounds => {
                let _ = writeln!(w, "    {{ int bi; bi = ev0 * TBL_SIZE; bug_out = tbl0[bi]; }} /* bi == 16 when ev0 == 1 */");
            }
            BugKind::IntOverflow => {
                let _ =
                    writeln!(w, "    bug_acc = bug_acc + 1000000; /* unbounded accumulation */");
            }
        }
        let _ = writeln!(w, "}}");
        let _ = writeln!(w);
    }

    // main: init + reactive loop.
    let _ = writeln!(w, "void main(void) {{");
    for i in 0..n {
        let in_lo = -(1.0 + (i % 7) as f64);
        let in_hi = 1.0 + (i % 5) as f64;
        let _ = writeln!(w, "    __astree_input_float(in{i}, {in_lo}, {in_hi});");
        let _ = writeln!(w, "    __astree_input_int(ev{i}, 0, 1);");
    }
    let _ = writeln!(w, "    {{");
    let _ = writeln!(w, "        int k;");
    let _ = writeln!(w, "        for (k = 0; k < TBL_SIZE; k++) {{");
    for i in 0..n {
        let _ = writeln!(w, "            tbl{i}[k] = (double)k * 0.5;");
    }
    let _ = writeln!(w, "        }}");
    let _ = writeln!(w, "    }}");
    for i in 0..n {
        let _ = writeln!(w, "    mode{i} = MODE_INIT;");
    }
    let _ = writeln!(w, "    initialized = 1;");
    let _ = writeln!(w, "    while (1) {{");
    for i in 0..n {
        let _ = writeln!(w, "        step{i}();");
    }
    if cfg.bug.is_some() {
        let _ = writeln!(w, "        buggy();");
    }
    let _ = writeln!(w, "        __astree_wait();");
    let _ = writeln!(w, "    }}");
    let _ = writeln!(w, "}}");
    out
}

/// Counts the physical source lines of a generated program.
pub fn line_count(src: &str) -> usize {
    src.lines().count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use astree_frontend::Frontend;
    use astree_ir::{Interp, InterpConfig, SeededInputs};

    #[test]
    fn generated_source_compiles_and_validates() {
        for channels in [1, 4, 16] {
            let src = generate(&GenConfig { channels, seed: 7, bug: None });
            let p = Frontend::new().compile_str(&src).expect("compiles");
            let errs = p.validate();
            assert!(errs.is_empty(), "{errs:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&GenConfig { channels: 3, seed: 5, bug: None });
        let b = generate(&GenConfig { channels: 3, seed: 5, bug: None });
        let c = generate(&GenConfig { channels: 3, seed: 6, bug: None });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    /// FNV-1a, as a dependency-free stable digest.
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    #[test]
    fn generated_source_is_byte_stable() {
        // Golden digests: the same (channels, seed, bug) must produce a
        // byte-identical program across runs, platforms and refactorings.
        // Downstream results (batch reports, scaling experiments, the
        // parallel-equivalence corpus) are only comparable over time if the
        // inputs are. If a generator change is *intentional*, update the
        // constants below in the same commit.
        let cases: [(usize, u64, Option<BugKind>, u64); 4] = [
            (1, 1, None, 0x1d38b86c2650f293),
            (3, 5, None, 0xd7847f36b5f68ba7),
            (8, 42, None, 0x85765bd1893dc1a8),
            (2, 7, Some(BugKind::DivByZero), 0x094409798f6cff1b),
        ];
        for (channels, seed, bug, want) in cases {
            let src = generate(&GenConfig { channels, seed, bug });
            let got = fnv1a(src.as_bytes());
            assert_eq!(
                got, want,
                "generator output drifted for channels={channels} seed={seed} bug={bug:?}: \
                 digest {got:#018x} (expected {want:#018x})"
            );
        }
    }

    #[test]
    fn default_knobs_match_plain_generate() {
        let cfg = GenConfig { channels: 3, seed: 9, bug: None };
        assert_eq!(generate(&cfg), generate_with(&cfg, &StructKnobs::default()));
    }

    #[test]
    fn knob_variants_compile_and_validate() {
        let variants = [
            StructKnobs { hist_depth: 8, ..StructKnobs::default() },
            StructKnobs { tbl_size: 64, ..StructKnobs::default() },
            StructKnobs { phase_mod: 3, ..StructKnobs::default() },
            StructKnobs { cross_couple: true, ..StructKnobs::default() },
            StructKnobs { hist_depth: 2, tbl_size: 4, phase_mod: 5, cross_couple: true },
        ];
        for knobs in variants {
            let src = generate_with(&GenConfig { channels: 3, seed: 7, bug: None }, &knobs);
            let p =
                Frontend::new().compile_str(&src).unwrap_or_else(|e| panic!("{knobs:?}: {e:?}"));
            let errs = p.validate();
            assert!(errs.is_empty(), "{knobs:?}: {errs:?}");
        }
    }

    #[test]
    fn knob_variants_run_clean() {
        // Structural variants must stay alarm-free by construction: the
        // concrete interpreter sees no errors and no overflow events.
        let knobs = StructKnobs { hist_depth: 6, tbl_size: 32, phase_mod: 5, cross_couple: true };
        let src = generate_with(&GenConfig { channels: 3, seed: 13, bug: None }, &knobs);
        let p = Frontend::new().compile_str(&src).unwrap();
        for seed in 0..10 {
            let mut inputs = SeededInputs::new(seed);
            let mut it = Interp::new(
                &p,
                InterpConfig { max_steps: 10_000_000, max_ticks: 100 },
                &mut inputs,
            );
            it.run().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(it.events().is_empty(), "seed {seed}: {:?}", it.events());
        }
    }

    #[test]
    fn size_scales_linearly() {
        let small = line_count(&generate(&GenConfig { channels: 2, seed: 1, bug: None }));
        let big = line_count(&generate(&GenConfig { channels: 20, seed: 1, bug: None }));
        let ratio = big as f64 / small as f64;
        assert!(ratio > 5.0, "expected ~10x, got {ratio}");
        // Global/static variables are linear in size too (paper Sect. 4).
        let p = Frontend::new()
            .compile_str(&generate(&GenConfig { channels: 20, seed: 1, bug: None }))
            .unwrap();
        let m = p.metrics();
        assert!(m.globals >= 20 * 10);
    }

    #[test]
    fn channels_for_kloc_inverts_size() {
        let ch = channels_for_kloc(5.0);
        let src = generate(&GenConfig { channels: ch, seed: 1, bug: None });
        let kloc = line_count(&src) as f64 / 1000.0;
        assert!((kloc - 5.0).abs() < 2.0, "asked 5 kLOC, got {kloc}");
    }

    #[test]
    fn clean_program_runs_without_errors() {
        let src = generate(&GenConfig { channels: 3, seed: 11, bug: None });
        let p = Frontend::new().compile_str(&src).unwrap();
        for seed in 0..20 {
            let mut inputs = SeededInputs::new(seed);
            let mut it = Interp::new(
                &p,
                InterpConfig { max_steps: 10_000_000, max_ticks: 200 },
                &mut inputs,
            );
            it.run().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(it.events().is_empty(), "seed {seed}: {:?}", it.events());
        }
    }

    #[test]
    fn injected_bugs_are_triggerable() {
        let src = generate(&GenConfig { channels: 1, seed: 3, bug: Some(BugKind::DivByZero) });
        let p = Frontend::new().compile_str(&src).unwrap();
        let mut hit = false;
        for seed in 0..50 {
            let mut inputs = SeededInputs::new(seed);
            let mut it =
                Interp::new(&p, InterpConfig { max_steps: 10_000_000, max_ticks: 50 }, &mut inputs);
            if it.run().is_err() {
                hit = true;
                break;
            }
        }
        assert!(hit, "the injected division by zero never fired");
    }

    #[test]
    fn overflow_bug_accumulates() {
        let src = generate(&GenConfig { channels: 1, seed: 3, bug: Some(BugKind::IntOverflow) });
        let p = Frontend::new().compile_str(&src).unwrap();
        let mut inputs = SeededInputs::new(1);
        let mut it =
            Interp::new(&p, InterpConfig { max_steps: 100_000_000, max_ticks: 3000 }, &mut inputs);
        it.run().unwrap();
        assert!(
            it.events().iter().any(|(_, e)| matches!(e, astree_ir::RuntimeEvent::IntOverflow)),
            "accumulator should overflow within 3000 ticks"
        );
    }
}
