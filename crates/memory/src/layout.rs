//! Cell layout: mapping program variables to abstract cells.
//!
//! Array expansion is the paper's default (element-wise abstraction); arrays
//! larger than [`LayoutConfig::shrink_threshold`] become *shrunk* cells where
//! all elements are abstracted together (paper Sect. 6.1.1: "we use this
//! representation for large arrays where all that matters is the range of
//! the stored data").

use astree_domains::IntItv;
use astree_ir::{Access, Expr, Lvalue, Program, ScalarType, Type, VarId};

/// Index of an abstract cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// Description of one abstract cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellInfo {
    /// The variable this cell belongs to.
    pub var: VarId,
    /// Human-readable path (e.g. `x`, `a[3]`, `s.f`, `a[*]` for shrunk).
    pub name: String,
    /// Scalar type of the cell.
    pub ty: ScalarType,
    /// `true` when the cell stands for *all* elements of a shrunk array
    /// (assignments are always weak, reads join all concrete elements).
    pub shrunk: bool,
}

/// Layout configuration.
#[derive(Debug, Clone)]
pub struct LayoutConfig {
    /// Arrays with strictly more elements than this are shrunk to one cell.
    pub shrink_threshold: usize,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        LayoutConfig { shrink_threshold: 256 }
    }
}

/// The result of resolving an l-value to cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Resolved {
    /// Candidate cells (one when precise; several when the index is
    /// imprecise; all elements of a shrunk array map to its single cell).
    pub cells: Vec<CellId>,
    /// `true` when a write to this l-value may be performed as a strong
    /// update (single expanded cell, definitely targeted).
    pub strong: bool,
    /// `true` when the subscript may fall outside the array bounds.
    pub may_oob: bool,
}

/// Node of the per-variable cell tree.
#[derive(Debug, Clone)]
enum CellNode {
    Scalar(CellId),
    /// Expanded array: per-element subtrees.
    Array(Vec<CellNode>),
    /// Shrunk array: one cell for every element, plus the element count for
    /// bounds checking.
    Shrunk(CellId, usize),
    Record(Vec<CellNode>),
}

/// The cell layout of a program.
#[derive(Debug, Clone)]
pub struct CellLayout {
    cells: Vec<CellInfo>,
    roots: Vec<CellNode>,
}

impl CellLayout {
    /// Builds the layout for every variable of `program`.
    pub fn new(program: &Program, config: &LayoutConfig) -> CellLayout {
        let mut layout = CellLayout { cells: Vec::new(), roots: Vec::new() };
        for (i, v) in program.vars.iter().enumerate() {
            let var = VarId(i as u32);
            let node = layout.build(program, config, var, &v.ty, v.name.clone());
            layout.roots.push(node);
        }
        layout
    }

    fn build(
        &mut self,
        program: &Program,
        config: &LayoutConfig,
        var: VarId,
        ty: &Type,
        name: String,
    ) -> CellNode {
        match ty {
            Type::Scalar(st) => {
                let id = CellId(self.cells.len() as u32);
                self.cells.push(CellInfo { var, name, ty: *st, shrunk: false });
                CellNode::Scalar(id)
            }
            Type::Array(elem, n) => match elem.as_scalar() {
                Some(elem_ty) if *n > config.shrink_threshold => {
                    let id = CellId(self.cells.len() as u32);
                    self.cells.push(CellInfo {
                        var,
                        name: format!("{name}[*]"),
                        ty: elem_ty,
                        shrunk: true,
                    });
                    CellNode::Shrunk(id, *n)
                }
                _ => {
                    let children = (0..*n)
                        .map(|i| self.build(program, config, var, elem, format!("{name}[{i}]")))
                        .collect();
                    CellNode::Array(children)
                }
            },
            Type::Record(rid) => {
                let fields = program.records[rid.0 as usize].fields.clone();
                let children = fields
                    .iter()
                    .map(|(fname, fty)| {
                        self.build(program, config, var, fty, format!("{name}.{fname}"))
                    })
                    .collect();
                CellNode::Record(children)
            }
        }
    }

    /// Total number of cells (the paper's "21,000 cells after array
    /// expansion" metric).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Cell metadata.
    pub fn info(&self, id: CellId) -> &CellInfo {
        &self.cells[id.0 as usize]
    }

    /// Iterates over all cells.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &CellInfo)> {
        self.cells.iter().enumerate().map(|(i, c)| (CellId(i as u32), c))
    }

    /// The single cell of a scalar variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable is not scalar.
    pub fn scalar_cell(&self, var: VarId) -> CellId {
        match &self.roots[var.0 as usize] {
            CellNode::Scalar(id) => *id,
            other => panic!("variable {var:?} is not scalar: {other:?}"),
        }
    }

    /// All scalar cells under a variable (for `&arr` by-ref passing and
    /// initialization).
    pub fn cells_of_var(&self, var: VarId) -> Vec<CellId> {
        let mut out = Vec::new();
        collect(&self.roots[var.0 as usize], &mut out);
        out
    }

    /// Resolves an l-value given an evaluator for index expressions.
    ///
    /// `idx_eval` returns the interval of an index expression in the current
    /// abstract environment.
    pub fn resolve(&self, lv: &Lvalue, mut idx_eval: impl FnMut(&Expr) -> IntItv) -> Resolved {
        let mut nodes: Vec<&CellNode> = vec![&self.roots[lv.base.0 as usize]];
        let mut strong = true;
        let mut may_oob = false;
        for acc in &lv.path {
            let mut next: Vec<&CellNode> = Vec::new();
            match acc {
                Access::Field(f) => {
                    for n in nodes {
                        if let CellNode::Record(children) = n {
                            next.push(&children[*f as usize]);
                        }
                    }
                }
                Access::Index(e) => {
                    let idx = idx_eval(e);
                    for n in nodes {
                        match n {
                            CellNode::Array(children) => {
                                let len = children.len() as i64;
                                if idx.lo < 0 || idx.hi >= len {
                                    may_oob = true;
                                }
                                let lo = idx.lo.clamp(0, len - 1);
                                let hi = idx.hi.clamp(0, len - 1);
                                if idx.is_bottom() {
                                    continue;
                                }
                                if lo != hi {
                                    strong = false;
                                }
                                for c in &children[lo as usize..=hi as usize] {
                                    next.push(c);
                                }
                            }
                            CellNode::Shrunk(_, len) => {
                                if idx.lo < 0 || idx.hi >= *len as i64 {
                                    may_oob = true;
                                }
                                // All elements share the cell: writes weak.
                                strong = false;
                                next.push(n);
                            }
                            other => next.push(other),
                        }
                    }
                }
            }
            nodes = next;
        }
        let mut cells = Vec::new();
        for n in nodes {
            collect_node_heads(n, &mut cells);
        }
        cells.sort();
        cells.dedup();
        if cells.len() != 1 {
            strong = false;
        }
        Resolved { cells, strong, may_oob }
    }
}

fn collect(node: &CellNode, out: &mut Vec<CellId>) {
    match node {
        CellNode::Scalar(id) | CellNode::Shrunk(id, _) => out.push(*id),
        CellNode::Array(children) | CellNode::Record(children) => {
            for c in children {
                collect(c, out);
            }
        }
    }
}

/// For resolution results the node should be scalar-like; aggregates expand.
fn collect_node_heads(node: &CellNode, out: &mut Vec<CellId>) {
    collect(node, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use astree_ir::{FloatKind, Function, IntType, RecordDef, VarInfo, VarKind};

    fn program_with(tys: Vec<Type>) -> Program {
        let mut p = Program::new();
        p.records.push(RecordDef {
            name: "S".into(),
            fields: vec![
                ("a".into(), Type::int(IntType::INT)),
                ("b".into(), Type::float(FloatKind::F64)),
            ],
        });
        for (i, ty) in tys.into_iter().enumerate() {
            p.add_var(VarInfo {
                name: format!("v{i}"),
                ty,
                kind: VarKind::Global,
                volatile_input: None,
            });
        }
        p.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![],
        });
        p
    }

    #[test]
    fn scalar_and_record_cells() {
        let p = program_with(vec![Type::int(IntType::INT), Type::Record(astree_ir::RecordId(0))]);
        let l = CellLayout::new(&p, &LayoutConfig::default());
        assert_eq!(l.num_cells(), 3);
        assert_eq!(l.info(CellId(1)).name, "v1.a");
        assert_eq!(l.info(CellId(2)).name, "v1.b");
    }

    #[test]
    fn small_arrays_expand() {
        let p = program_with(vec![Type::Array(Box::new(Type::int(IntType::INT)), 4)]);
        let l = CellLayout::new(&p, &LayoutConfig::default());
        assert_eq!(l.num_cells(), 4);
        assert!(!l.info(CellId(2)).shrunk);
        assert_eq!(l.info(CellId(2)).name, "v0[2]");
    }

    #[test]
    fn large_arrays_shrink() {
        let p = program_with(vec![Type::Array(Box::new(Type::int(IntType::INT)), 1000)]);
        let l = CellLayout::new(&p, &LayoutConfig { shrink_threshold: 256 });
        assert_eq!(l.num_cells(), 1);
        assert!(l.info(CellId(0)).shrunk);
        assert_eq!(l.info(CellId(0)).name, "v0[*]");
    }

    #[test]
    fn resolve_constant_index_is_strong() {
        let p = program_with(vec![Type::Array(Box::new(Type::int(IntType::INT)), 4)]);
        let l = CellLayout::new(&p, &LayoutConfig::default());
        let lv = Lvalue::index(VarId(0), Expr::int(2));
        let r = l.resolve(&lv, |_| IntItv::singleton(2));
        assert_eq!(r.cells.len(), 1);
        assert!(r.strong);
        assert!(!r.may_oob);
    }

    #[test]
    fn resolve_imprecise_index_is_weak() {
        let p = program_with(vec![Type::Array(Box::new(Type::int(IntType::INT)), 4)]);
        let l = CellLayout::new(&p, &LayoutConfig::default());
        let lv = Lvalue::index(VarId(0), Expr::var(VarId(0)));
        let r = l.resolve(&lv, |_| IntItv::new(1, 2));
        assert_eq!(r.cells.len(), 2);
        assert!(!r.strong);
        assert!(!r.may_oob);
    }

    #[test]
    fn resolve_flags_oob() {
        let p = program_with(vec![Type::Array(Box::new(Type::int(IntType::INT)), 4)]);
        let l = CellLayout::new(&p, &LayoutConfig::default());
        let lv = Lvalue::index(VarId(0), Expr::var(VarId(0)));
        let r = l.resolve(&lv, |_| IntItv::new(2, 7));
        assert!(r.may_oob);
        assert_eq!(r.cells.len(), 2); // clamped to elements 2..=3
        let r = l.resolve(&lv, |_| IntItv::new(-3, -1));
        assert!(r.may_oob);
    }

    #[test]
    fn resolve_shrunk_is_always_weak() {
        let p = program_with(vec![Type::Array(Box::new(Type::int(IntType::INT)), 1000)]);
        let l = CellLayout::new(&p, &LayoutConfig { shrink_threshold: 10 });
        let lv = Lvalue::index(VarId(0), Expr::int(5));
        let r = l.resolve(&lv, |_| IntItv::singleton(5));
        assert_eq!(r.cells.len(), 1);
        assert!(!r.strong);
    }

    #[test]
    fn nested_struct_array_paths() {
        let p = program_with(vec![Type::Array(Box::new(Type::Record(astree_ir::RecordId(0))), 2)]);
        let l = CellLayout::new(&p, &LayoutConfig::default());
        assert_eq!(l.num_cells(), 4);
        let lv = Lvalue {
            base: VarId(0),
            path: vec![Access::Index(Box::new(Expr::int(1))), Access::Field(1)],
        };
        let r = l.resolve(&lv, |_| IntItv::singleton(1));
        assert_eq!(r.cells.len(), 1);
        assert_eq!(l.info(r.cells[0]).name, "v0[1].b");
        assert!(r.strong);
    }

    #[test]
    fn cells_of_var_collects_all() {
        let p = program_with(vec![Type::Array(Box::new(Type::int(IntType::INT)), 3)]);
        let l = CellLayout::new(&p, &LayoutConfig::default());
        assert_eq!(l.cells_of_var(VarId(0)).len(), 3);
    }
}
