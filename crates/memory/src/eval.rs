//! Abstract transfer functions: expression evaluation, guards, assignments,
//! volatile refreshes and the clock tick.
//!
//! Evaluation follows the paper's two-layer scheme: a bottom-up interval
//! evaluation that reports every potential run-time error (Sect. 5.3), then
//! — when no error is possible — a refinement through interval linear forms
//! (Sect. 6.3) whose rounding error is absorbed into the constant term.

use crate::env::{AbsEnv, CellVal};
use crate::layout::{CellId, CellLayout, Resolved};
use astree_domains::{Clocked, ErrFlags, FloatItv, IntItv, LinForm};
use astree_float::round;
use astree_ir::{
    Binop, Expr, FloatKind, InputRange, IntType, Lvalue, Program, ScalarType, Unop, VarId,
};

/// An abstract scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbsVal {
    /// An integer interval.
    Int(IntItv),
    /// A float interval.
    Float(FloatItv),
}

impl AbsVal {
    /// `true` when no concrete value is denoted.
    pub fn is_bottom(&self) -> bool {
        match self {
            AbsVal::Int(i) => i.is_bottom(),
            AbsVal::Float(f) => f.is_bottom(),
        }
    }

    /// The integer interval.
    ///
    /// # Panics
    ///
    /// Panics on a float value (the IR is well-typed, so this indicates an
    /// analyzer bug).
    pub fn as_int(&self) -> IntItv {
        match self {
            AbsVal::Int(i) => *i,
            AbsVal::Float(f) => panic!("expected int abstract value, got {f}"),
        }
    }

    /// The float interval.
    ///
    /// # Panics
    ///
    /// Panics on an integer value.
    pub fn as_float(&self) -> FloatItv {
        match self {
            AbsVal::Float(f) => *f,
            AbsVal::Int(i) => panic!("expected float abstract value, got {i}"),
        }
    }

    /// (may be zero, may be non-zero) — C truthiness of the value.
    pub fn truthiness(&self) -> (bool, bool) {
        match self {
            AbsVal::Int(i) => {
                if i.is_bottom() {
                    (false, false)
                } else {
                    (i.contains(0), i.lo != 0 || i.hi != 0)
                }
            }
            AbsVal::Float(f) => {
                if f.is_bottom() {
                    (false, false)
                } else {
                    (f.contains(0.0), f.lo != 0.0 || f.hi != 0.0)
                }
            }
        }
    }
}

/// The abstract interpreter's expression engine, parameterized by program,
/// layout, and the maximal clock (paper Sect. 4's "maximal execution time").
pub struct Evaluator<'a> {
    /// The analyzed program.
    pub program: &'a Program,
    /// Cell layout.
    pub layout: &'a CellLayout,
    /// Upper bound on the clock (number of `wait` ticks).
    pub max_clock: i64,
    /// Enables the linear-form refinement of Sect. 6.3.
    pub linearize: bool,
    /// Enables the clocked-domain components of Sect. 6.2.1.
    pub clocked: bool,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with all refinements enabled.
    pub fn new(program: &'a Program, layout: &'a CellLayout, max_clock: i64) -> Self {
        Evaluator { program, layout, max_clock, linearize: true, clocked: true }
    }

    /// Resolves an l-value in `env`.
    pub fn resolve(&self, env: &AbsEnv, lv: &Lvalue) -> Resolved {
        self.layout.resolve(lv, |e| {
            let (v, _) = self.eval(env, e);
            v.as_int()
        })
    }

    /// Abstract evaluation: the value and the potential run-time errors of
    /// evaluating `e` in `env`.
    pub fn eval(&self, env: &AbsEnv, e: &Expr) -> (AbsVal, ErrFlags) {
        match e {
            Expr::Int(v, _) => (AbsVal::Int(IntItv::singleton(*v)), ErrFlags::NONE),
            Expr::Float(b, k) => {
                (AbsVal::Float(FloatItv::singleton(k.round_nearest(b.get()))), ErrFlags::NONE)
            }
            Expr::Load(lv, ty) => self.eval_load(env, lv, *ty),
            Expr::Unop(op, t, a) => {
                let (av, f) = self.eval(env, a);
                let (v, f2) = self.eval_unop(*op, *t, av);
                (v, f | f2)
            }
            Expr::Binop(op, t, a, b) => {
                let (av, fa) = self.eval(env, a);
                let (bv, fb) = self.eval(env, b);
                let (v, f) = self.eval_binop(*op, *t, av, bv);
                (v, fa | fb | f)
            }
            Expr::Cast(t, a) => {
                let (av, f) = self.eval(env, a);
                let (v, f2) = self.eval_cast(*t, av);
                (v, f | f2)
            }
        }
    }

    fn eval_load(&self, env: &AbsEnv, lv: &Lvalue, ty: ScalarType) -> (AbsVal, ErrFlags) {
        if env.is_bottom() {
            return (bottom_of(ty), ErrFlags::NONE);
        }
        let r = self.resolve(env, lv);
        let mut flags = ErrFlags::NONE;
        if r.may_oob {
            flags |= ErrFlags::OUT_OF_BOUNDS;
        }
        if r.cells.is_empty() {
            return (bottom_of(ty), flags);
        }
        let mut acc: Option<CellVal> = None;
        for c in &r.cells {
            let v = env.get(*c, self.layout);
            acc = Some(match acc {
                None => v,
                Some(a) => a.join(&v),
            });
        }
        let v = match acc.expect("non-empty") {
            CellVal::Int(c) => {
                let c = if self.clocked { c.reduce(env.clock) } else { c };
                AbsVal::Int(c.val)
            }
            CellVal::Float(f) => AbsVal::Float(f),
        };
        (v, flags)
    }

    fn eval_unop(&self, op: Unop, t: ScalarType, a: AbsVal) -> (AbsVal, ErrFlags) {
        match (op, t) {
            (Unop::Neg, ScalarType::Int(it)) => clip_int(a.as_int().neg(), it),
            (Unop::Neg, ScalarType::Float(_)) => {
                (AbsVal::Float(a.as_float().neg()), ErrFlags::NONE)
            }
            (Unop::LNot, _) => {
                let (can_zero, can_nonzero) = a.truthiness();
                (AbsVal::Int(bool_range(can_nonzero, can_zero)), ErrFlags::NONE)
            }
            (Unop::BNot, ScalarType::Int(it)) => clip_int(a.as_int().bitnot(), it),
            (op, t) => panic!("ill-typed unop {op:?} at {t}"),
        }
    }

    fn eval_binop(&self, op: Binop, t: ScalarType, a: AbsVal, b: AbsVal) -> (AbsVal, ErrFlags) {
        if op.is_logical() {
            let (az, an) = a.truthiness();
            let (bz, bn) = b.truthiness();
            let r = match op {
                // can be false / can be true
                Binop::LAnd => bool_range(az || (an && bz), an && bn),
                Binop::LOr => bool_range(az && bz, an || bn),
                _ => unreachable!(),
            };
            return (AbsVal::Int(r), ErrFlags::NONE);
        }
        if op.is_comparison() {
            return (AbsVal::Int(self.compare(op, a, b)), ErrFlags::NONE);
        }
        match (a, b, t) {
            (AbsVal::Int(x), AbsVal::Int(y), ScalarType::Int(it)) => {
                let mut flags = ErrFlags::NONE;
                let raw = match op {
                    Binop::Add => x.add(y),
                    Binop::Sub => x.sub(y),
                    Binop::Mul => x.mul(y),
                    Binop::Div | Binop::Rem => {
                        if y.contains(0) {
                            flags |= ErrFlags::DIV_BY_ZERO;
                        }
                        if op == Binop::Div {
                            x.div(y)
                        } else {
                            x.rem(y)
                        }
                    }
                    Binop::BAnd => x.bitand(y),
                    Binop::BOr => x.bitor(y),
                    Binop::BXor => x.bitxor(y),
                    Binop::Shl | Binop::Shr => {
                        let valid = IntItv::new(0, it.bits as i64 - 1);
                        if !y.leq(valid) {
                            flags |= ErrFlags::SHIFT_RANGE;
                        }
                        let amt = y.meet(valid);
                        if op == Binop::Shl {
                            x.shl(amt)
                        } else {
                            x.shr(amt)
                        }
                    }
                    _ => unreachable!(),
                };
                let (v, f2) = clip_int(raw, it);
                (v, flags | f2)
            }
            (AbsVal::Float(x), AbsVal::Float(y), ScalarType::Float(k)) => {
                let (v, f) = match op {
                    Binop::Add => x.add(y, k),
                    Binop::Sub => x.sub(y, k),
                    Binop::Mul => x.mul(y, k),
                    Binop::Div => x.div(y, k),
                    other => panic!("float op {other:?} unsupported"),
                };
                (AbsVal::Float(v), f)
            }
            (a, b, t) => panic!("ill-typed binop operands {a:?}, {b:?} at {t}"),
        }
    }

    /// Abstract comparison: `[0,0]`, `[1,1]` or `[0,1]`.
    fn compare(&self, op: Binop, a: AbsVal, b: AbsVal) -> IntItv {
        if a.is_bottom() || b.is_bottom() {
            return IntItv::BOTTOM;
        }
        let (lt, eq, gt) = match (a, b) {
            (AbsVal::Int(x), AbsVal::Int(y)) => {
                // Possible orderings of values drawn from x and y.
                (
                    x.lo < y.hi,
                    x.meet(y) != IntItv::BOTTOM && x.lo <= y.hi && y.lo <= x.hi,
                    x.hi > y.lo,
                )
            }
            (AbsVal::Float(x), AbsVal::Float(y)) => {
                (x.lo < y.hi, !x.meet(y).is_bottom(), x.hi > y.lo)
            }
            _ => return IntItv::new(0, 1),
        };
        // `eq` above is "may be equal"; refine strict comparisons.
        let (can_true, can_false) = match op {
            Binop::Lt => (lt, gt || eq),
            Binop::Le => (lt || eq, gt),
            Binop::Gt => (gt, lt || eq),
            Binop::Ge => (gt || eq, lt),
            Binop::Eq => (eq, lt || gt),
            Binop::Ne => (lt || gt, eq),
            _ => unreachable!(),
        };
        bool_range(can_false, can_true)
    }

    fn eval_cast(&self, t: ScalarType, a: AbsVal) -> (AbsVal, ErrFlags) {
        match (t, a) {
            (ScalarType::Int(it), AbsVal::Int(x)) => {
                (AbsVal::Int(x.convert_to(it)), ErrFlags::NONE)
            }
            (ScalarType::Float(k), AbsVal::Int(x)) => {
                if x.is_bottom() {
                    return (AbsVal::Float(FloatItv::BOTTOM), ErrFlags::NONE);
                }
                (AbsVal::Float(FloatItv::from_int_range(x.lo, x.hi, k)), ErrFlags::NONE)
            }
            (ScalarType::Float(k), AbsVal::Float(x)) => {
                let (v, f) = x.convert_to(k);
                (AbsVal::Float(v), f)
            }
            (ScalarType::Int(it), AbsVal::Float(x)) => {
                if it.is_bool() {
                    if x.is_bottom() {
                        return (AbsVal::Int(IntItv::BOTTOM), ErrFlags::NONE);
                    }
                    let can_zero = x.contains(0.0);
                    let can_nonzero = x.lo != 0.0 || x.hi != 0.0;
                    return (AbsVal::Int(bool_range(can_zero, can_nonzero)), ErrFlags::NONE);
                }
                let (lo, hi, f) = x.trunc_to_int(it.min(), it.max());
                (AbsVal::Int(IntItv::new(lo, hi)), f)
            }
        }
    }

    // ----- assignment ----------------------------------------------------

    /// Transfer for `lv := e`. Returns the new environment and the potential
    /// errors of the statement.
    pub fn assign(&self, env: &AbsEnv, lv: &Lvalue, e: &Expr) -> (AbsEnv, ErrFlags) {
        if env.is_bottom() {
            return (env.clone(), ErrFlags::NONE);
        }
        let (mut val, mut flags) = self.eval(env, e);
        // Linear-form refinement (Sect. 6.3): only when no error was
        // possible, so the linearized semantics matches the expression's.
        if self.linearize && flags.is_empty() {
            if let (AbsVal::Float(v), ScalarType::Float(k)) = (&val, e.ty()) {
                if let Some(lf) = self.linearize_expr(env, e, k) {
                    let refined = lf.eval(|c| self.float_cell(env, *c));
                    let m = v.meet(refined.on_grid(k));
                    val = AbsVal::Float(m);
                }
            }
        }
        if val.is_bottom() {
            // No non-erroneous value: execution cannot continue.
            return (AbsEnv::bottom(), flags);
        }
        let r = self.resolve(env, lv);
        if r.may_oob {
            flags |= ErrFlags::OUT_OF_BOUNDS;
        }
        if r.cells.is_empty() {
            return (AbsEnv::bottom(), flags);
        }
        let cell_val = match val {
            AbsVal::Float(f) => CellVal::Float(f),
            AbsVal::Int(i) => {
                let mut c = Clocked::of_val(i, env.clock);
                if self.clocked {
                    let minus = self.clock_offset(env, e, OffsetMode::Minus);
                    let plus = self.clock_offset(env, e, OffsetMode::Plus);
                    c.minus = c.minus.meet(minus);
                    c.plus = c.plus.meet(plus);
                }
                CellVal::Int(c)
            }
        };
        let mut out = env.clone();
        if r.strong {
            out = out.set(r.cells[0], cell_val);
        } else {
            for c in &r.cells {
                out = out.set_weak(*c, cell_val, self.layout);
            }
        }
        (out, flags)
    }

    /// Bounds on `e − clock` / `e + clock` (the clocked-domain transfer of
    /// Sect. 6.2.1), propagated through single-variable affine chains.
    fn clock_offset(&self, env: &AbsEnv, e: &Expr, mode: OffsetMode) -> IntItv {
        match e {
            Expr::Int(v, _) => {
                let c = IntItv::singleton(*v);
                match mode {
                    OffsetMode::Minus => c.sub(env.clock),
                    OffsetMode::Plus => c.add(env.clock),
                }
            }
            Expr::Load(lv, ScalarType::Int(_)) => {
                let r = self.resolve(env, lv);
                if r.cells.len() == 1 && !r.may_oob {
                    if let CellVal::Int(c) = env.get(r.cells[0], self.layout) {
                        return match mode {
                            OffsetMode::Minus => c.minus,
                            OffsetMode::Plus => c.plus,
                        };
                    }
                }
                self.fallback_offset(env, e, mode)
            }
            Expr::Binop(Binop::Add, ScalarType::Int(_), a, b) => {
                // (a+b)±clock = (a±clock)+b = a+(b±clock)
                let left = self.clock_offset(env, a, mode).add(self.plain_int(env, b));
                let right = self.plain_int(env, a).add(self.clock_offset(env, b, mode));
                left.meet(right)
            }
            Expr::Binop(Binop::Sub, ScalarType::Int(_), a, b) => {
                // (a−b)±clock = (a±clock)−b = a−(b∓clock)
                let left = self.clock_offset(env, a, mode).sub(self.plain_int(env, b));
                let right = self.plain_int(env, a).sub(self.clock_offset(env, b, mode.flip()));
                left.meet(right)
            }
            _ => self.fallback_offset(env, e, mode),
        }
    }

    fn plain_int(&self, env: &AbsEnv, e: &Expr) -> IntItv {
        let (v, _) = self.eval(env, e);
        v.as_int()
    }

    fn fallback_offset(&self, env: &AbsEnv, e: &Expr, mode: OffsetMode) -> IntItv {
        let v = self.plain_int(env, e);
        match mode {
            OffsetMode::Minus => v.sub(env.clock),
            OffsetMode::Plus => v.add(env.clock),
        }
    }

    /// The float interval of a cell (⊤ for int cells — linear forms only
    /// track float cells).
    pub fn float_cell(&self, env: &AbsEnv, c: CellId) -> FloatItv {
        match env.get(c, self.layout) {
            CellVal::Float(f) => f,
            CellVal::Int(i) => {
                if i.val.is_bottom() {
                    FloatItv::BOTTOM
                } else {
                    FloatItv::from_int_range(i.val.lo, i.val.hi, FloatKind::F64)
                }
            }
        }
    }

    // ----- linearization (Sect. 6.3) --------------------------------------

    /// Linearizes a float expression into an interval linear form over
    /// cells, absorbing per-operator rounding errors. Returns `None` for
    /// shapes linearization does not improve.
    pub fn linearize_expr(
        &self,
        env: &AbsEnv,
        e: &Expr,
        kind: FloatKind,
    ) -> Option<LinForm<CellId>> {
        match e {
            Expr::Float(b, k) => {
                Some(LinForm::constant(FloatItv::singleton(k.round_nearest(b.get()))))
            }
            Expr::Load(lv, ScalarType::Float(_)) => {
                let r = self.resolve(env, lv);
                if r.cells.len() == 1 && !r.may_oob {
                    Some(LinForm::var(r.cells[0]))
                } else {
                    let (v, f) = self.eval(env, e);
                    f.is_empty().then(|| LinForm::constant(v.as_float()))
                }
            }
            Expr::Unop(Unop::Neg, ScalarType::Float(_), a) => {
                Some(self.linearize_expr(env, a, kind)?.neg())
            }
            Expr::Binop(op @ (Binop::Add | Binop::Sub), ScalarType::Float(k), a, b) => {
                let la = self.linearize_expr(env, a, *k)?;
                let lb = self.linearize_expr(env, b, *k)?;
                let combined = if *op == Binop::Add { la.add(&lb) } else { la.sub(&lb) };
                Some(combined.absorb_rounding(*k, |c| self.float_cell(env, *c)))
            }
            Expr::Binop(Binop::Mul, ScalarType::Float(k), a, b) => {
                let la = self.linearize_expr(env, a, *k)?;
                let lb = self.linearize_expr(env, b, *k)?;
                let combined = if la.is_constant() {
                    lb.scale(la.cst())
                } else if lb.is_constant() {
                    la.scale(lb.cst())
                } else {
                    // Evaluate the simpler side into an interval.
                    let vb = lb.eval(|c| self.float_cell(env, *c));
                    la.scale(vb)
                };
                Some(combined.absorb_rounding(*k, |c| self.float_cell(env, *c)))
            }
            Expr::Binop(Binop::Div, ScalarType::Float(k), a, b) => {
                let la = self.linearize_expr(env, a, *k)?;
                let lb = self.linearize_expr(env, b, *k)?;
                let d = lb.eval(|c| self.float_cell(env, *c));
                // Only sign-definite divisors linearize.
                if d.is_bottom() || (d.lo <= 0.0 && d.hi >= 0.0) {
                    return None;
                }
                let inv = FloatItv::new(round::div_down(1.0, d.hi), round::div_up(1.0, d.lo));
                Some(la.scale(inv).absorb_rounding(*k, |c| self.float_cell(env, *c)))
            }
            Expr::Cast(ScalarType::Float(k), a) => match a.ty() {
                ScalarType::Float(_) => {
                    let l = self.linearize_expr(env, a, *k)?;
                    Some(l.absorb_rounding(*k, |c| self.float_cell(env, *c)))
                }
                ScalarType::Int(_) => {
                    let (v, f) = self.eval(env, a);
                    if !f.is_empty() {
                        return None;
                    }
                    let i = v.as_int();
                    if i.is_bottom() {
                        return None;
                    }
                    Some(LinForm::constant(FloatItv::from_int_range(i.lo, i.hi, *k)))
                }
            },
            _ => None,
        }
    }

    // ----- guards ---------------------------------------------------------

    /// `guard♯(env, c)` when `positive`, `guard♯(env, ¬c)` otherwise
    /// (paper Sect. 5.4). Compound conditions decompose structurally.
    pub fn guard(&self, env: &AbsEnv, cond: &Expr, positive: bool) -> AbsEnv {
        if env.is_bottom() {
            return env.clone();
        }
        if !positive {
            return self.guard(env, &cond.negate_condition(), true);
        }
        match cond {
            Expr::Binop(Binop::LAnd, _, a, b) => {
                let e1 = self.guard(env, a, true);
                self.guard(&e1, b, true)
            }
            Expr::Binop(Binop::LOr, _, a, b) => {
                self.guard(env, a, true).join(&self.guard(env, b, true))
            }
            Expr::Unop(Unop::LNot, _, a) => {
                if is_structural_condition(a) {
                    // Compound: negation pushes through De Morgan.
                    self.guard(env, &a.negate_condition(), true)
                } else {
                    // Atomic: `!a` means `a == 0`.
                    let (v, _) = self.eval(env, a);
                    let (can_zero, _) = v.truthiness();
                    if !can_zero {
                        return AbsEnv::bottom();
                    }
                    let zero = match v {
                        AbsVal::Int(_) => AbsVal::Int(IntItv::singleton(0)),
                        AbsVal::Float(_) => AbsVal::Float(FloatItv::singleton(0.0)),
                    };
                    self.refine(env, a, zero)
                }
            }
            Expr::Binop(op, t, a, b) if op.is_comparison() => self.atomic_guard(env, *op, *t, a, b),
            // A cast to _Bool preserves truthiness exactly (C 6.3.1.2).
            Expr::Cast(ScalarType::Int(it), inner) if it.is_bool() => self.guard(env, inner, true),
            Expr::Int(v, _) => {
                if *v == 0 {
                    AbsEnv::bottom()
                } else {
                    env.clone()
                }
            }
            e => {
                // Truthiness guard: e ≠ 0.
                let (v, _) = self.eval(env, e);
                let (_, can_true) = v.truthiness();
                if !can_true {
                    return AbsEnv::bottom();
                }
                if let AbsVal::Int(i) = v {
                    let nz = exclude_zero(i);
                    return self.refine(env, e, AbsVal::Int(nz));
                }
                env.clone()
            }
        }
    }

    fn atomic_guard(&self, env: &AbsEnv, op: Binop, t: ScalarType, a: &Expr, b: &Expr) -> AbsEnv {
        let (av, _) = self.eval(env, a);
        let (bv, _) = self.eval(env, b);
        if av.is_bottom() || bv.is_bottom() {
            return AbsEnv::bottom();
        }
        let verdict = self.compare(op, av, bv);
        if verdict == IntItv::singleton(0) {
            return AbsEnv::bottom();
        }
        match t {
            ScalarType::Int(_) => {
                let (x, y) = (av.as_int(), bv.as_int());
                let (rx, ry) = refine_int_cmp(op, x, y);
                let env = self.refine(env, a, AbsVal::Int(rx));
                self.refine(&env, b, AbsVal::Int(ry))
            }
            ScalarType::Float(_) => {
                let (x, y) = (av.as_float(), bv.as_float());
                let (rx, ry) = refine_float_cmp(op, x, y);
                let env = self.refine(env, a, AbsVal::Float(rx));
                self.refine(&env, b, AbsVal::Float(ry))
            }
        }
    }

    /// Back-propagates a refined value onto the expression's source cells
    /// (through loads, negation and ±constant chains).
    fn refine(&self, env: &AbsEnv, e: &Expr, refined: AbsVal) -> AbsEnv {
        if env.is_bottom() {
            return env.clone();
        }
        match e {
            Expr::Load(lv, ty) => {
                let r = self.resolve(env, lv);
                if r.cells.len() != 1 || !r.strong {
                    return env.clone();
                }
                let cell = r.cells[0];
                let old = env.get(cell, self.layout);
                let new = match (old, refined, ty) {
                    (CellVal::Int(c), AbsVal::Int(ri), ScalarType::Int(_)) => {
                        let mut m = c;
                        m.val = m.val.meet(ri);
                        CellVal::Int(if self.clocked { m.reduce(env.clock) } else { m })
                    }
                    (CellVal::Float(f), AbsVal::Float(rf), ScalarType::Float(_)) => {
                        CellVal::Float(f.meet(rf))
                    }
                    (old, _, _) => old,
                };
                if new.is_bottom() {
                    return AbsEnv::bottom();
                }
                env.set(cell, new)
            }
            Expr::Unop(Unop::Neg, _, inner) => {
                let flipped = match refined {
                    AbsVal::Int(i) => AbsVal::Int(i.neg()),
                    AbsVal::Float(f) => AbsVal::Float(f.neg()),
                };
                self.refine(env, inner, flipped)
            }
            Expr::Binop(Binop::Add, ScalarType::Int(_), x, c) => {
                match (self.const_int(c), self.const_int(x)) {
                    (Some(k), _) => {
                        let r = refined.as_int().sub(IntItv::singleton(k));
                        self.refine(env, x, AbsVal::Int(r))
                    }
                    (None, Some(k)) => {
                        let r = refined.as_int().sub(IntItv::singleton(k));
                        self.refine(env, c, AbsVal::Int(r))
                    }
                    _ => env.clone(),
                }
            }
            Expr::Binop(Binop::Sub, ScalarType::Int(_), x, c) => match self.const_int(c) {
                Some(k) => {
                    let r = refined.as_int().add(IntItv::singleton(k));
                    self.refine(env, x, AbsVal::Int(r))
                }
                None => env.clone(),
            },
            _ => env.clone(),
        }
    }

    fn const_int(&self, e: &Expr) -> Option<i64> {
        match e {
            Expr::Int(v, _) => Some(*v),
            _ => None,
        }
    }

    // ----- other statement transfers ---------------------------------------

    /// Transfer for `ReadVolatile(v)`: the variable takes any value in its
    /// declared input range.
    pub fn read_volatile(&self, env: &AbsEnv, var: VarId) -> AbsEnv {
        if env.is_bottom() {
            return env.clone();
        }
        let range =
            self.program.var(var).volatile_input.expect("ReadVolatile on declared volatile input");
        let cell = self.layout.scalar_cell(var);
        let val = match range {
            InputRange::Int(lo, hi) => {
                CellVal::Int(Clocked::of_val(IntItv::new(lo, hi), env.clock))
            }
            InputRange::Float(lo, hi) => CellVal::Float(FloatItv::new(lo, hi)),
        };
        env.set(cell, val)
    }

    /// Transfer for `wait`: the hidden clock advances, clipped by the
    /// maximal operating time; clocked components shift accordingly.
    pub fn tick(&self, env: &AbsEnv) -> AbsEnv {
        if env.is_bottom() {
            return env.clone();
        }
        let clock = env.clock.add(IntItv::singleton(1)).meet(IntItv::new(0, self.max_clock));
        if clock.is_bottom() {
            // Executions past the maximal operating time do not exist.
            return AbsEnv::bottom();
        }
        let mut out = env.clone();
        if self.clocked {
            // Shift every integer cell's clock-relative components.
            let updates: Vec<(CellId, CellVal)> = env
                .iter()
                .filter_map(|(id, v)| match v {
                    CellVal::Int(c) => Some((*id, CellVal::Int(c.tick()))),
                    CellVal::Float(_) => None,
                })
                .collect();
            for (id, v) in updates {
                out = out.set(id, v);
            }
        }
        out.clock = clock;
        out
    }

    /// Transfer for `assume(c)`: like a guard, plus bottom when the
    /// assumption cannot hold.
    pub fn assume(&self, env: &AbsEnv, cond: &Expr) -> AbsEnv {
        self.guard(env, cond, true)
    }
}

/// `true` for conditions whose negation restructures (De Morgan /
/// comparison flip) rather than wrapping in `!`.
fn is_structural_condition(e: &Expr) -> bool {
    match e {
        Expr::Unop(Unop::LNot, _, _) | Expr::Int(..) => true,
        Expr::Binop(op, _, _, _) => op.is_comparison() || op.is_logical(),
        Expr::Cast(ScalarType::Int(it), inner) => it.is_bool() && is_structural_condition(inner),
        _ => false,
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum OffsetMode {
    Minus,
    Plus,
}

impl OffsetMode {
    fn flip(self) -> OffsetMode {
        match self {
            OffsetMode::Minus => OffsetMode::Plus,
            OffsetMode::Plus => OffsetMode::Minus,
        }
    }
}

/// Clips an exact integer result to the operation type's range, flagging the
/// overflow when clipping removed values ("overflowing integers are wiped
/// out", paper Sect. 5.3).
fn clip_int(raw: IntItv, it: IntType) -> (AbsVal, ErrFlags) {
    let range = IntItv::of_type(it);
    if raw.leq(range) {
        (AbsVal::Int(raw), ErrFlags::NONE)
    } else {
        (AbsVal::Int(raw.meet(range)), ErrFlags::INT_OVERFLOW)
    }
}

fn bottom_of(ty: ScalarType) -> AbsVal {
    match ty {
        ScalarType::Int(_) => AbsVal::Int(IntItv::BOTTOM),
        ScalarType::Float(_) => AbsVal::Float(FloatItv::BOTTOM),
    }
}

/// `[0,0]`, `[1,1]` or `[0,1]` from (can be false, can be true).
fn bool_range(can_false: bool, can_true: bool) -> IntItv {
    match (can_false, can_true) {
        (true, true) => IntItv::new(0, 1),
        (true, false) => IntItv::singleton(0),
        (false, true) => IntItv::singleton(1),
        (false, false) => IntItv::BOTTOM,
    }
}

/// Removes 0 from an interval when it sits on a boundary.
fn exclude_zero(i: IntItv) -> IntItv {
    if i.lo == 0 {
        IntItv::new(1, i.hi)
    } else if i.hi == 0 {
        IntItv::new(i.lo, -1)
    } else {
        i
    }
}

/// Refined operand intervals after assuming `x op y` over the integers.
fn refine_int_cmp(op: Binop, x: IntItv, y: IntItv) -> (IntItv, IntItv) {
    let top = IntItv::TOP;
    match op {
        Binop::Lt => (
            x.meet(IntItv::new(top.lo, y.hi.saturating_sub(1))),
            y.meet(IntItv::new(x.lo.saturating_add(1), top.hi)),
        ),
        Binop::Le => (x.meet(IntItv::new(top.lo, y.hi)), y.meet(IntItv::new(x.lo, top.hi))),
        Binop::Gt => (
            x.meet(IntItv::new(y.lo.saturating_add(1), top.hi)),
            y.meet(IntItv::new(top.lo, x.hi.saturating_sub(1))),
        ),
        Binop::Ge => (x.meet(IntItv::new(y.lo, top.hi)), y.meet(IntItv::new(top.lo, x.hi))),
        Binop::Eq => {
            let m = x.meet(y);
            (m, m)
        }
        Binop::Ne => {
            let rx = if let Some(c) = y.as_singleton() { exclude_const(x, c) } else { x };
            let ry = if let Some(c) = x.as_singleton() { exclude_const(y, c) } else { y };
            (rx, ry)
        }
        _ => (x, y),
    }
}

fn exclude_const(i: IntItv, c: i64) -> IntItv {
    if i.lo == c && i.hi == c {
        IntItv::BOTTOM
    } else if i.lo == c {
        IntItv::new(c + 1, i.hi)
    } else if i.hi == c {
        IntItv::new(i.lo, c - 1)
    } else {
        i
    }
}

/// Refined operand intervals after assuming `x op y` over floats.
fn refine_float_cmp(op: Binop, x: FloatItv, y: FloatItv) -> (FloatItv, FloatItv) {
    let inf = f64::INFINITY;
    match op {
        Binop::Lt => (
            x.meet(FloatItv::new(-inf, round::next_down(y.hi))),
            y.meet(FloatItv::new(round::next_up(x.lo), inf)),
        ),
        Binop::Le => (x.meet(FloatItv::new(-inf, y.hi)), y.meet(FloatItv::new(x.lo, inf))),
        Binop::Gt => (
            x.meet(FloatItv::new(round::next_up(y.lo), inf)),
            y.meet(FloatItv::new(-inf, round::next_down(x.hi))),
        ),
        Binop::Ge => (x.meet(FloatItv::new(y.lo, inf)), y.meet(FloatItv::new(-inf, x.hi))),
        Binop::Eq => {
            let m = x.meet(y);
            (m, m)
        }
        Binop::Ne => (x, y),
        _ => (x, y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutConfig;
    use astree_ir::{Function, Program, Type, VarInfo, VarKind};

    struct Fix {
        program: Program,
        layout: CellLayout,
    }

    fn fixture() -> Fix {
        let mut p = Program::new();
        p.add_var(VarInfo::scalar("x", ScalarType::Int(IntType::INT), VarKind::Global));
        p.add_var(VarInfo::scalar("y", ScalarType::Int(IntType::INT), VarKind::Global));
        p.add_var(VarInfo::scalar("f", ScalarType::Float(FloatKind::F64), VarKind::Global));
        p.add_var(VarInfo::scalar("g", ScalarType::Float(FloatKind::F64), VarKind::Global));
        p.add_var(VarInfo {
            name: "in".into(),
            ty: Type::int(IntType::INT),
            kind: VarKind::Global,
            volatile_input: Some(InputRange::Int(-10, 10)),
        });
        p.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![],
        });
        let layout = CellLayout::new(&p, &LayoutConfig::default());
        Fix { program: p, layout }
    }

    fn int_t() -> ScalarType {
        ScalarType::Int(IntType::INT)
    }

    fn load(v: u32) -> Expr {
        Expr::var(VarId(v))
    }

    fn loadf(v: u32) -> Expr {
        Expr::var_t(VarId(v), ScalarType::Float(FloatKind::F64))
    }

    #[test]
    fn eval_constants_and_arith() {
        let f = fixture();
        let ev = Evaluator::new(&f.program, &f.layout, 1000);
        let env = AbsEnv::initial(&f.layout);
        let e = Expr::Binop(Binop::Add, int_t(), Box::new(Expr::int(2)), Box::new(Expr::int(3)));
        let (v, flags) = ev.eval(&env, &e);
        assert_eq!(v.as_int(), IntItv::singleton(5));
        assert!(flags.is_empty());
    }

    #[test]
    fn overflow_is_flagged_and_clipped() {
        let f = fixture();
        let ev = Evaluator::new(&f.program, &f.layout, 1000);
        let env = AbsEnv::initial(&f.layout);
        let e = Expr::Binop(
            Binop::Add,
            int_t(),
            Box::new(Expr::int(i32::MAX as i64)),
            Box::new(Expr::int(1)),
        );
        let (v, flags) = ev.eval(&env, &e);
        assert!(flags.contains(ErrFlags::INT_OVERFLOW));
        // Both bounds overflow: no non-erroneous result.
        assert!(v.as_int().is_bottom());
        // Partial overflow keeps the sound part.
        let (env2, _) = ev.assign(&env, &Lvalue::var(VarId(0)), &Expr::int(i32::MAX as i64 - 5));
        let e = Expr::Binop(
            Binop::Add,
            int_t(),
            Box::new(load(0)),
            Box::new(Expr::Int(0, IntType::INT)),
        );
        let (v, _) = ev.eval(&env2, &e);
        assert_eq!(v.as_int(), IntItv::singleton(i32::MAX as i64 - 5));
    }

    #[test]
    fn division_by_possibly_zero_flags() {
        let f = fixture();
        let ev = Evaluator::new(&f.program, &f.layout, 1000);
        let env = AbsEnv::initial(&f.layout);
        // x = 0 initially; 1 / x must flag division by zero and go bottom.
        let e = Expr::Binop(Binop::Div, int_t(), Box::new(Expr::int(1)), Box::new(load(0)));
        let (v, flags) = ev.eval(&env, &e);
        assert!(flags.contains(ErrFlags::DIV_BY_ZERO));
        assert!(v.as_int().is_bottom());
    }

    #[test]
    fn assignment_strong_update() {
        let f = fixture();
        let ev = Evaluator::new(&f.program, &f.layout, 1000);
        let env = AbsEnv::initial(&f.layout);
        let (env, flags) = ev.assign(&env, &Lvalue::var(VarId(0)), &Expr::int(42));
        assert!(flags.is_empty());
        let (v, _) = ev.eval(&env, &load(0));
        assert_eq!(v.as_int(), IntItv::singleton(42));
    }

    #[test]
    fn guard_refines_both_sides() {
        let f = fixture();
        let ev = Evaluator::new(&f.program, &f.layout, 1000);
        let env = AbsEnv::initial(&f.layout);
        let (env, _) = ev.assign(&env, &Lvalue::var(VarId(4)), &load(4)); // x := volatile? no-op
        let env = ev.read_volatile(&env, VarId(4));
        let (env, _) = ev.assign(&env, &Lvalue::var(VarId(0)), &load(4)); // x ∈ [-10, 10]
                                                                          // Guard x > 3.
        let cond = Expr::Binop(Binop::Gt, int_t(), Box::new(load(0)), Box::new(Expr::int(3)));
        let refined = ev.guard(&env, &cond, true);
        let (v, _) = ev.eval(&refined, &load(0));
        assert_eq!(v.as_int(), IntItv::new(4, 10));
        // Negative guard.
        let refined = ev.guard(&env, &cond, false);
        let (v, _) = ev.eval(&refined, &load(0));
        assert_eq!(v.as_int(), IntItv::new(-10, 3));
    }

    #[test]
    fn guard_definitely_false_is_bottom() {
        let f = fixture();
        let ev = Evaluator::new(&f.program, &f.layout, 1000);
        let env = AbsEnv::initial(&f.layout);
        // x = 0: guard (x > 5) is bottom.
        let cond = Expr::Binop(Binop::Gt, int_t(), Box::new(load(0)), Box::new(Expr::int(5)));
        assert!(ev.guard(&env, &cond, true).is_bottom());
        assert!(!ev.guard(&env, &cond, false).is_bottom());
    }

    #[test]
    fn compound_guards_decompose() {
        let f = fixture();
        let ev = Evaluator::new(&f.program, &f.layout, 1000);
        let env = ev.read_volatile(&AbsEnv::initial(&f.layout), VarId(4));
        let (env, _) = ev.assign(&env, &Lvalue::var(VarId(0)), &load(4));
        // x >= -2 && x <= 2
        let c1 = Expr::Binop(Binop::Ge, int_t(), Box::new(load(0)), Box::new(Expr::int(-2)));
        let c2 = Expr::Binop(Binop::Le, int_t(), Box::new(load(0)), Box::new(Expr::int(2)));
        let cond = Expr::Binop(Binop::LAnd, int_t(), Box::new(c1), Box::new(c2));
        let g = ev.guard(&env, &cond, true);
        let (v, _) = ev.eval(&g, &load(0));
        assert_eq!(v.as_int(), IntItv::new(-2, 2));
        // Negation: x < -2 || x > 2 — interval join loses the hole but keeps
        // the range.
        let g = ev.guard(&env, &cond, false);
        let (v, _) = ev.eval(&g, &load(0));
        assert_eq!(v.as_int(), IntItv::new(-10, 10));
    }

    #[test]
    fn linearization_beats_naive_interval() {
        // f := f − 0.2·f with f ∈ [0, 1]: naive interval gives [−0.2, 1],
        // the linear form gives ≈[0, 0.8].
        let f = fixture();
        let ev = Evaluator::new(&f.program, &f.layout, 1000);
        let env = AbsEnv::initial(&f.layout);
        let fcell = f.layout.scalar_cell(VarId(2));
        let env = env.set(fcell, CellVal::Float(FloatItv::new(0.0, 1.0)));
        let tf = ScalarType::Float(FloatKind::F64);
        let rhs = Expr::Binop(
            Binop::Sub,
            tf,
            Box::new(loadf(2)),
            Box::new(Expr::Binop(Binop::Mul, tf, Box::new(Expr::float(0.2)), Box::new(loadf(2)))),
        );
        let (env2, flags) = ev.assign(&env, &Lvalue::var(VarId(2)), &rhs);
        assert!(flags.is_empty());
        let (v, _) = ev.eval(&env2, &loadf(2));
        let v = v.as_float();
        assert!(v.lo >= -1e-9, "lo {}", v.lo);
        assert!(v.hi <= 0.8 + 1e-9, "hi {}", v.hi);
        // Without linearization the result is the naive one.
        let mut ev2 = Evaluator::new(&f.program, &f.layout, 1000);
        ev2.linearize = false;
        let (env3, _) = ev2.assign(&env, &Lvalue::var(VarId(2)), &rhs);
        let (v, _) = ev2.eval(&env3, &loadf(2));
        assert!(v.as_float().lo <= -0.19);
    }

    #[test]
    fn volatile_read_sets_range() {
        let f = fixture();
        let ev = Evaluator::new(&f.program, &f.layout, 1000);
        let env = ev.read_volatile(&AbsEnv::initial(&f.layout), VarId(4));
        let (v, _) = ev.eval(&env, &load(4));
        assert_eq!(v.as_int(), IntItv::new(-10, 10));
    }

    #[test]
    fn clock_tick_and_counter_reduction() {
        let f = fixture();
        let ev = Evaluator::new(&f.program, &f.layout, 100);
        let mut env = AbsEnv::initial(&f.layout);
        // x := x + 1; wait — iterated; even without widening-threshold help,
        // the clocked component keeps x ≤ clock.
        let inc = Expr::Binop(Binop::Add, int_t(), Box::new(load(0)), Box::new(Expr::int(1)));
        for _ in 0..3 {
            let (e2, _) = ev.assign(&env, &Lvalue::var(VarId(0)), &inc);
            env = ev.tick(&e2);
        }
        let (v, _) = ev.eval(&env, &load(0));
        assert_eq!(v.as_int(), IntItv::singleton(3));
        assert_eq!(env.clock, IntItv::singleton(3));
        // Force the interval to top and check the clocked reduction.
        let cell = f.layout.scalar_cell(VarId(0));
        if let CellVal::Int(mut c) = env.get(cell, &f.layout) {
            c.val = IntItv::TOP;
            let env2 = env.set(cell, CellVal::Int(c));
            let (v, _) = ev.eval(&env2, &load(0));
            // x − clock = 0 held, clock = 3 → x = 3 recovered.
            assert_eq!(v.as_int(), IntItv::singleton(3));
        } else {
            panic!("int cell expected");
        }
    }

    #[test]
    fn tick_past_max_clock_is_bottom() {
        let f = fixture();
        let ev = Evaluator::new(&f.program, &f.layout, 2);
        let env = AbsEnv::initial(&f.layout);
        let env = ev.tick(&env);
        let env = ev.tick(&env);
        assert!(!env.is_bottom());
        let env = ev.tick(&env);
        assert!(env.is_bottom());
    }

    #[test]
    fn comparisons_prove_and_disprove() {
        let f = fixture();
        let ev = Evaluator::new(&f.program, &f.layout, 1000);
        let env = AbsEnv::initial(&f.layout);
        let lt = Expr::Binop(Binop::Lt, int_t(), Box::new(Expr::int(1)), Box::new(Expr::int(2)));
        let (v, _) = ev.eval(&env, &lt);
        assert_eq!(v.as_int(), IntItv::singleton(1));
        let gt = Expr::Binop(Binop::Gt, int_t(), Box::new(Expr::int(1)), Box::new(Expr::int(2)));
        let (v, _) = ev.eval(&env, &gt);
        assert_eq!(v.as_int(), IntItv::singleton(0));
    }

    #[test]
    fn float_guard_strictness() {
        let f = fixture();
        let ev = Evaluator::new(&f.program, &f.layout, 1000);
        let env = AbsEnv::initial(&f.layout);
        let fcell = f.layout.scalar_cell(VarId(2));
        let env = env.set(fcell, CellVal::Float(FloatItv::new(0.0, 10.0)));
        let tf = ScalarType::Float(FloatKind::F64);
        let cond = Expr::Binop(Binop::Lt, tf, Box::new(loadf(2)), Box::new(Expr::float(5.0)));
        let g = ev.guard(&env, &cond, true);
        let (v, _) = ev.eval(&g, &loadf(2));
        assert!(v.as_float().hi < 5.0);
        assert!(v.as_float().hi > 4.999);
    }
}
