//! The memory abstract domain (paper Sect. 6.1).
//!
//! Abstract environments map *abstract cells* to arithmetic abstract values.
//! C data structures are translated to cells (Sect. 6.1.1): atomic cells for
//! scalars, one cell per element for *expanded* arrays, a single cell for
//! *shrunk* arrays (large tables where only the stored range matters), and
//! one cell per field for records. Environments are persistent maps with
//! structural sharing (Sect. 6.1.2 — implemented by [`astree_pmap`]), so
//! abstract union after a test costs time proportional to the number of
//! cells the branches actually touched.
//!
//! The crate also implements the abstract transfer functions driven by the
//! iterator: expression evaluation with run-time-error flags, assignments
//! (strong or weak updates depending on index precision), condition guards,
//! volatile input refreshes, the clock tick, and the linearization hook of
//! Sect. 6.3 that refines interval evaluation through interval linear forms.

pub mod env;
pub mod eval;
pub mod layout;

pub use env::{AbsEnv, CellVal};
pub use eval::{AbsVal, Evaluator};
pub use layout::{CellId, CellInfo, CellLayout, LayoutConfig, Resolved};
