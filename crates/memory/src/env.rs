//! Abstract environments: persistent maps from cells to abstract values.

use crate::layout::{CellId, CellLayout};
use astree_domains::{Clocked, FloatItv, IntItv, Thresholds};
use astree_ir::{FloatKind, ScalarType};
use astree_pmap::{MergeOutcome, PMap};
use std::fmt;

/// The abstract value of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellVal {
    /// Integer cell: interval plus clocked bounds (paper Sect. 6.2.1).
    Int(Clocked),
    /// Float cell: interval with outward rounding.
    Float(FloatItv),
}

impl CellVal {
    /// ⊤ for a scalar type.
    pub fn top_of(ty: ScalarType) -> CellVal {
        match ty {
            ScalarType::Int(_) => CellVal::Int(Clocked::TOP),
            ScalarType::Float(k) => CellVal::Float(FloatItv::top_of(k)),
        }
    }

    /// The zero value of a scalar type (C static initialization), given the
    /// current clock interval.
    pub fn zero_of(ty: ScalarType, clock: IntItv) -> CellVal {
        match ty {
            ScalarType::Int(_) => CellVal::Int(Clocked::of_val(IntItv::singleton(0), clock)),
            ScalarType::Float(_) => CellVal::Float(FloatItv::singleton(0.0)),
        }
    }

    /// `true` when the value denotes no concrete value.
    pub fn is_bottom(&self) -> bool {
        match self {
            CellVal::Int(c) => c.is_bottom(),
            CellVal::Float(f) => f.is_bottom(),
        }
    }

    /// Pointwise join.
    #[must_use]
    pub fn join(&self, other: &CellVal) -> CellVal {
        match (self, other) {
            (CellVal::Int(a), CellVal::Int(b)) => CellVal::Int(a.join(*b)),
            (CellVal::Float(a), CellVal::Float(b)) => CellVal::Float(a.join(*b)),
            _ => panic!("cell kind mismatch in join"),
        }
    }

    /// Pointwise meet.
    #[must_use]
    pub fn meet(&self, other: &CellVal) -> CellVal {
        match (self, other) {
            (CellVal::Int(a), CellVal::Int(b)) => CellVal::Int(a.meet(*b)),
            (CellVal::Float(a), CellVal::Float(b)) => CellVal::Float(a.meet(*b)),
            _ => panic!("cell kind mismatch in meet"),
        }
    }

    /// Pointwise widening.
    #[must_use]
    pub fn widen(&self, other: &CellVal, t: &Thresholds) -> CellVal {
        match (self, other) {
            (CellVal::Int(a), CellVal::Int(b)) => CellVal::Int(a.widen(*b, t)),
            (CellVal::Float(a), CellVal::Float(b)) => CellVal::Float(a.widen(*b, t)),
            _ => panic!("cell kind mismatch in widen"),
        }
    }

    /// Pointwise narrowing.
    #[must_use]
    pub fn narrow(&self, other: &CellVal) -> CellVal {
        match (self, other) {
            (CellVal::Int(a), CellVal::Int(b)) => CellVal::Int(a.narrow(*b)),
            (CellVal::Float(a), CellVal::Float(b)) => CellVal::Float(a.narrow(*b)),
            _ => panic!("cell kind mismatch in narrow"),
        }
    }

    /// Pointwise inclusion.
    pub fn leq(&self, other: &CellVal) -> bool {
        match (self, other) {
            (CellVal::Int(a), CellVal::Int(b)) => a.leq(*b),
            (CellVal::Float(a), CellVal::Float(b)) => a.leq(*b),
            _ => panic!("cell kind mismatch in leq"),
        }
    }

    /// Bitwise identity — the `same` check the sharing-preserving map
    /// operations use to decide "this merge changed nothing, keep the
    /// original subtree".
    ///
    /// Deliberately *bitwise*, not `PartialEq`: float bounds are compared
    /// via [`f64::to_bits`], which distinguishes `-0.0` from `0.0` and is
    /// reflexive on NaN, so substituting the old value for the "equal" new
    /// one can never alter a downstream bit pattern (`PartialEq` would let
    /// `-0.0` masquerade as `0.0` and corrupt bit-identical replay).
    /// Integer bounds are exact, so plain equality is already bitwise.
    pub fn same(&self, other: &CellVal) -> bool {
        match (self, other) {
            (CellVal::Int(a), CellVal::Int(b)) => a == b,
            (CellVal::Float(a), CellVal::Float(b)) => {
                a.lo.to_bits() == b.lo.to_bits() && a.hi.to_bits() == b.hi.to_bits()
            }
            _ => false,
        }
    }

    /// Classifies a combined value against its two operands for the
    /// identity-preserving merge: keep left if bitwise-unchanged, else keep
    /// right, else bind the fresh value.
    fn outcome(self, a: &CellVal, b: &CellVal) -> MergeOutcome<CellVal> {
        if self.same(a) {
            MergeOutcome::Left
        } else if self.same(b) {
            MergeOutcome::Right
        } else {
            MergeOutcome::New(self)
        }
    }

    /// Wraps a binary lattice operation into an identity-classifying
    /// combiner. Bitwise-equal operands short-circuit to `Left` *before*
    /// `op` runs — this is what keeps the sharing and no-sharing modes
    /// bit-identical (a physically shared subtree skips the combiner
    /// entirely, so the non-shared path must produce the left operand for
    /// bitwise-equal inputs no matter what `op` would compute).
    fn merged(
        a: &CellVal,
        b: &CellVal,
        op: impl FnOnce(&CellVal, &CellVal) -> CellVal,
    ) -> MergeOutcome<CellVal> {
        if a.same(b) {
            MergeOutcome::Left
        } else {
            op(a, b).outcome(a, b)
        }
    }
}

/// An abstract environment: cell values plus the hidden clock interval.
///
/// The environment is persistent: `clone` is O(1) and binary operations
/// exploit structural sharing, so analyzing a test costs time proportional
/// to the cells the branches modified (paper Sect. 6.1.2).
#[derive(Debug, Clone)]
pub struct AbsEnv {
    cells: PMap<CellId, CellVal>,
    /// Bounds on the hidden clock variable.
    pub clock: IntItv,
    bottom: bool,
}

impl AbsEnv {
    /// The unreachable environment ⊥.
    pub fn bottom() -> AbsEnv {
        AbsEnv { cells: PMap::new(), clock: IntItv::BOTTOM, bottom: true }
    }

    /// The initial environment: every cell zero-initialized (C statics;
    /// locals are zeroed by the frontend model), clock at 0.
    pub fn initial(layout: &CellLayout) -> AbsEnv {
        let clock = IntItv::singleton(0);
        let cells =
            layout.iter().map(|(id, info)| (id, CellVal::zero_of(info.ty, clock))).collect();
        AbsEnv { cells, clock, bottom: false }
    }

    /// An environment with every cell ⊤ (used for entry points with unknown
    /// initial state).
    pub fn top(layout: &CellLayout) -> AbsEnv {
        let cells = layout.iter().map(|(id, info)| (id, CellVal::top_of(info.ty))).collect();
        AbsEnv { cells, clock: IntItv::new(0, i64::MAX), bottom: false }
    }

    /// `true` for the unreachable environment.
    pub fn is_bottom(&self) -> bool {
        self.bottom
    }

    /// Marks the environment unreachable.
    pub fn set_bottom(&mut self) {
        self.bottom = true;
    }

    /// Reads a cell (⊤ of the right kind when untracked).
    pub fn get(&self, id: CellId, layout: &CellLayout) -> CellVal {
        self.cells.get(&id).copied().unwrap_or_else(|| CellVal::top_of(layout.info(id).ty))
    }

    /// Strong update. Writing a value bitwise-identical to the current one
    /// returns the same cell tree (no path copy), so a statement that
    /// rewrites a cell to its old value keeps the environment `ptr_eq` to
    /// its input.
    #[must_use]
    pub fn set(&self, id: CellId, val: CellVal) -> AbsEnv {
        if self.bottom {
            return self.clone();
        }
        if val.is_bottom() {
            return AbsEnv::bottom();
        }
        AbsEnv {
            cells: self.cells.insert_if_changed(id, val, CellVal::same),
            clock: self.clock,
            bottom: false,
        }
    }

    /// Weak update: the cell may or may not have been written.
    #[must_use]
    pub fn set_weak(&self, id: CellId, val: CellVal, layout: &CellLayout) -> AbsEnv {
        if self.bottom {
            return self.clone();
        }
        let old = self.get(id, layout);
        self.set(id, old.join(&val))
    }

    /// Number of tracked cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when no cell is tracked.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over tracked cells.
    pub fn iter(&self) -> impl Iterator<Item = (&CellId, &CellVal)> {
        self.cells.iter()
    }

    /// `true` when the two environments are the same physical cell tree
    /// (and agree on clock/reachability) — constant time, `true` implies
    /// semantic equality.
    pub fn ptr_eq(&self, other: &AbsEnv) -> bool {
        self.bottom == other.bottom && self.clock == other.clock && self.cells.ptr_eq(&other.cells)
    }

    /// Abstract union `⊔` (cell-wise, sharing-aware).
    ///
    /// Identity-preserving: joining in an environment that adds no
    /// information returns a result whose cell tree is `ptr_eq` to `self`'s
    /// (the merge classifies each combined value bitwise via
    /// [`CellVal::same`] and keeps original subtrees), so a stabilized loop
    /// iterate stays physically equal to its predecessor.
    #[must_use]
    pub fn join(&self, other: &AbsEnv) -> AbsEnv {
        if self.bottom {
            return other.clone();
        }
        if other.bottom {
            return self.clone();
        }
        AbsEnv {
            cells: self
                .cells
                .union_outcome(&other.cells, |_, a, b| CellVal::merged(a, b, |a, b| a.join(b))),
            clock: self.clock.join(other.clock),
            bottom: false,
        }
    }

    /// Widening (cell-wise with thresholds, identity-preserving like
    /// [`AbsEnv::join`]).
    #[must_use]
    pub fn widen(&self, other: &AbsEnv, t: &Thresholds) -> AbsEnv {
        if self.bottom {
            return other.clone();
        }
        if other.bottom {
            return self.clone();
        }
        AbsEnv {
            cells: self
                .cells
                .union_outcome(&other.cells, |_, a, b| CellVal::merged(a, b, |a, b| a.widen(b, t))),
            clock: self.clock.widen(other.clock, t),
            bottom: false,
        }
    }

    /// Narrowing (cell-wise, identity-preserving like [`AbsEnv::join`]).
    #[must_use]
    pub fn narrow(&self, other: &AbsEnv) -> AbsEnv {
        if self.bottom || other.bottom {
            return AbsEnv::bottom();
        }
        AbsEnv {
            cells: self
                .cells
                .union_outcome(&other.cells, |_, a, b| CellVal::merged(a, b, |a, b| a.narrow(b))),
            clock: self.clock.narrow(other.clock),
            bottom: false,
        }
    }

    /// Inclusion test `⊑` (with the physical-equality shortcut at every
    /// level of the cell-tree walk).
    ///
    /// Untracked cells read as ⊤ (see [`AbsEnv::get`]), which settles the
    /// one-sided cases: a cell tracked only on the left is included in the
    /// right's implicit ⊤, so it answers `true`; a cell tracked only on the
    /// right requires the right-hand value to cover the left's implicit ⊤,
    /// which without the layout at hand we approximate soundly by testing
    /// against the widest ⊤ of the value's kind (conservatively `false` for
    /// narrower float kinds). In practice every non-⊥ environment tracks
    /// the full fixed cell layout, so neither closure fires.
    pub fn leq(&self, other: &AbsEnv) -> bool {
        if self.bottom {
            return true;
        }
        if other.bottom {
            return false;
        }
        self.clock.leq(other.clock)
            && self.cells.all2(
                &other.cells,
                |_, _| true,
                |_, w| match w {
                    CellVal::Int(c) => Clocked::TOP.leq(*c),
                    CellVal::Float(x) => FloatItv::top_of(FloatKind::F64).leq(*x),
                },
                |_, a, b| a.leq(b),
            )
    }

    /// Three-way overlay: applies onto `self` every cell whose value in
    /// `post` differs from its value in `pre`.
    ///
    /// Used by the parallel executor's deterministic merge: each slice runs
    /// from the same `pre` state and its changes (`post` vs `pre`) are
    /// overlaid in slice order. Cells with equal values are skipped even
    /// when the underlying tree nodes differ (path copies from neighbouring
    /// inserts), so an untouched cell never clobbers an earlier slice's
    /// write; cells a slice *must* write but may have rewritten to their
    /// pre value are forced separately via [`AbsEnv::set`].
    pub fn overlay_changed(&mut self, pre: &AbsEnv, post: &AbsEnv) {
        debug_assert!(!self.bottom && !pre.bottom && !post.bottom);
        let mut cells = self.cells.clone();
        post.cells.diff2(&pre.cells, |k, post_v, pre_v| {
            if let Some(v) = post_v {
                // Bitwise comparison, not `PartialEq`: a slice that flips
                // only a zero sign (+0.0 → -0.0) still shadows earlier
                // slices, exactly as the sequential execution would.
                let unchanged = matches!(pre_v, Some(p) if p.same(v));
                if !unchanged {
                    cells = cells.insert(*k, *v);
                }
            }
        });
        self.cells = cells;
        self.clock = post.clock;
    }

    /// Counts cells whose value differs from `other` (diagnostics, packing
    /// usefulness reports).
    pub fn count_diff(&self, other: &AbsEnv) -> usize {
        self.cells.fold2(&other.cells, 0, |n, _, a, b| n + usize::from(a != b))
    }

    /// Collects the cells whose value differs from `other`, skipping shared
    /// subtrees wholesale — the changed-cell set the iterator feeds into
    /// localized pack reduction. Cost is proportional to the diff, not the
    /// environment size.
    pub fn changed_cells(&self, other: &AbsEnv, out: &mut Vec<CellId>) {
        self.cells.diff2(&other.cells, |k, a, b| {
            // Bitwise: a zero-sign flip is a change (its bounds feed the
            // total-order pack reductions, which distinguish -0.0 from 0.0).
            let differ = match (a, b) {
                (Some(a), Some(b)) => !a.same(b),
                (None, None) => false,
                _ => true,
            };
            if differ {
                out.push(*k);
            }
        });
    }
}

impl fmt::Display for AbsEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bottom {
            return write!(f, "⊥");
        }
        writeln!(f, "clock = {}", self.clock)?;
        for (id, v) in self.cells.iter() {
            match v {
                CellVal::Int(c) => writeln!(f, "  cell{} = {}", id.0, c.val)?,
                CellVal::Float(x) => writeln!(f, "  cell{} = {}", id.0, x)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutConfig;
    use astree_ir::{Function, IntType, Program, Type, VarInfo, VarKind};

    fn small_layout() -> (Program, CellLayout) {
        let mut p = Program::new();
        p.add_var(VarInfo::scalar("x", ScalarType::Int(IntType::INT), VarKind::Global));
        p.add_var(VarInfo::scalar(
            "f",
            ScalarType::Float(astree_ir::FloatKind::F64),
            VarKind::Global,
        ));
        p.add_var(VarInfo {
            name: "a".into(),
            ty: Type::Array(Box::new(Type::int(IntType::INT)), 3),
            kind: VarKind::Global,
            volatile_input: None,
        });
        p.add_func(Function {
            name: "main".into(),
            params: vec![],
            ret: None,
            locals: vec![],
            body: vec![],
        });
        let l = CellLayout::new(&p, &LayoutConfig::default());
        (p, l)
    }

    #[test]
    fn initial_env_is_zero() {
        let (_, l) = small_layout();
        let env = AbsEnv::initial(&l);
        assert_eq!(env.len(), 5);
        match env.get(CellId(0), &l) {
            CellVal::Int(c) => assert_eq!(c.val, IntItv::singleton(0)),
            other => panic!("{other:?}"),
        }
        match env.get(CellId(1), &l) {
            CellVal::Float(f) => assert_eq!(f, FloatItv::singleton(0.0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn strong_and_weak_updates() {
        let (_, l) = small_layout();
        let env = AbsEnv::initial(&l);
        let v = CellVal::Int(Clocked::of_val(IntItv::new(5, 7), env.clock));
        let strong = env.set(CellId(0), v);
        match strong.get(CellId(0), &l) {
            CellVal::Int(c) => assert_eq!(c.val, IntItv::new(5, 7)),
            other => panic!("{other:?}"),
        }
        let weak = env.set_weak(CellId(0), v, &l);
        match weak.get(CellId(0), &l) {
            CellVal::Int(c) => assert_eq!(c.val, IntItv::new(0, 7)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_and_leq() {
        let (_, l) = small_layout();
        let base = AbsEnv::initial(&l);
        let a =
            base.set(CellId(0), CellVal::Int(Clocked::of_val(IntItv::singleton(1), base.clock)));
        let b =
            base.set(CellId(0), CellVal::Int(Clocked::of_val(IntItv::singleton(3), base.clock)));
        let j = a.join(&b);
        assert!(a.leq(&j) && b.leq(&j));
        match j.get(CellId(0), &l) {
            CellVal::Int(c) => assert_eq!(c.val, IntItv::new(1, 3)),
            other => panic!("{other:?}"),
        }
        assert!(!j.leq(&a));
    }

    #[test]
    fn bottom_absorbs() {
        let (_, l) = small_layout();
        let env = AbsEnv::initial(&l);
        let bot = AbsEnv::bottom();
        assert!(bot.is_bottom());
        assert!(bot.leq(&env));
        assert!(!env.leq(&bot));
        let j = bot.join(&env);
        assert!(!j.is_bottom());
        assert_eq!(j.len(), env.len());
    }

    #[test]
    fn setting_bottom_value_bottoms_env() {
        let (_, l) = small_layout();
        let env = AbsEnv::initial(&l);
        let out = env.set(CellId(0), CellVal::Int(Clocked::BOTTOM));
        assert!(out.is_bottom());
        let _ = l;
    }

    #[test]
    fn overlay_applies_only_changed_cells() {
        let (_, l) = small_layout();
        let pre = AbsEnv::initial(&l);
        let iv = |n: i64, clock| CellVal::Int(Clocked::of_val(IntItv::singleton(n), clock));
        // Slice A changed cell 0; slice B changed cell 3 (and its tree path
        // copies may make cell 0 "visible" in the diff with an equal value).
        let post_a = pre.set(CellId(0), iv(7, pre.clock));
        let post_b = pre.set(CellId(3), iv(9, pre.clock));
        let mut merged = pre.clone();
        merged.overlay_changed(&pre, &post_a);
        merged.overlay_changed(&pre, &post_b);
        match merged.get(CellId(0), &l) {
            CellVal::Int(c) => assert_eq!(c.val, IntItv::singleton(7)),
            other => panic!("{other:?}"),
        }
        match merged.get(CellId(3), &l) {
            CellVal::Int(c) => assert_eq!(c.val, IntItv::singleton(9)),
            other => panic!("{other:?}"),
        }
        // A later slice that did not touch cell 0 must not revert it.
        assert_eq!(merged.count_diff(&pre), 2);
    }

    #[test]
    fn leq_with_strict_superset_of_cells() {
        // Regression: `a` tracks a strict superset of `b`'s cells. The
        // untracked cells read as ⊤ on `b`'s side, so `a ⊑ b` must hold
        // whenever the common cells are included — the left-only closure
        // used to answer `false` against its own comment.
        let (_, l) = small_layout();
        let a = AbsEnv::initial(&l);
        let mut b = a.clone();
        b.cells = b.cells.remove(&CellId(0));
        assert_eq!(b.len() + 1, a.len(), "b must track strictly fewer cells");
        assert!(a.leq(&b), "tracked ⊑ implicit ⊤ on the right");
        // The reverse direction: `b` reads ⊤ at cell 0 while `a` pins it to
        // zero, so `b ⊑ a` must be false.
        assert!(!b.leq(&a), "implicit ⊤ on the left is not below a finite value");
        // And a genuine value violation on a common cell still fails.
        let wide = a.set(CellId(0), CellVal::Int(Clocked::of_val(IntItv::new(0, 100), a.clock)));
        assert!(!wide.leq(&a));
    }

    #[test]
    fn merge_identity_is_preserved() {
        let (_, l) = small_layout();
        let base = AbsEnv::initial(&l);
        let grown =
            base.set(CellId(0), CellVal::Int(Clocked::of_val(IntItv::new(0, 9), base.clock)));
        // Joining in an env that adds no information returns self's tree.
        let j = grown.join(&base);
        assert!(j.ptr_eq(&grown), "no-op join must preserve identity");
        // Rewriting a cell to its current value is physically a no-op.
        let rewrite = grown.set(CellId(0), grown.get(CellId(0), &l));
        assert!(rewrite.ptr_eq(&grown), "no-op set must preserve identity");
        // A narrow that changes nothing also preserves identity.
        let n = grown.narrow(&grown.clone());
        assert!(n.ptr_eq(&grown));
    }

    #[test]
    fn same_is_bitwise_on_floats() {
        let pos = CellVal::Float(FloatItv::new(0.0, 1.0));
        let neg = CellVal::Float(FloatItv::new(-0.0, 1.0));
        assert!(pos.same(&pos));
        assert!(!pos.same(&neg), "-0.0 and 0.0 must not be identified");
        assert_eq!(pos, neg, "PartialEq is coarser — that is the point");
    }

    #[test]
    fn changed_cells_matches_count_diff() {
        let (_, l) = small_layout();
        let env = AbsEnv::initial(&l);
        let changed =
            env.set(CellId(2), CellVal::Int(Clocked::of_val(IntItv::singleton(4), env.clock)));
        let mut cells = Vec::new();
        env.changed_cells(&changed, &mut cells);
        assert_eq!(cells, vec![CellId(2)]);
        assert_eq!(env.count_diff(&changed), 1);
        let _ = l;
    }

    #[test]
    fn count_diff_is_sparse() {
        let (_, l) = small_layout();
        let env = AbsEnv::initial(&l);
        let changed =
            env.set(CellId(0), CellVal::Int(Clocked::of_val(IntItv::singleton(9), env.clock)));
        assert_eq!(env.count_diff(&changed), 1);
        assert_eq!(env.count_diff(&env), 0);
    }
}
