//! Property fuzzing of the abstract expression evaluator: for random
//! well-typed expressions and random concrete stores drawn from the
//! abstract environment, the concrete result must be covered — either the
//! value lies in the abstract interval, or the error is covered by a flag
//! (the soundness contract of paper Sect. 5.4).

use astree_domains::{Clocked, ErrFlags, FloatItv, IntItv};
use astree_ir::{
    Binop, Expr, FloatKind, Function, IntType, Program, ScalarType, Unop, VarId, VarInfo, VarKind,
};
use astree_memory::{AbsEnv, AbsVal, CellLayout, CellVal, Evaluator, LayoutConfig};
use proptest::prelude::*;

const NVARS: usize = 3;

fn int_t() -> ScalarType {
    ScalarType::Int(IntType::INT)
}

fn float_t() -> ScalarType {
    ScalarType::Float(FloatKind::F64)
}

/// Random integer expression over `i0..i2` (loads) and small constants.
fn int_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0..NVARS as u32).prop_map(|v| Expr::var(VarId(v))),
        (-50i64..50).prop_map(Expr::int),
    ];
    leaf.prop_recursive(depth, 64, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![
                Just(Binop::Add),
                Just(Binop::Sub),
                Just(Binop::Mul),
                Just(Binop::Div),
                Just(Binop::Rem),
                Just(Binop::BAnd),
                Just(Binop::BOr),
                Just(Binop::BXor),
                Just(Binop::Lt),
                Just(Binop::Eq),
                Just(Binop::LAnd),
            ],
        )
            .prop_map(|(a, b, op)| Expr::Binop(op, int_t(), Box::new(a), Box::new(b)))
    })
    .boxed()
}

/// Random float expression over `f0..f2` (loads at vars 3..6) and constants.
fn float_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0..NVARS as u32).prop_map(|v| Expr::var_t(VarId(NVARS as u32 + v), float_t())),
        (-8.0f64..8.0).prop_map(Expr::float),
    ];
    leaf.prop_recursive(depth, 64, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![Just(Binop::Add), Just(Binop::Sub), Just(Binop::Mul), Just(Binop::Div),],
        )
            .prop_map(|(a, b, op)| Expr::Binop(op, float_t(), Box::new(a), Box::new(b)))
    })
    .boxed()
}

struct Fix {
    program: Program,
    layout: CellLayout,
}

fn fixture() -> Fix {
    let mut p = Program::new();
    for i in 0..NVARS {
        p.add_var(VarInfo::scalar(format!("i{i}"), int_t(), VarKind::Global));
    }
    for i in 0..NVARS {
        p.add_var(VarInfo::scalar(format!("f{i}"), float_t(), VarKind::Global));
    }
    p.add_func(Function {
        name: "main".into(),
        params: vec![],
        ret: None,
        locals: vec![],
        body: vec![],
    });
    let layout = CellLayout::new(&p, &LayoutConfig::default());
    Fix { program: p, layout }
}

/// Concrete integer semantics mirroring the interpreter: errors are
/// reported as the flag class they must be covered by.
fn conc_int(e: &Expr, ivals: &[i64], fvals: &[f64]) -> Result<i64, ErrFlags> {
    match e {
        Expr::Int(v, _) => Ok(*v),
        Expr::Load(lv, _) => Ok(ivals[lv.base.0 as usize]),
        Expr::Unop(Unop::Neg, _, a) => clip(-(conc_int(a, ivals, fvals)? as i128)),
        Expr::Unop(Unop::LNot, _, a) => Ok((conc_int(a, ivals, fvals)? == 0) as i64),
        Expr::Unop(Unop::BNot, _, a) => Ok(IntType::INT.wrap(!conc_int(a, ivals, fvals)?)),
        Expr::Binop(op, _, a, b) => {
            let x = conc_int(a, ivals, fvals)?;
            let y = conc_int(b, ivals, fvals)?;
            match op {
                Binop::Add => clip(x as i128 + y as i128),
                Binop::Sub => clip(x as i128 - y as i128),
                Binop::Mul => clip(x as i128 * y as i128),
                Binop::Div => {
                    if y == 0 {
                        Err(ErrFlags::DIV_BY_ZERO)
                    } else {
                        clip(x as i128 / y as i128)
                    }
                }
                Binop::Rem => {
                    if y == 0 {
                        Err(ErrFlags::DIV_BY_ZERO)
                    } else {
                        clip(x as i128 % y as i128)
                    }
                }
                Binop::BAnd => Ok(IntType::INT.wrap(x & y)),
                Binop::BOr => Ok(IntType::INT.wrap(x | y)),
                Binop::BXor => Ok(IntType::INT.wrap(x ^ y)),
                Binop::Lt => Ok((x < y) as i64),
                Binop::Eq => Ok((x == y) as i64),
                Binop::LAnd => Ok(((x != 0) && (y != 0)) as i64),
                _ => unreachable!(),
            }
        }
        _ => unreachable!("generator produces no casts"),
    }
}

/// Integer overflow clips to the type range (the analyzer's "wipe out"
/// semantics) and must be covered by the INT_OVERFLOW flag.
fn clip(r: i128) -> Result<i64, ErrFlags> {
    let (lo, hi) = (IntType::INT.min() as i128, IntType::INT.max() as i128);
    if r < lo || r > hi {
        Err(ErrFlags::INT_OVERFLOW)
    } else {
        Ok(r as i64)
    }
}

fn conc_float(e: &Expr, fvals: &[f64]) -> Result<f64, ErrFlags> {
    match e {
        Expr::Float(b, _) => Ok(b.get()),
        Expr::Load(lv, _) => Ok(fvals[lv.base.0 as usize - NVARS]),
        Expr::Binop(op, _, a, b) => {
            let x = conc_float(a, fvals)?;
            let y = conc_float(b, fvals)?;
            let r = match op {
                Binop::Add => x + y,
                Binop::Sub => x - y,
                Binop::Mul => x * y,
                Binop::Div => {
                    if y == 0.0 {
                        return Err(ErrFlags::DIV_BY_ZERO);
                    }
                    x / y
                }
                _ => unreachable!(),
            };
            if r.is_nan() {
                Err(ErrFlags::NAN)
            } else if r.is_infinite() {
                Err(ErrFlags::FLOAT_OVERFLOW)
            } else {
                Ok(r)
            }
        }
        _ => unreachable!(),
    }
}

fn env_with(fix: &Fix, iranges: &[(i64, i64)], franges: &[(f64, f64)]) -> AbsEnv {
    let mut env = AbsEnv::initial(&fix.layout);
    for (i, (lo, hi)) in iranges.iter().enumerate() {
        let cell = fix.layout.scalar_cell(VarId(i as u32));
        env = env.set(cell, CellVal::Int(Clocked::of_val(IntItv::new(*lo, *hi), env.clock)));
    }
    for (i, (lo, hi)) in franges.iter().enumerate() {
        let cell = fix.layout.scalar_cell(VarId((NVARS + i) as u32));
        env = env.set(cell, CellVal::Float(FloatItv::new(*lo, *hi)));
    }
    env
}

fn ranges_int() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec(
        (-100_000i64..100_000, -100_000i64..100_000).prop_map(|(a, b)| (a.min(b), a.max(b))),
        NVARS,
    )
}

fn ranges_float() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(
        (-1e6f64..1e6, -1e6f64..1e6).prop_map(|(a, b)| (a.min(b), a.max(b))),
        NVARS,
    )
}

fn samples(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, NVARS), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn int_eval_is_sound(e in int_expr(4), iranges in ranges_int(), fracs in samples(8)) {
        let fix = fixture();
        let ev = Evaluator::new(&fix.program, &fix.layout, 1000);
        let env = env_with(&fix, &iranges, &[(0.0, 0.0); NVARS]);
        let (abs, flags) = ev.eval(&env, &e);
        let AbsVal::Int(itv) = abs else { panic!("int expr") };
        for frac in &fracs {
            let ivals: Vec<i64> = iranges
                .iter()
                .zip(frac)
                .map(|((lo, hi), f)| lo + ((*hi - *lo) as f64 * f) as i64)
                .collect();
            match conc_int(&e, &ivals, &[]) {
                Ok(v) => prop_assert!(
                    itv.contains(v),
                    "{itv} misses {v} (flags {flags}) for {ivals:?}"
                ),
                Err(f) => prop_assert!(
                    flags.contains(f),
                    "error {f} not covered by flags {flags}"
                ),
            }
        }
    }

    #[test]
    fn float_eval_is_sound(e in float_expr(4), franges in ranges_float(), fracs in samples(8)) {
        let fix = fixture();
        let ev = Evaluator::new(&fix.program, &fix.layout, 1000);
        let env = env_with(&fix, &[(0, 0); NVARS], &franges);
        let (abs, flags) = ev.eval(&env, &e);
        let AbsVal::Float(itv) = abs else { panic!("float expr") };
        for frac in &fracs {
            let fvals: Vec<f64> = franges
                .iter()
                .zip(frac)
                .map(|((lo, hi), f)| lo + (hi - lo) * f)
                .collect();
            match conc_float(&e, &fvals) {
                Ok(v) => prop_assert!(
                    itv.contains(v),
                    "{itv} misses {v} (flags {flags}) for {fvals:?}"
                ),
                Err(f) => prop_assert!(
                    flags.contains(f),
                    "error {f} not covered by flags {flags}"
                ),
            }
        }
    }

    /// Guards are sound: states satisfying the condition concretely survive
    /// the abstract guard.
    #[test]
    fn guard_is_sound(e in int_expr(3), iranges in ranges_int(), fracs in samples(8)) {
        let fix = fixture();
        let ev = Evaluator::new(&fix.program, &fix.layout, 1000);
        let env = env_with(&fix, &iranges, &[(0.0, 0.0); NVARS]);
        let guarded_true = ev.guard(&env, &e, true);
        let guarded_false = ev.guard(&env, &e, false);
        for frac in &fracs {
            let ivals: Vec<i64> = iranges
                .iter()
                .zip(frac)
                .map(|((lo, hi), f)| lo + ((*hi - *lo) as f64 * f) as i64)
                .collect();
            let Ok(v) = conc_int(&e, &ivals, &[]) else { continue };
            let target = if v != 0 { &guarded_true } else { &guarded_false };
            prop_assert!(!target.is_bottom(), "satisfying state pruned by guard");
            // Each variable's value must survive in the guarded env.
            for (i, val) in ivals.iter().enumerate() {
                let cell = fix.layout.scalar_cell(VarId(i as u32));
                match target.get(cell, &fix.layout) {
                    CellVal::Int(c) => prop_assert!(
                        c.val.contains(*val),
                        "guard dropped i{i} = {val}: {}",
                        c.val
                    ),
                    _ => unreachable!(),
                }
            }
        }
    }
}
