//! Deprecated aliases for the fleet job vocabulary.
//!
//! Batch analysis grew into the [`fleet`](crate::fleet) crate: one
//! [`JobSpec`]/[`JobOutcome`] shape for every fan-out surface, and the
//! `FleetSession` builder instead of free functions. These aliases and
//! wrappers keep old callers compiling for one release; new code should
//! use `astree::fleet` directly.

use astree_core::{AnalysisConfig, InvariantStore};
use astree_fleet::{FleetSession, JobSpec};
use astree_obs::Recorder;
use std::sync::Arc;
use std::time::Duration;

/// Deprecated alias: the fleet job spec (construct with `JobSpec::new`).
#[deprecated(note = "use astree::fleet::JobSpec")]
pub type FleetJob = astree_fleet::JobSpec;

/// Deprecated alias: the fleet job outcome (`status` is now a real
/// `JobStatus` enum, not a string).
#[deprecated(note = "use astree::fleet::JobOutcome")]
pub type FleetOutcome = astree_fleet::JobOutcome;

/// Deprecated alias: the fleet report.
#[deprecated(note = "use astree::fleet::FleetReport")]
pub type FleetReport = astree_fleet::FleetReport;

/// Deprecated wrapper over `FleetSession::builder()`.
#[deprecated(note = "use astree::fleet::FleetSession::builder()")]
pub fn analyze_fleet(
    fleet: Vec<JobSpec>,
    config: &AnalysisConfig,
    workers: usize,
    timeout: Option<Duration>,
) -> astree_fleet::FleetReport {
    FleetSession::builder()
        .jobs(fleet)
        .config(config.clone())
        .threads(workers)
        .timeout(timeout)
        .run()
}

/// Deprecated wrapper over `FleetSession::builder()` with a recorder and a
/// shared store.
#[deprecated(note = "use astree::fleet::FleetSession::builder()")]
pub fn analyze_fleet_recorded(
    fleet: Vec<JobSpec>,
    config: &AnalysisConfig,
    workers: usize,
    timeout: Option<Duration>,
    rec: Arc<dyn Recorder>,
    cache: Option<Arc<InvariantStore>>,
) -> astree_fleet::FleetReport {
    let mut builder = FleetSession::builder()
        .jobs(fleet)
        .config(config.clone())
        .threads(workers)
        .timeout(timeout)
        .recorder(rec);
    if let Some(store) = cache {
        builder = builder.cache(store);
    }
    builder.run()
}
