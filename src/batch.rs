//! Batch analysis of program fleets.
//!
//! A fleet is a set of independent analysis jobs — generated family members,
//! a regression corpus, or source files from disk. Jobs are executed by
//! [`astree_sched::run_batch`]: a bounded worker pool with per-job panic and
//! timeout isolation, so one diverging or crashing analysis fails that job
//! only. Results are reported in submission order regardless of completion
//! order.

use astree_core::{AnalysisConfig, AnalysisSession, InvariantStore};
use astree_frontend::Frontend;
use astree_obs::{BatchJobEvent, NullRecorder, Recorder};
use astree_sched::{run_batch, BatchConfig, Job, JobStatus};
use std::sync::Arc;
use std::time::Duration;

/// One analysis job: a name and the C source to analyze.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// Display name (file name or generated-program identifier).
    pub name: String,
    /// C source text.
    pub source: String,
}

/// Outcome of one fleet job.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Job name as submitted.
    pub name: String,
    /// `"done"`, `"panicked"` or `"timed-out"`.
    pub status: String,
    /// Number of alarms, when the job completed.
    pub alarms: Option<usize>,
    /// First alarm lines, when the job completed (for reporting).
    pub alarm_lines: Vec<String>,
    /// Wall-clock time the job occupied a worker.
    pub wall: Duration,
    /// Worker index that ran the job (informational).
    pub worker: usize,
    /// Error detail for failed jobs (panic message or compile error).
    pub detail: Option<String>,
}

/// Aggregated outcome of a fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-job outcomes in submission order.
    pub outcomes: Vec<FleetOutcome>,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Busy time per worker.
    pub worker_busy: Vec<Duration>,
    /// Workers spawned.
    pub workers: usize,
    /// Sum of per-job wall times (the sequential cost).
    pub total_job_time: Duration,
    /// Observed speedup (sequential cost over batch wall time).
    pub speedup: f64,
}

impl FleetReport {
    /// Number of jobs that completed.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.status == "done").count()
    }

    /// Total alarms across completed jobs.
    pub fn total_alarms(&self) -> usize {
        self.outcomes.iter().filter_map(|o| o.alarms).sum()
    }
}

/// Analyzes a fleet with at most `workers` jobs in flight and an optional
/// per-job timeout. Each job compiles its source and runs the full two-phase
/// analysis under the shared configuration (including `config.jobs` worker
/// threads *inside* each analysis).
pub fn analyze_fleet(
    fleet: Vec<FleetJob>,
    config: &AnalysisConfig,
    workers: usize,
    timeout: Option<Duration>,
) -> FleetReport {
    analyze_fleet_recorded(fleet, config, workers, timeout, Arc::new(NullRecorder), None)
}

/// Like [`analyze_fleet`], reporting telemetry to `rec`: each job's analysis
/// streams fixpoint/domain events into the shared recorder, and one
/// [`BatchJobEvent`] per job records its scheduling outcome. The recorder is
/// `Arc`-shared because job closures outlive this call's borrows (`'static`).
/// When `cache` is given, every job of the fleet shares the one invariant
/// store, so a re-run of an unchanged fleet replays from disk.
pub fn analyze_fleet_recorded(
    fleet: Vec<FleetJob>,
    config: &AnalysisConfig,
    workers: usize,
    timeout: Option<Duration>,
    rec: Arc<dyn Recorder>,
    cache: Option<Arc<InvariantStore>>,
) -> FleetReport {
    let jobs: Vec<Job<Result<Vec<String>, String>>> = fleet
        .into_iter()
        .map(|fj| {
            let cfg = config.clone();
            let rec = Arc::clone(&rec);
            let cache = cache.clone();
            Job::new(fj.name, move || {
                let program = Frontend::new()
                    .compile_str(&fj.source)
                    .map_err(|e| format!("compile error: {e:?}"))?;
                let mut builder =
                    AnalysisSession::builder(&program).config(cfg).recorder(rec.as_ref());
                if let Some(store) = cache {
                    builder = builder.cache(store);
                }
                let result = builder.build().run();
                Ok(result.alarms.iter().map(|a| a.to_string()).collect())
            })
        })
        .collect();

    let report = run_batch(&BatchConfig { workers, timeout }, jobs);
    let total_job_time = report.total_job_time();
    let speedup = report.speedup();
    let outcomes = report
        .results
        .into_iter()
        .map(|r| {
            let (status, alarms, alarm_lines, detail) = match r.status {
                JobStatus::Done(Ok(lines)) => ("done".to_string(), Some(lines.len()), lines, None),
                JobStatus::Done(Err(e)) => ("failed".to_string(), None, Vec::new(), Some(e)),
                JobStatus::Panicked(msg) => ("panicked".to_string(), None, Vec::new(), Some(msg)),
                JobStatus::TimedOut => ("timed-out".to_string(), None, Vec::new(), None),
            };
            if rec.enabled() {
                rec.batch_job(&BatchJobEvent {
                    name: &r.name,
                    status: &status,
                    reason: detail.as_deref(),
                    wall_nanos: r.wall.as_nanos() as u64,
                    worker: r.worker,
                    alarms: alarms.map(|n| n as u64),
                });
            }
            FleetOutcome {
                name: r.name,
                status,
                alarms,
                alarm_lines,
                wall: r.wall,
                worker: r.worker,
                detail,
            }
        })
        .collect();
    FleetReport {
        outcomes,
        wall: report.wall,
        worker_busy: report.worker_busy,
        workers: report.workers,
        total_job_time,
        speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_of_tiny_programs() {
        let fleet = vec![
            FleetJob { name: "clean".into(), source: "int x; void main(void) { x = 1; }".into() },
            FleetJob {
                name: "div".into(),
                source: "int x; int d; void main(void) { d = 0; x = 1 / d; }".into(),
            },
            FleetJob { name: "broken".into(), source: "not C at all".into() },
        ];
        let report = analyze_fleet(fleet, &AnalysisConfig::default(), 2, None);
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(report.outcomes[0].alarms, Some(0));
        assert_eq!(report.outcomes[1].alarms, Some(1));
        assert_eq!(report.outcomes[2].status, "failed");
        assert_eq!(report.completed(), 2);
        assert_eq!(report.total_alarms(), 1);
    }
}
