//! Shared run-option plumbing for the CLI.
//!
//! `astree analyze` and `astree batch` accept the same cross-cutting flags
//! (`--jobs`, `--metrics`, `--trace`, `--cache`); [`RunOptions`] parses them
//! once and owns the derived machinery — the telemetry [`Collector`] and the
//! on-disk [`InvariantStore`] — so both commands stay in sync.

use astree_core::InvariantStore;
use astree_obs::{Collector, Fanout, Recorder, StreamSink};
use std::sync::Arc;

/// Help text for the flags [`RunOptions`] parses, for `--help` output.
pub const RUN_OPTIONS_HELP: &str =
    "--jobs N runs N workers (see the command's help for which pool)\n\
     --metrics FILE writes the astree-metrics/1 JSON document\n\
     --metrics-stream FILE appends astree-events/1 JSONL records as they happen\n\
     --trace prints the per-iteration fixpoint log to stderr\n\
     --cache DIR reuses invariants across runs from the given directory\n\
     --cache-max-mb N bounds the cache directory, evicting oldest entries";

/// The cross-cutting options shared by `analyze` and `batch`.
#[derive(Debug, Default, Clone)]
pub struct RunOptions {
    /// `--jobs N`: worker count. `analyze` maps it to intra-analysis
    /// workers, `batch` to the job pool.
    pub jobs: Option<usize>,
    /// `--metrics FILE`: write the astree-metrics/1 JSON document there.
    pub metrics_path: Option<String>,
    /// `--metrics-stream FILE`: append astree-events/1 JSONL records there
    /// as the analysis runs (line-buffered, crash-readable).
    pub metrics_stream: Option<String>,
    /// `--trace`: stream the fixpoint log to stderr.
    pub trace: bool,
    /// `--cache DIR`: persist and reuse invariants across runs.
    pub cache_dir: Option<String>,
    /// `--cache-max-mb N`: bound the cache directory to N mebibytes,
    /// evicting the oldest entries (by mtime) past the limit.
    pub cache_max_mb: Option<u64>,
}

impl RunOptions {
    /// Tries to consume the shared option at `args[*i]`. Returns `Ok(true)`
    /// and advances `*i` past any flag value when the option was one of
    /// ours; the caller still advances past the flag itself.
    pub fn try_parse(&mut self, args: &[String], i: &mut usize) -> Result<bool, String> {
        let a = args[*i].as_str();
        let mut value = || -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{a} needs a value"))
        };
        match a {
            "--jobs" => {
                let n: usize = value()?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                self.jobs = Some(n);
            }
            "--metrics" => self.metrics_path = Some(value()?),
            "--metrics-stream" => self.metrics_stream = Some(value()?),
            "--trace" => self.trace = true,
            "--cache" => self.cache_dir = Some(value()?),
            "--cache-max-mb" => {
                let n: u64 = value()?.parse().map_err(|e| format!("--cache-max-mb: {e}"))?;
                if n == 0 {
                    return Err("--cache-max-mb must be at least 1".into());
                }
                self.cache_max_mb = Some(n);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Whether a telemetry collector is needed at all.
    pub fn record(&self) -> bool {
        self.metrics_path.is_some() || self.metrics_stream.is_some() || self.trace
    }

    /// Builds the collector matching the options.
    pub fn collector(&self) -> Collector {
        if self.trace {
            Collector::with_trace()
        } else {
            Collector::new()
        }
    }

    /// Opens the JSONL event stream when `--metrics-stream` was given.
    pub fn open_stream(&self) -> Result<Option<Arc<StreamSink>>, String> {
        match &self.metrics_stream {
            Some(path) => {
                let sink = StreamSink::create(path)
                    .map_err(|e| format!("--metrics-stream {path}: {e}"))?;
                Ok(Some(Arc::new(sink)))
            }
            None => Ok(None),
        }
    }

    /// Assembles the recorder stack for a run: the collector alone, or a
    /// [`Fanout`] teeing into the JSONL stream when one is open.
    pub fn recorder(
        &self,
        collector: &Arc<Collector>,
        stream: &Option<Arc<StreamSink>>,
    ) -> Arc<dyn Recorder> {
        match stream {
            Some(sink) => {
                let sinks: Vec<Arc<dyn Recorder>> =
                    vec![Arc::clone(collector) as _, Arc::clone(sink) as _];
                Arc::new(Fanout::new(sinks))
            }
            None => Arc::clone(collector) as _,
        }
    }

    /// Opens the invariant store when `--cache` was given, bounded when
    /// `--cache-max-mb` was too.
    pub fn open_store(&self) -> Result<Option<Arc<InvariantStore>>, String> {
        match &self.cache_dir {
            Some(dir) => {
                let store = match self.cache_max_mb {
                    Some(mb) => InvariantStore::open_bounded(dir, mb * (1 << 20)),
                    None => InvariantStore::open(dir),
                }
                .map_err(|e| format!("--cache {dir}: {e}"))?;
                Ok(Some(Arc::new(store)))
            }
            None => {
                if self.cache_max_mb.is_some() {
                    return Err("--cache-max-mb needs --cache DIR".into());
                }
                Ok(None)
            }
        }
    }

    /// Flushes the collector: prints the trace (if any) to stderr and writes
    /// the metrics document (if requested).
    pub fn finish(&self, collector: &Collector) -> Result<(), String> {
        for line in collector.take_trace() {
            eprintln!("{line}");
        }
        if let Some(path) = &self.metrics_path {
            std::fs::write(path, collector.to_json().to_string())
                .map_err(|e| format!("{path}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(args: &[&str]) -> Result<(RunOptions, Vec<String>), String> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut run = RunOptions::default();
        let mut rest = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if !run.try_parse(&args, &mut i)? {
                rest.push(args[i].clone());
            }
            i += 1;
        }
        Ok((run, rest))
    }

    #[test]
    fn shared_flags_parse_and_leave_the_rest() {
        let (run, rest) = parse_all(&[
            "a.c",
            "--jobs",
            "4",
            "--trace",
            "--cache",
            "/tmp/c",
            "--cache-max-mb",
            "64",
            "--census",
        ])
        .unwrap();
        assert_eq!(run.jobs, Some(4));
        assert!(run.trace);
        assert_eq!(run.cache_dir.as_deref(), Some("/tmp/c"));
        assert_eq!(run.cache_max_mb, Some(64));
        assert_eq!(run.metrics_path, None);
        assert_eq!(rest, vec!["a.c", "--census"]);
        assert!(run.record());
    }

    #[test]
    fn jobs_zero_and_missing_values_are_rejected() {
        assert!(parse_all(&["--jobs", "0"]).is_err());
        assert!(parse_all(&["--metrics"]).is_err());
        assert!(parse_all(&["--metrics-stream"]).is_err());
        assert!(parse_all(&["--cache"]).is_err());
        assert!(parse_all(&["--cache-max-mb", "0"]).is_err());
    }

    #[test]
    fn cache_max_mb_without_cache_dir_is_rejected_at_open() {
        let (run, _) = parse_all(&["--cache-max-mb", "8"]).unwrap();
        assert!(run.open_store().is_err());
    }

    #[test]
    fn metrics_stream_alone_enables_recording() {
        let (run, rest) = parse_all(&["--metrics-stream", "/tmp/ev.jsonl"]).unwrap();
        assert_eq!(run.metrics_stream.as_deref(), Some("/tmp/ev.jsonl"));
        assert!(run.record());
        assert!(rest.is_empty());
    }
}
