//! `astree` — the command-line driver.
//!
//! ```text
//! astree analyze <file.c>... [options]   statically prove absence of RTEs
//! astree run <file.c> [options]          execute with the reference interpreter
//! astree slice <file.c> [options]        backward slices from alarm points
//! astree generate [options]              emit a synthetic family member
//! ```
//!
//! Run `astree <command> --help` for the options of each command.

use astree::core::{AnalysisConfig, Analyzer};
use astree::frontend::Frontend;
use astree::gen::{generate, BugKind, GenConfig};
use astree::ir::{Interp, InterpConfig, SeededInputs};
use astree::slicer::Slicer;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: astree <analyze|run|slice|generate> [options]");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "analyze" => cmd_analyze(rest),
        "run" => cmd_run(rest),
        "slice" => cmd_slice(rest),
        "generate" => cmd_generate(rest),
        "--help" | "-h" | "help" => {
            println!("usage: astree <analyze|run|slice|generate> [options]");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("astree: {msg}");
            ExitCode::from(2)
        }
    }
}

fn compile(files: &[String]) -> Result<astree::ir::Program, String> {
    if files.is_empty() {
        return Err("no input files".into());
    }
    let mut sources = Vec::new();
    for f in files {
        sources.push(std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?);
    }
    let refs: Vec<&str> = sources.iter().map(|s| s.as_str()).collect();
    Frontend::new().compile_units(&refs).map_err(|e| e.to_string())
}

fn cmd_analyze(args: &[String]) -> Result<ExitCode, String> {
    let mut files = Vec::new();
    let mut config = AnalysisConfig::default();
    let mut show_census = false;
    let mut dump_invariant = false;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{a} needs a value"))
        };
        match a.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: astree analyze <file.c>... [--max-clock N] [--unroll N]\n\
                     \x20      [--no-octagons] [--no-dtrees] [--no-ellipsoids]\n\
                     \x20      [--no-clock] [--no-linearize] [--baseline]\n\
                     \x20      [--partition FN] [--thresholds ALPHA,LAMBDA,N]\n\
                     \x20      [--pack VAR1,VAR2,...] [--census] [--dump-invariant]\n\
                     exit status: 0 = proven error-free, 1 = alarms reported"
                );
                return Ok(ExitCode::SUCCESS);
            }
            "--max-clock" => config.max_clock = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--unroll" => config.loop_unroll = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--no-octagons" => config.enable_octagons = false,
            "--no-dtrees" => config.enable_dtrees = false,
            "--no-ellipsoids" => config.enable_ellipsoids = false,
            "--no-clock" => config.enable_clocked = false,
            "--no-linearize" => config.enable_linearization = false,
            "--baseline" => config = AnalysisConfig::baseline(),
            "--partition" => {
                config.partitioned_functions.insert(value(&mut i)?);
            }
            "--thresholds" => {
                let v = value(&mut i)?;
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 3 {
                    return Err("--thresholds expects ALPHA,LAMBDA,N".into());
                }
                let alpha: f64 = parts[0].parse().map_err(|e| format!("{e}"))?;
                let lambda: f64 = parts[1].parse().map_err(|e| format!("{e}"))?;
                let n: u32 = parts[2].parse().map_err(|e| format!("{e}"))?;
                config.thresholds = astree::domains::Thresholds::geometric(alpha, lambda, n);
            }
            "--pack" => {
                let names: Vec<String> =
                    value(&mut i)?.split(',').map(|s| s.trim().to_string()).collect();
                config.octagon_packs_extra.push(names);
            }
            "--census" => show_census = true,
            "--dump-invariant" => dump_invariant = true,
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    let program = compile(&files)?;
    let errs = program.validate();
    if !errs.is_empty() {
        return Err(format!("invalid program: {}", errs.join("; ")));
    }
    let result = Analyzer::new(&program, config).run();
    println!(
        "analyzed {} ({} cells, {} octagon packs, {} filters, {} decision-tree packs)",
        program.metrics(),
        result.stats.cells,
        result.stats.octagon_packs,
        result.stats.ellipse_packs,
        result.stats.dtree_packs,
    );
    println!(
        "time: {:.2?} invariant generation + {:.2?} checking",
        result.stats.time_iterate, result.stats.time_check
    );
    if show_census {
        if let Some(c) = &result.main_census {
            println!("\nmain loop invariant census:\n{c}");
        }
    }
    if dump_invariant {
        if let Some(inv) = &result.main_invariant {
            println!("\nmain loop invariant:\n{inv}");
        }
    }
    if result.alarms.is_empty() {
        println!("\nno alarms: the program is proven free of run-time errors");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("\n{} alarm(s):", result.alarms.len());
        for a in &result.alarms {
            println!("  {a}");
        }
        Ok(ExitCode::from(1))
    }
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let mut files = Vec::new();
    let mut seed = 1u64;
    let mut ticks = 1000u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("usage: astree run <file.c>... [--seed N] [--ticks N]");
                return Ok(ExitCode::SUCCESS);
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).ok_or("--seed needs a value")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--ticks" => {
                i += 1;
                ticks = args.get(i).ok_or("--ticks needs a value")?.parse().map_err(|e| format!("{e}"))?;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    let program = compile(&files)?;
    let mut inputs = SeededInputs::new(seed);
    let mut interp = Interp::new(
        &program,
        InterpConfig { max_steps: u64::MAX, max_ticks: ticks },
        &mut inputs,
    );
    match interp.run() {
        Ok(()) => {
            println!("completed {} clock ticks", interp.ticks());
            if interp.events().is_empty() {
                println!("no run-time events");
                Ok(ExitCode::SUCCESS)
            } else {
                println!("{} recoverable events:", interp.events().len());
                for (stmt, e) in interp.events() {
                    println!("  stmt {}: {e:?}", stmt.0);
                }
                Ok(ExitCode::from(1))
            }
        }
        Err(e) => {
            println!("run-time error after {} ticks: {e}", interp.ticks());
            Ok(ExitCode::from(1))
        }
    }
}

fn cmd_slice(args: &[String]) -> Result<ExitCode, String> {
    let mut files = Vec::new();
    let mut abstract_slice = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: astree slice <file.c>... [--abstract]\n\
                     analyzes the program and prints the backward slice of \
                     each alarm point; --abstract restricts the slice to the \
                     variables the invariant knows too little about \
                     (paper Sect. 3.3)"
                );
                return Ok(ExitCode::SUCCESS);
            }
            "--abstract" => abstract_slice = true,
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    let program = compile(&files)?;
    let result = Analyzer::new(&program, AnalysisConfig::default()).run();
    if result.alarms.is_empty() {
        println!("no alarms to slice");
        return Ok(ExitCode::SUCCESS);
    }
    let interesting = if abstract_slice {
        result.main_invariant.as_ref().map(|inv| {
            let layout = astree::memory::CellLayout::new(
                &program,
                &astree::memory::LayoutConfig::default(),
            );
            astree::core::under_constrained_vars(inv, &layout, 1e6)
        })
    } else {
        None
    };
    let slicer = Slicer::new(&program);
    for alarm in &result.alarms {
        let slice = match &interesting {
            Some(vars) => slicer.slice_restricted(alarm.stmt, vars),
            None => slicer.slice(alarm.stmt),
        };
        println!(
            "{alarm}\n  slice: {} of {} statements ({:.0}%)",
            slice.len(),
            slice.total_stmts,
            100.0 * slice.coverage()
        );
    }
    Ok(ExitCode::from(1))
}

fn cmd_generate(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = GenConfig::default();
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: astree generate [--channels N] [--seed N] \
                     [--bug div0|oob|overflow] [-o FILE]"
                );
                return Ok(ExitCode::SUCCESS);
            }
            "--channels" => {
                i += 1;
                cfg.channels =
                    args.get(i).ok_or("--channels needs a value")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--seed" => {
                i += 1;
                cfg.seed = args.get(i).ok_or("--seed needs a value")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--bug" => {
                i += 1;
                cfg.bug = Some(match args.get(i).map(|s| s.as_str()) {
                    Some("div0") => BugKind::DivByZero,
                    Some("oob") => BugKind::OutOfBounds,
                    Some("overflow") => BugKind::IntOverflow,
                    other => return Err(format!("unknown bug kind {other:?}")),
                });
            }
            "-o" | "--output" => {
                i += 1;
                out = Some(args.get(i).ok_or("-o needs a value")?.clone());
            }
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    let src = generate(&cfg);
    match out {
        Some(path) => std::fs::write(&path, &src).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{src}"),
    }
    Ok(ExitCode::SUCCESS)
}
