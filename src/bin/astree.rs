//! `astree` — the command-line driver.
//!
//! ```text
//! astree analyze <file.c>... [options]   statically prove absence of RTEs
//! astree batch [files...] [options]      analyze a fleet of programs
//! astree serve [options]                 resident analysis daemon (warm pool)
//! astree worker [options]                fleet worker process (spawned/remote)
//! astree client [files...] [options]     send requests to a serving daemon
//! astree run <file.c> [options]          execute with the reference interpreter
//! astree slice <file.c> [options]        backward slices from alarm points
//! astree generate [options]              emit a synthetic family member
//! astree fuzz [options]                  differential soundness campaign
//! ```
//!
//! Run `astree <command> --help` for the options of each command.

use astree::core::{AnalysisConfig, AnalysisSession, CacheReport};
use astree::fleet::{self, FleetSession, JobSpec};
use astree::frontend::Frontend;
use astree::gen::{generate, BugKind, GenConfig};
use astree::ir::{Interp, InterpConfig, SeededInputs};
use astree::options::{RunOptions, RUN_OPTIONS_HELP};
use astree::oracle::{campaign_to_json, DivergenceKind, OracleConfig};
use astree::serve::client::AnalyzeRequest;
use astree::serve::{Client, ClientError, Endpoint, ServeOptions, Server};
use astree::slicer::Slicer;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!(
            "usage: astree <analyze|batch|serve|worker|client|run|slice|generate|fuzz> [options]"
        );
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "analyze" => cmd_analyze(rest),
        "batch" => cmd_batch(rest),
        "serve" => cmd_serve(rest),
        "worker" => cmd_worker(rest),
        "client" => cmd_client(rest),
        "run" => cmd_run(rest),
        "slice" => cmd_slice(rest),
        "generate" => cmd_generate(rest),
        "fuzz" => cmd_fuzz(rest),
        "--help" | "-h" | "help" => {
            println!(
                "usage: astree <analyze|batch|serve|worker|client|run|slice|generate|fuzz> [options]"
            );
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("astree: {msg}");
            ExitCode::from(2)
        }
    }
}

fn compile(files: &[String]) -> Result<astree::ir::Program, String> {
    if files.is_empty() {
        return Err("no input files".into());
    }
    let mut sources = Vec::new();
    for f in files {
        sources.push(std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?);
    }
    let refs: Vec<&str> = sources.iter().map(|s| s.as_str()).collect();
    Frontend::new().compile_units(&refs).map_err(|e| e.to_string())
}

fn cmd_analyze(args: &[String]) -> Result<ExitCode, String> {
    let mut files = Vec::new();
    let mut config = AnalysisConfig::default();
    let mut show_census = false;
    let mut dump_invariant = false;
    let mut run = RunOptions::default();
    let mut i = 0;
    while i < args.len() {
        if run.try_parse(args, &mut i)? {
            i += 1;
            continue;
        }
        let a = &args[i];
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{a} needs a value"))
        };
        match a.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: astree analyze <file.c>... [--max-clock N] [--unroll N]\n\
                     \x20      [--no-octagons] [--no-dtrees] [--no-ellipsoids]\n\
                     \x20      [--no-clock] [--no-linearize] [--baseline]\n\
                     \x20      [--partition FN] [--thresholds ALPHA,LAMBDA,N]\n\
                     \x20      [--pack VAR1,VAR2,...] [--census] [--dump-invariant]\n\
                     \x20      [--jobs N] [--metrics FILE] [--metrics-stream FILE]\n\
                     \x20      [--trace] [--cache DIR] [--debug-no-ptr-shortcuts]\n\
                     \x20      [--debug-generic-kernels]\n\
                     --jobs N analyzes with N worker threads (results are\n\
                     identical to the sequential analysis for every N)\n\
                     --debug-no-ptr-shortcuts disables the persistent-map\n\
                     sharing fast paths (validation: results are identical)\n\
                     --debug-generic-kernels disables the specialized\n\
                     small-pack octagon kernels (validation: results are\n\
                     identical)\n\
                     {RUN_OPTIONS_HELP}\n\
                     exit status: 0 = proven error-free, 1 = alarms reported"
                );
                return Ok(ExitCode::SUCCESS);
            }
            "--max-clock" => {
                config.max_clock = value(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--unroll" => {
                config.loop_unroll = value(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--no-octagons" => config.enable_octagons = false,
            "--no-dtrees" => config.enable_dtrees = false,
            "--no-ellipsoids" => config.enable_ellipsoids = false,
            "--no-clock" => config.enable_clocked = false,
            "--no-linearize" => config.enable_linearization = false,
            "--baseline" => config = AnalysisConfig::baseline(),
            "--partition" => {
                config.partitioned_functions.insert(value(&mut i)?);
            }
            "--thresholds" => {
                let v = value(&mut i)?;
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 3 {
                    return Err("--thresholds expects ALPHA,LAMBDA,N".into());
                }
                let alpha: f64 = parts[0].parse().map_err(|e| format!("{e}"))?;
                let lambda: f64 = parts[1].parse().map_err(|e| format!("{e}"))?;
                let n: u32 = parts[2].parse().map_err(|e| format!("{e}"))?;
                config.thresholds = astree::domains::Thresholds::geometric(alpha, lambda, n);
            }
            "--pack" => {
                let names: Vec<String> =
                    value(&mut i)?.split(',').map(|s| s.trim().to_string()).collect();
                config.octagon_packs_extra.push(names);
            }
            "--census" => show_census = true,
            "--dump-invariant" => dump_invariant = true,
            "--debug-no-ptr-shortcuts" => config.debug_no_ptr_shortcuts = true,
            "--debug-generic-kernels" => config.debug_generic_kernels = true,
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    let program = compile(&files)?;
    let errs = program.validate();
    if !errs.is_empty() {
        return Err(format!("invalid program: {}", errs.join("; ")));
    }
    if let Some(j) = run.jobs {
        config.jobs = j;
    }
    let jobs = config.jobs;
    let store = run.open_store()?;
    let result = if run.record() {
        let collector = Arc::new(run.collector());
        let stream = run.open_stream()?;
        let rec = run.recorder(&collector, &stream);
        let mut builder = AnalysisSession::builder(&program).config(config).recorder(rec.as_ref());
        if let Some(s) = &store {
            builder = builder.cache(Arc::clone(s));
        }
        let result = builder.build().run();
        if let Some(sink) = &stream {
            sink.flush();
        }
        run.finish(&collector)?;
        result
    } else {
        let mut builder = AnalysisSession::builder(&program).config(config);
        if let Some(s) = &store {
            builder = builder.cache(Arc::clone(s));
        }
        builder.build().run()
    };
    println!(
        "analyzed {} ({} cells, {} octagon packs, {} filters, {} decision-tree packs)",
        program.metrics(),
        result.stats.cells,
        result.stats.octagon_packs,
        result.stats.ellipse_packs,
        result.stats.dtree_packs,
    );
    if result.cache.full_hit {
        println!(
            "time: {:.2?} replay from cache (cold run: {:.2?} invariant generation + {:.2?} checking)",
            result.stats.time_replay, result.stats.time_iterate, result.stats.time_check
        );
    } else {
        println!(
            "time: {:.2?} invariant generation + {:.2?} checking",
            result.stats.time_iterate, result.stats.time_check
        );
    }
    if result.cache.enabled {
        print_cache_summary(&result.cache);
    }
    if result.stats.parallel_stages > 0 {
        println!(
            "parallel: {} sliced stages, {} slices across {} workers",
            result.stats.parallel_stages, result.stats.parallel_slices, jobs,
        );
    }
    if show_census {
        if let Some(c) = &result.main_census {
            println!("\nmain loop invariant census:\n{c}");
        }
    }
    if dump_invariant {
        if let Some(inv) = &result.main_invariant {
            println!("\nmain loop invariant:\n{inv}");
        }
    }
    if result.alarms.is_empty() {
        println!("\nno alarms: the program is proven free of run-time errors");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("\n{} alarm(s):", result.alarms.len());
        for a in &result.alarms {
            println!("  {a}");
        }
        Ok(ExitCode::from(1))
    }
}

/// One-line cache participation summary for `astree analyze --cache`.
fn print_cache_summary(c: &CacheReport) {
    if c.full_hit {
        println!("cache: full hit, replayed the stored invariants and alarms");
    } else {
        let replayed: u64 = c.loops_replayed_by_function.values().sum();
        let solved: u64 = c.loops_solved_by_function.values().sum();
        println!(
            "cache: {} function(s) seeded, {} invalidated; {} loop(s) replayed, {} solved",
            c.seeded_functions, c.invalidated_functions, replayed, solved
        );
    }
}

fn cmd_batch(args: &[String]) -> Result<ExitCode, String> {
    let mut files: Vec<String> = Vec::new();
    let mut gen_count = 0usize;
    let mut channels = vec![4usize];
    let mut seeds: Option<Vec<u64>> = None;
    let mut timeout: Option<Duration> = None;
    let mut json = false;
    let mut workers = 0usize;
    let mut worker_cmd: Option<Vec<String>> = None;
    let mut connect: Vec<Endpoint> = Vec::new();
    let mut cache_wire = false;
    let mut retry_budget = 2u32;
    let mut crash_on: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut config = AnalysisConfig::default();
    let mut run = RunOptions::default();
    let mut i = 0;
    while i < args.len() {
        if run.try_parse(args, &mut i)? {
            i += 1;
            continue;
        }
        let a = &args[i];
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{a} needs a value"))
        };
        match a.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: astree batch [file.c...] [--gen N] [--channels N1,N2,...]\n\
                     \x20      [--seeds S1,S2,...] [--jobs N] [--timeout SECS]\n\
                     \x20      [--workers N] [--worker-cmd CMD] [--connect ADDR]\n\
                     \x20      [--retry-budget N] [--report FILE] [--analysis-jobs N]\n\
                     \x20      [--json] [--metrics FILE] [--metrics-stream FILE]\n\
                     \x20      [--trace] [--cache DIR] [--cache-wire]\n\
                     analyzes each input file, plus N generated family members\n\
                     (--gen, cycling --channels), as independent jobs; a panicking\n\
                     or timed-out job fails alone. --jobs N shards over N threads\n\
                     in this process; --workers N shards over N worker processes\n\
                     (spawned from --worker-cmd, default `astree worker --stdio`);\n\
                     --connect adds remote workers (unix:PATH or tcp:HOST:PORT,\n\
                     repeatable). Outcomes are reported in submission order and\n\
                     are identical for every worker count. --report writes the\n\
                     deterministic fleet report to FILE. --analysis-jobs\n\
                     additionally parallelizes inside each analysis; --cache\n\
                     shares one invariant store across all jobs and workers.\n\
                     --cache-wire syncs the store to worker processes over the\n\
                     fleet protocol instead of a shared directory (workers on\n\
                     other machines warm up without any shared filesystem).\n\
                     {RUN_OPTIONS_HELP}\n\
                     exit status: 0 = all jobs clean, 1 = alarms or failures"
                );
                return Ok(ExitCode::SUCCESS);
            }
            "--gen" => gen_count = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--channels" => channels = fleet::parse_channels(&value(&mut i)?)?,
            "--seeds" => {
                let v = value(&mut i)?;
                let parsed: Result<Vec<u64>, _> = v.split(',').map(|s| s.trim().parse()).collect();
                seeds = Some(parsed.map_err(|e| format!("--seeds: {e}"))?);
            }
            "--timeout" => {
                let secs: f64 = value(&mut i)?.parse().map_err(|e| format!("{e}"))?;
                timeout = Some(Duration::from_secs_f64(secs));
            }
            "--workers" => workers = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--worker-cmd" => {
                let cmd: Vec<String> =
                    value(&mut i)?.split_whitespace().map(str::to_string).collect();
                if cmd.is_empty() {
                    return Err("--worker-cmd: empty command".into());
                }
                worker_cmd = Some(cmd);
            }
            "--connect" => connect.push(Endpoint::parse(&value(&mut i)?)),
            "--cache-wire" => cache_wire = true,
            "--retry-budget" => {
                retry_budget = value(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--crash-on" => crash_on = Some(value(&mut i)?), // debug: crash-isolation tests
            "--report" => report_path = Some(value(&mut i)?),
            "--analysis-jobs" => {
                config.jobs = value(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--json" => json = true,
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    let threads = run.jobs.unwrap_or(2);

    let mut jobs: Vec<JobSpec> = Vec::new();
    for f in &files {
        let source = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        jobs.push(JobSpec::new(f.clone(), source));
    }
    let seeds = seeds.unwrap_or_else(|| (1..=gen_count as u64).collect());
    jobs.extend(fleet::generated_jobs(&channels, &seeds));
    if jobs.is_empty() {
        return Err("no jobs: give input files, --gen N, or --seeds".into());
    }

    let n = jobs.len();
    let store = run.open_store()?;
    let record = run.record();
    let collector = Arc::new(run.collector());
    let stream = run.open_stream()?;
    let mut builder = FleetSession::builder()
        .jobs(jobs)
        .config(config)
        .threads(threads)
        .workers(workers)
        .timeout(timeout)
        .retry_budget(retry_budget)
        .cache_wire(cache_wire)
        .crash_on(crash_on);
    if let Some(cmd) = worker_cmd {
        builder = builder.worker_cmd(cmd);
    }
    for endpoint in connect {
        builder = builder.connect(endpoint);
    }
    if let Some(store) = &store {
        builder = builder.cache(Arc::clone(store));
    }
    if record {
        builder = builder.recorder(run.recorder(&collector, &stream));
    }
    let report = builder.run();
    if let Some(sink) = &stream {
        sink.flush();
    }
    if record {
        run.finish(&collector)?;
    }
    if let Some(store) = &store {
        let c = store.counters();
        println!(
            "cache: {} full hit(s), {} miss(es), {} seeded, {} invalidated, {} corrupt file(s)",
            c.full_hits, c.misses, c.seeded_functions, c.invalidated_functions, c.corrupt_files
        );
    }
    if let Some(path) = &report_path {
        std::fs::write(path, report.stable_report()).map_err(|e| format!("{path}: {e}"))?;
    }
    if json {
        print!("{}", batch_report_json(&report));
    } else {
        let kind = if report.counters.processes { "worker process(es)" } else { "worker(s)" };
        println!("batch: {n} jobs on {} {kind}", report.workers);
        for o in &report.outcomes {
            match o.alarms {
                Some(a) => {
                    println!("  {:<24} {:>9} {:>4} alarm(s)  {:.2?}", o.name, o.status, a, o.wall)
                }
                None => println!(
                    "  {:<24} {:>9}  {}",
                    o.name,
                    o.status,
                    o.detail.as_deref().unwrap_or("-")
                ),
            }
        }
        println!(
            "wall {:.2?}, sequential cost {:.2?}, speedup {:.2}x",
            report.wall,
            report.total_job_time,
            report.speedup()
        );
        let c = &report.counters;
        if c.processes {
            println!(
                "fleet: {} steal(s), {} resent, {} crash(es), {} timeout(s), {} respawn(s), \
                 {} store hit(s)",
                c.steals, c.resent, c.crashes, c.timeouts, c.respawns, c.store_full_hits
            );
            if c.store_gets + c.store_puts > 0 {
                println!(
                    "  wire sync: {} file(s) shipped to workers, {} imported back, \
                     {} loop seed(s), {} cross-member hit(s)",
                    c.store_gets, c.store_puts, c.loops_seeded, c.seed_hits
                );
            }
        }
        for (w, pw) in c.per_worker.iter().enumerate() {
            println!(
                "  worker {w}: {} job(s), {} steal(s), busy {:.2?}",
                pw.jobs,
                pw.steals,
                Duration::from_nanos(pw.busy_nanos)
            );
        }
    }
    let clean = report.completed() == n && report.total_alarms() == 0;
    Ok(if clean { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn cmd_worker(args: &[String]) -> Result<ExitCode, String> {
    let mut endpoint: Option<Endpoint> = None;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{a} needs a value"))
        };
        match a.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: astree worker [--stdio | --socket PATH | --listen HOST:PORT]\n\
                     runs a fleet worker speaking astree-fleet/1: --stdio (default)\n\
                     serves one coordinator over stdin/stdout (how `astree batch\n\
                     --workers N` spawns local workers); --socket/--listen accept\n\
                     coordinator connections for `astree batch --connect`."
                );
                return Ok(ExitCode::SUCCESS);
            }
            "--stdio" => endpoint = None,
            "--socket" => endpoint = Some(Endpoint::Unix(value(&mut i)?.into())),
            "--listen" => endpoint = Some(Endpoint::Tcp(value(&mut i)?)),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    match endpoint {
        None => fleet::serve_stdio().map_err(|e| format!("worker: {e}"))?,
        Some(endpoint) => fleet::serve_listener(&endpoint).map_err(|e| format!("worker: {e}"))?,
    }
    Ok(ExitCode::SUCCESS)
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\t' => "\\t".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn batch_report_json(report: &fleet::FleetReport) -> String {
    let mut out = String::from("{\n  \"jobs\": [\n");
    for (i, o) in report.outcomes.iter().enumerate() {
        let alarms = o.alarms.map_or("null".to_string(), |a| a.to_string());
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"status\": \"{}\", \"alarms\": {}, \"wall_s\": {:.6}, \"worker\": {}, \"resent\": {}}}{}\n",
            json_escape(&o.name),
            o.status.slug(),
            alarms,
            o.wall.as_secs_f64(),
            o.worker,
            o.resent,
            if i + 1 < report.outcomes.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"workers\": {},\n", report.workers));
    out.push_str(&format!("  \"wall_s\": {:.6},\n", report.wall.as_secs_f64()));
    out.push_str(&format!(
        "  \"sequential_cost_s\": {:.6},\n",
        report.total_job_time.as_secs_f64()
    ));
    out.push_str(&format!("  \"speedup\": {:.4},\n", report.speedup()));
    let c = &report.counters;
    out.push_str(&format!(
        "  \"fleet\": {{\"processes\": {}, \"steals\": {}, \"resent\": {}, \"crashes\": {}, \
         \"timeouts\": {}, \"respawns\": {}, \"store_full_hits\": {}, \"store_gets\": {}, \
         \"store_puts\": {}, \"loops_seeded\": {}, \"seed_hits\": {}}},\n",
        c.processes,
        c.steals,
        c.resent,
        c.crashes,
        c.timeouts,
        c.respawns,
        c.store_full_hits,
        c.store_gets,
        c.store_puts,
        c.loops_seeded,
        c.seed_hits
    ));
    let per_worker: Vec<String> = c
        .per_worker
        .iter()
        .map(|w| {
            format!(
                "{{\"jobs\": {}, \"steals\": {}, \"busy_s\": {:.6}, \"ewma_nanos\": {}}}",
                w.jobs,
                w.steals,
                Duration::from_nanos(w.busy_nanos).as_secs_f64(),
                w.ewma_nanos
            )
        })
        .collect();
    out.push_str(&format!("  \"per_worker\": [{}]\n", per_worker.join(", ")));
    out.push_str("}\n");
    out
}

/// Parses the shared `--socket PATH` / `--listen`/`--connect ADDR` endpoint
/// flags; `addr_flag` names the TCP flag of the calling command.
fn parse_endpoint_flag(
    args: &[String],
    i: &mut usize,
    addr_flag: &str,
    endpoint: &mut Endpoint,
) -> Result<bool, String> {
    let a = &args[*i];
    if a == "--socket" {
        *i += 1;
        let path = args.get(*i).ok_or("--socket needs a value")?;
        *endpoint = Endpoint::Unix(path.into());
        Ok(true)
    } else if a == addr_flag {
        *i += 1;
        let addr = args.get(*i).ok_or_else(|| format!("{addr_flag} needs a value"))?;
        *endpoint = Endpoint::Tcp(addr.clone());
        Ok(true)
    } else {
        Ok(false)
    }
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut endpoint = Endpoint::default_socket();
    let mut opts = ServeOptions::default();
    let mut i = 0;
    while i < args.len() {
        if parse_endpoint_flag(args, &mut i, "--listen", &mut endpoint)? {
            i += 1;
            continue;
        }
        let a = &args[i];
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{a} needs a value"))
        };
        match a.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: astree serve [--socket PATH | --listen HOST:PORT]\n\
                     \x20      [--jobs N] [--max-inflight N] [--cache DIR]\n\
                     runs the resident analysis daemon: one warm worker pool\n\
                     (--jobs) and one shared invariant store (--cache) serve\n\
                     every request; past --max-inflight concurrent requests\n\
                     new ones are rejected with `overloaded`. The default\n\
                     endpoint is a Unix socket in the temp directory; see\n\
                     `astree client --help` for talking to it.\n\
                     exit status: 0 after a clean `shutdown` request"
                );
                return Ok(ExitCode::SUCCESS);
            }
            "--jobs" => opts.jobs = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--max-inflight" => {
                opts.max_inflight = value(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--cache" => opts.cache_dir = Some(value(&mut i)?.into()),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    let (jobs, max_inflight) = (opts.jobs, opts.max_inflight);
    let server = Server::bind(endpoint, opts).map_err(|e| format!("bind: {e}"))?;
    println!(
        "astree serve: listening on {} ({jobs} analysis worker(s), max {max_inflight} in flight)",
        server.endpoint()
    );
    server.serve().map_err(|e| format!("serve: {e}"))?;
    println!("astree serve: shut down cleanly");
    Ok(ExitCode::SUCCESS)
}

fn cmd_client(args: &[String]) -> Result<ExitCode, String> {
    let mut endpoint = Endpoint::default_socket();
    let mut files = Vec::new();
    let mut status = false;
    let mut shutdown = false;
    let mut show_events = false;
    let mut events_mode: Option<&'static str> = None;
    let mut dump_invariant = false;
    let mut show_census = false;
    let mut i = 0;
    while i < args.len() {
        if parse_endpoint_flag(args, &mut i, "--connect", &mut endpoint)? {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: astree client [--socket PATH | --connect HOST:PORT]\n\
                     \x20      [<file.c>...] [--census] [--dump-invariant]\n\
                     \x20      [--events none|coarse|all] [--show-events]\n\
                     \x20      [--status] [--shutdown]\n\
                     sends each file to a running `astree serve` daemon and\n\
                     prints the verdict exactly as `astree analyze` would;\n\
                     --show-events mirrors streamed astree-events/1 records\n\
                     to stderr. --status and --shutdown talk to the daemon\n\
                     itself (after any file analyses).\n\
                     exit status: 0 = all proven error-free, 1 = alarms,\n\
                     2 = transport or daemon error"
                );
                return Ok(ExitCode::SUCCESS);
            }
            "--status" => status = true,
            "--shutdown" => shutdown = true,
            "--show-events" => show_events = true,
            "--events" => {
                i += 1;
                events_mode = Some(match args.get(i).map(|s| s.as_str()) {
                    Some("none") => "none",
                    Some("coarse") => "coarse",
                    Some("all") => "all",
                    other => return Err(format!("--events: unknown mode {other:?}")),
                });
            }
            "--dump-invariant" => dump_invariant = true,
            "--census" => show_census = true,
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    if files.is_empty() && !status && !shutdown {
        return Err("nothing to do: give input files, --status or --shutdown".into());
    }
    let mut client =
        Client::connect(&endpoint).map_err(|e| format!("connect to {endpoint}: {e}"))?;
    let mut alarmed = false;
    for f in &files {
        let source = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        let req = AnalyzeRequest {
            source,
            events: events_mode.or(if show_events { Some("coarse") } else { Some("none") }),
            ..AnalyzeRequest::default()
        };
        let outcome = match client.analyze(&req) {
            Ok(o) => o,
            Err(ClientError::Server { code, message }) => {
                return Err(format!("{f}: daemon answered {code}: {message}"))
            }
            Err(e) => return Err(format!("{f}: {e}")),
        };
        if show_events {
            for ev in &outcome.events {
                eprintln!("{}", ev.to_compact());
            }
        }
        if show_census {
            if let Some(c) = &outcome.main_census {
                println!("\nmain loop invariant census:\n{c}");
            }
        }
        if dump_invariant {
            if let Some(inv) = &outcome.main_invariant {
                println!("\nmain loop invariant:\n{inv}");
            }
        }
        if outcome.alarms.is_empty() {
            println!("\nno alarms: the program is proven free of run-time errors");
        } else {
            alarmed = true;
            println!("\n{} alarm(s):", outcome.alarms.len());
            for a in &outcome.alarms {
                println!("  {a}");
            }
        }
    }
    if status {
        let frame = client.status().map_err(|e| format!("status: {e}"))?;
        println!("{frame}");
    }
    if shutdown {
        client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        println!("daemon shut down");
    }
    Ok(if alarmed { ExitCode::from(1) } else { ExitCode::SUCCESS })
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let mut files = Vec::new();
    let mut seed = 1u64;
    let mut ticks = 1000u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("usage: astree run <file.c>... [--seed N] [--ticks N]");
                return Ok(ExitCode::SUCCESS);
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--ticks" => {
                i += 1;
                ticks = args
                    .get(i)
                    .ok_or("--ticks needs a value")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    let program = compile(&files)?;
    let mut inputs = SeededInputs::new(seed);
    let mut interp =
        Interp::new(&program, InterpConfig { max_steps: u64::MAX, max_ticks: ticks }, &mut inputs);
    match interp.run() {
        Ok(()) => {
            println!("completed {} clock ticks", interp.ticks());
            if interp.events().is_empty() {
                println!("no run-time events");
                Ok(ExitCode::SUCCESS)
            } else {
                println!("{} recoverable events:", interp.events().len());
                for (stmt, e) in interp.events() {
                    println!("  stmt {}: {e:?}", stmt.0);
                }
                Ok(ExitCode::from(1))
            }
        }
        Err(e) => {
            println!("run-time error after {} ticks: {e}", interp.ticks());
            Ok(ExitCode::from(1))
        }
    }
}

fn cmd_slice(args: &[String]) -> Result<ExitCode, String> {
    let mut files = Vec::new();
    let mut abstract_slice = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: astree slice <file.c>... [--abstract]\n\
                     analyzes the program and prints the backward slice of \
                     each alarm point; --abstract restricts the slice to the \
                     variables the invariant knows too little about \
                     (paper Sect. 3.3)"
                );
                return Ok(ExitCode::SUCCESS);
            }
            "--abstract" => abstract_slice = true,
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    let program = compile(&files)?;
    let result = AnalysisSession::builder(&program).build().run();
    if result.alarms.is_empty() {
        println!("no alarms to slice");
        return Ok(ExitCode::SUCCESS);
    }
    let interesting = if abstract_slice {
        result.main_invariant.as_ref().map(|inv| {
            let layout =
                astree::memory::CellLayout::new(&program, &astree::memory::LayoutConfig::default());
            astree::core::under_constrained_vars(inv, &layout, 1e6)
        })
    } else {
        None
    };
    let slicer = Slicer::new(&program);
    for alarm in &result.alarms {
        let slice = match &interesting {
            Some(vars) => slicer.slice_restricted(alarm.stmt, vars),
            None => slicer.slice(alarm.stmt),
        };
        println!(
            "{alarm}\n  slice: {} of {} statements ({:.0}%)",
            slice.len(),
            slice.total_stmts,
            100.0 * slice.coverage()
        );
    }
    Ok(ExitCode::from(1))
}

fn cmd_generate(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = GenConfig::default();
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: astree generate [--channels N] [--seed N] \
                     [--bug div0|oob|overflow] [-o FILE]"
                );
                return Ok(ExitCode::SUCCESS);
            }
            "--channels" => {
                i += 1;
                cfg.channels = args
                    .get(i)
                    .ok_or("--channels needs a value")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--bug" => {
                i += 1;
                cfg.bug = Some(match args.get(i).map(|s| s.as_str()) {
                    Some("div0") => BugKind::DivByZero,
                    Some("oob") => BugKind::OutOfBounds,
                    Some("overflow") => BugKind::IntOverflow,
                    other => return Err(format!("unknown bug kind {other:?}")),
                });
            }
            "-o" | "--output" => {
                i += 1;
                out = Some(args.get(i).ok_or("-o needs a value")?.clone());
            }
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    let src = generate(&cfg);
    match out {
        Some(path) => std::fs::write(&path, &src).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{src}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_fuzz(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = OracleConfig::default();
    let mut report: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut quiet = false;
    let mut threads = 1usize;
    let mut workers = 0usize;
    let mut worker_cmd: Option<Vec<String>> = None;
    let mut connect: Vec<Endpoint> = Vec::new();
    let mut cache_dir: Option<String> = None;
    let mut cache_wire = false;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{a} needs a value"))
        };
        match a.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: astree fuzz [--members N] [--seeds N] [--ticks N]\n\
                     \x20      [--channels-max N] [--no-bugs] [--no-shrink] [--quiet]\n\
                     \x20      [--jobs N] [--workers N] [--worker-cmd CMD] [--connect ADDR]\n\
                     \x20      [--cache DIR] [--cache-wire]\n\
                     \x20      [--report FILE] [--baseline FILE]\n\
                     Generates a corpus of family members, analyzes each with\n\
                     per-statement invariant collection, then fuzzes the concrete\n\
                     interpreter against the claimed invariants: every observed\n\
                     concrete state must lie inside the abstract one, and every\n\
                     concrete run-time error must be covered by an alarm of the\n\
                     same kind at the same statement. Counterexamples are shrunk\n\
                     (fewest channels, smallest seed, earliest tick) and reported\n\
                     through the astree-campaign/1 JSON schema. Members are fleet\n\
                     jobs: --jobs shards over threads, --workers over worker\n\
                     processes, --connect over remote workers; the campaign is\n\
                     identical for every sharding. --cache warms member analyses\n\
                     from a shared invariant store; --cache-wire ships it to\n\
                     workers over the fleet protocol (no shared filesystem).\n\
                     --baseline FILE adds an alarm-census delta vs a prior report\n\
                     exit status: 0 = no divergence, 1 = divergences found"
                );
                return Ok(ExitCode::SUCCESS);
            }
            "--members" => cfg.members = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--seeds" => cfg.seeds = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--ticks" => cfg.ticks = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--channels-max" => {
                cfg.channels_max = value(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--no-bugs" => cfg.include_bugs = false,
            "--no-shrink" => cfg.shrink = false,
            "--quiet" => quiet = true,
            "--jobs" => threads = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => workers = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--worker-cmd" => {
                let cmd: Vec<String> =
                    value(&mut i)?.split_whitespace().map(str::to_string).collect();
                if cmd.is_empty() {
                    return Err("--worker-cmd: empty command".into());
                }
                worker_cmd = Some(cmd);
            }
            "--connect" => connect.push(Endpoint::parse(&value(&mut i)?)),
            "--cache" => cache_dir = Some(value(&mut i)?),
            "--cache-wire" => cache_wire = true,
            "--report" => report = Some(value(&mut i)?),
            "--baseline" => baseline = Some(value(&mut i)?),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    let base_json = match &baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Some(astree::obs::Json::parse(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    let jobs = fleet::campaign_jobs(&cfg);
    let mut builder = FleetSession::builder()
        .jobs(jobs.clone())
        .config(cfg.analysis.clone())
        .threads(threads)
        .workers(workers)
        .cache_wire(cache_wire);
    if let Some(dir) = &cache_dir {
        let store =
            astree::core::InvariantStore::open(dir).map_err(|e| format!("--cache {dir}: {e}"))?;
        builder = builder.cache(Arc::new(store));
    }
    if let Some(cmd) = worker_cmd {
        builder = builder.worker_cmd(cmd);
    }
    for endpoint in connect {
        builder = builder.connect(endpoint);
    }
    let fleet_report = builder.run();
    if !quiet {
        for o in &fleet_report.outcomes {
            match &o.oracle {
                Some(outcome) => {
                    let verdict = if outcome.divergences.is_empty() { "ok" } else { "DIVERGED" };
                    println!(
                        "{:24} {} executions, {} states checked, {} alarms: {verdict}",
                        o.name,
                        outcome.executions,
                        outcome.states_checked,
                        outcome.alarms.values().sum::<u64>(),
                    );
                }
                None => {
                    println!("{:24} {}: {}", o.name, o.status, o.detail.as_deref().unwrap_or("-"))
                }
            }
        }
    }
    let campaign = fleet::campaign_from_outcomes(&jobs, &fleet_report.outcomes);
    for d in &campaign.divergences {
        let what = match &d.kind {
            DivergenceKind::Escape { cell, value, abs } => {
                format!("cell {cell} = {value} escapes {abs}")
            }
            DivergenceKind::Unreachable => "reached a claimed-unreachable statement".to_string(),
            DivergenceKind::MissedError { kind } => format!("uncovered {kind} error"),
        };
        eprintln!(
            "divergence: {} seed {} stmt {} tick {}: {what}",
            d.member.label(),
            d.exec_seed,
            d.stmt,
            d.tick
        );
    }
    println!(
        "campaign: {} members, {} executions, {} states checked, {} divergences",
        campaign.members,
        campaign.executions,
        campaign.states_checked,
        campaign.divergences.len()
    );
    let json = campaign_to_json(&campaign, base_json.as_ref());
    if let Some(path) = report {
        let mut text = json.to_compact();
        text.push('\n');
        std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(if campaign.divergences.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}
