//! Facade crate re-exporting the whole analyzer workspace.
//!
//! This reproduces the PLDI 2003 ASTRÉE analyzer: an abstract-interpretation
//! static analyzer proving the absence of run-time errors in periodic
//! synchronous C programs. See the individual crates for the pieces:
//!
//! - [`pmap`] — persistent maps with structural sharing (Sect. 6.1.2)
//! - [`float`] — sound directed-rounding float primitives (Sect. 6.2.1)
//! - [`ir`] — the typed intermediate representation and concrete interpreter
//! - [`frontend`] — C-subset lexer/preprocessor/parser/typechecker (Sect. 5.1)
//! - [`domains`] — intervals, clocked, octagons, ellipsoids, decision trees,
//!   linearization (Sect. 6.2–6.3)
//! - [`memory`] — the memory abstract domain (Sect. 6.1)
//! - [`core`] — the iterator, fixpoint engine, packing, alarms (Sect. 5, 7)
//! - [`slicer`] — backward slicing for alarm inspection (Sect. 3.3)
//! - [`gen`] — the synthetic periodic synchronous program family (Sect. 4)
//! - [`sched`] — the parallel & batch scheduler (deterministic slice merge
//!   à la Monniaux's parallel ASTRÉE, plus bounded-worker fleet batches)
//! - [`obs`] — structured analysis telemetry (recorder, metrics schema)
//! - [`serve`] — the resident analysis service (warm pool, shared invariant
//!   store, `astree-serve/1` wire protocol)
//! - [`oracle`] — the differential soundness oracle (corpus fuzzing of
//!   concrete executions against claimed invariants, `astree-campaign/1`)
//! - [`fleet`] — distributed fleet sharding: the process-level coordinator
//!   with work stealing and a shared warm store, behind the unified
//!   `FleetSession` API (`astree-fleet/1` wire protocol)
//! - [`options`] — the shared CLI run options (`--jobs`, `--metrics`,
//!   `--trace`, `--cache`)

pub mod options;

pub use astree_core as core;
pub use astree_domains as domains;
pub use astree_fleet as fleet;
pub use astree_float as float;
pub use astree_frontend as frontend;
pub use astree_gen as gen;
pub use astree_ir as ir;
pub use astree_memory as memory;
pub use astree_obs as obs;
pub use astree_oracle as oracle;
pub use astree_pmap as pmap;
pub use astree_sched as sched;
pub use astree_serve as serve;
pub use astree_slicer as slicer;
