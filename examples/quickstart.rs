//! Quickstart: compile a small reactive C program and prove it free of
//! run-time errors.
//!
//! Run with `cargo run --example quickstart`.

use astree::core::AnalysisSession;
use astree::frontend::Frontend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miniature member of the program family (paper Sect. 4): read a
    // bounded sensor, filter it, count events, wait for the next tick.
    let source = r#"
        volatile double sensor;       /* hardware input, range set below */
        volatile int event;
        double filtered;
        int event_count;
        double level;

        double clamp(double v, double lo, double hi) {
            if (v < lo) { return lo; }
            if (v > hi) { return hi; }
            return v;
        }

        void main(void) {
            __astree_input_float(sensor, -10.0, 10.0);
            __astree_input_int(event, 0, 1);
            filtered = 0.0;
            level = 0.0;
            event_count = 0;
            while (1) {
                /* contracting smoothing update (linearization keeps it
                   bounded despite the repeated x on both sides) */
                filtered = filtered - 0.25 * filtered + sensor;
                level = clamp(filtered, -50.0, 50.0);
                if (event == 1) { event_count = event_count + 1; }
                __astree_wait();
            }
        }
    "#;

    // Compile (preprocess, parse, typecheck, lower, simplify).
    let program = Frontend::new().compile_str(source)?;
    println!("compiled: {}", program.metrics());

    // Analyze with the full domain stack and default parameters.
    let result = AnalysisSession::builder(&program).build().run();

    println!(
        "analysis: {:?} iterate + {:?} check, {} cells, {} octagon packs",
        result.stats.time_iterate,
        result.stats.time_check,
        result.stats.cells,
        result.stats.octagon_packs,
    );

    if result.alarms.is_empty() {
        println!("proved: no run-time error is possible under the stated input ranges");
    } else {
        println!("{} alarm(s):", result.alarms.len());
        for alarm in &result.alarms {
            println!("  {alarm}");
        }
    }

    if let Some(census) = &result.main_census {
        println!("\nmain loop invariant census:\n{census}");
    }
    Ok(())
}
