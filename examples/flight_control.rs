//! Analyze a full synthetic flight-control-style program: the paper's
//! headline experiment in miniature (Sect. 8).
//!
//! Generates a member of the periodic synchronous program family, then
//! analyzes it twice: once with the baseline analyzer the paper started
//! from (intervals + clocked domain, [5]) and once with the fully refined
//! domain stack — reproducing the "1,200 alarms → 11 (even 3)" collapse on
//! our synthetic family, where the refined analyzer reaches zero.
//!
//! Run with `cargo run --release --example flight_control`.

use astree::core::{AnalysisConfig, AnalysisSession};
use astree::frontend::Frontend;
use astree::gen::{generate, GenConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GenConfig { channels: 64, seed: 2003, bug: None };
    let source = generate(&cfg);
    println!(
        "generated controller: {} channels, {} lines of C",
        cfg.channels,
        astree::gen::line_count(&source)
    );

    let program = Frontend::new().compile_str(&source)?;
    println!("compiled: {}", program.metrics());

    // The baseline analyzer the paper started from ([5]).
    let t0 = std::time::Instant::now();
    let baseline =
        AnalysisSession::builder(&program).config(AnalysisConfig::baseline()).build().run();
    println!(
        "\nbaseline (intervals + clock):  {:>4} alarms   ({:.2?})",
        baseline.alarms.len(),
        t0.elapsed()
    );
    let mut by_kind = std::collections::BTreeMap::new();
    for a in &baseline.alarms {
        *by_kind.entry(a.kind).or_insert(0usize) += 1;
    }
    for (kind, n) in &by_kind {
        println!("    {n:>4} × {kind}");
    }

    // The refined analyzer (Sect. 6-7 domain stack).
    let t0 = std::time::Instant::now();
    let refined = AnalysisSession::builder(&program).build().run();
    println!(
        "\nrefined (full domain stack):   {:>4} alarms   ({:.2?})",
        refined.alarms.len(),
        t0.elapsed()
    );
    for a in &refined.alarms {
        println!("    {a}");
    }

    println!(
        "\npacks: {} octagons ({} useful), {} decision trees, {} filters",
        refined.stats.octagon_packs,
        refined.stats.useful_octagon_packs.len(),
        refined.stats.dtree_packs,
        refined.stats.ellipse_packs,
    );
    if let Some(census) = &refined.main_census {
        println!("\nmain loop invariant census (cf. paper Sect. 9.4.1):\n{census}");
    }

    // Packing optimization (Sect. 7.2.2): re-run with only the useful packs.
    let mut optimized = AnalysisConfig::default();
    optimized.octagon_pack_filter = Some(refined.stats.useful_octagon_packs.clone());
    let t0 = std::time::Instant::now();
    let rerun = AnalysisSession::builder(&program).config(optimized).build().run();
    println!(
        "\npacking-optimized re-run: {} packs instead of {}, {} alarms ({:.2?})",
        rerun.stats.octagon_packs,
        refined.stats.octagon_packs,
        rerun.alarms.len(),
        t0.elapsed()
    );
    Ok(())
}
