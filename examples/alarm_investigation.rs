//! Alarm investigation workflow (paper Sect. 3.3): inject a real defect,
//! let the analyzer report it, confirm it concretely with the reference
//! interpreter, and extract the backward slice from the alarm point.
//!
//! Run with `cargo run --example alarm_investigation`.

use astree::core::AnalysisSession;
use astree::frontend::Frontend;
use astree::gen::{generate, BugKind, GenConfig};
use astree::ir::{Interp, InterpConfig, SeededInputs};
use astree::slicer::Slicer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small controller with an injected division-by-zero.
    let source = generate(&GenConfig { channels: 2, seed: 99, bug: Some(BugKind::DivByZero) });
    let program = Frontend::new().compile_str(&source)?;

    // 1. The analyzer reports the defect (and nothing else on this family).
    let result = AnalysisSession::builder(&program).build().run();
    println!("{} alarm(s):", result.alarms.len());
    for alarm in &result.alarms {
        println!("  {alarm}");
    }
    let alarm = result.alarms.first().expect("the injected bug must be reported");

    // 2. Confirm it concretely: drive the interpreter until the error fires.
    let mut fired = None;
    for seed in 0..200 {
        let mut inputs = SeededInputs::new(seed);
        let mut interp = Interp::new(
            &program,
            InterpConfig { max_steps: 10_000_000, max_ticks: 100 },
            &mut inputs,
        );
        if let Err(e) = interp.run() {
            fired = Some((seed, e));
            break;
        }
    }
    match &fired {
        Some((seed, e)) => println!("\nconcretely confirmed with input seed {seed}: {e}"),
        None => println!("\n(no concrete witness found in 200 seeds — alarm may be false)"),
    }

    // 3. Slice backward from the alarm point to the computations feeding it.
    let slicer = Slicer::new(&program);
    let slice = slicer.slice(alarm.stmt);
    println!(
        "\nbackward slice from the alarm: {} of {} statements ({:.0}% of the program)",
        slice.len(),
        slice.total_stmts,
        100.0 * slice.coverage()
    );
    println!(
        "(the paper notes classical slices are 'prohibitively large'; abstract \
         slices restricted to under-constrained variables are the proposed fix)"
    );
    Ok(())
}
