//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, dependency-free implementation with the same trait/item names:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen_range` over
//! integer ranges and `f64` half-open ranges.
//!
//! The generator is a SplitMix64 stream. It is deterministic per seed and
//! stable across platforms and releases of this workspace, which is exactly
//! what `astree-gen` needs: the same seed must produce a byte-identical
//! program forever (the generated corpus doubles as a regression suite).
//! It makes no statistical or cryptographic claims beyond that.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of type `T` from a range-like specification.
pub trait SampleRange<T> {
    /// Draws one sample using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        // 53 uniform mantissa bits in [0, 1).
        let frac = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + frac * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        let frac = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + frac * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (integer ranges or `f64`/`f32`
    /// half-open ranges).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Samples a bool with probability 1/2.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
            assert_eq!(a.gen_range(0.0..1.0f64).to_bits(), b.gen_range(0.0..1.0f64).to_bits());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(1..=10);
            assert!((1..=10).contains(&v));
            let f = rng.gen_range(0.05..0.4f64);
            assert!((0.05..0.4).contains(&f));
            let u: usize = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<i64> = (0..8).map(|_| a.gen_range(0..i64::MAX)).collect();
        let vb: Vec<i64> = (0..8).map(|_| b.gen_range(0..i64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
