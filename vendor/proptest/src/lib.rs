//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, dependency-free property-testing harness exposing the same item
//! names and macro grammar as upstream: the `proptest!` macro (with an
//! optional `#![proptest_config(..)]` head and `pat in strategy` argument
//! bindings), `Strategy` with `prop_map`/`prop_filter`/`prop_recursive`/
//! `boxed`, `prop_oneof!`, `Just`, `any::<T>()`, range strategies,
//! `prop::collection::{vec, btree_set}`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! - no shrinking: a failing case panics with the generated inputs' debug
//!   representation instead of a minimized counterexample;
//! - generation is derived deterministically from the test's module path and
//!   name, so runs are reproducible without a `proptest-regressions` file;
//! - value distributions are simple uniforms, not upstream's biased ones.

/// Test-runner types: configuration, RNG, and case-level error plumbing.
pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`/`prop_filter` and should
        /// be retried with fresh inputs.
        Reject(String),
        /// The property failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A rejection with a reason.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }

        /// A failure with a message.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }
    }

    /// Per-test configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run.
        pub cases: u32,
        /// Upper bound on rejected cases before the test aborts.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases, ..ProptestConfig::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256, max_global_rejects: 65536 }
        }
    }

    /// Deterministic SplitMix64 stream seeded from a test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `name` (typically
        /// `module_path!()::test_name`), so every run of a given test sees
        /// the same cases.
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the name picks the stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform fraction in `[0, 1)` with 53 bits.
        pub fn fraction(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies and combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Upstream's strategies produce shrinkable value trees; this stand-in
    /// generates plain values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `f`; other draws are retried.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence: whence.into(), f }
        }

        /// Builds a recursive strategy: `recurse` receives a strategy for
        /// sub-values and returns the composite level. `depth` bounds the
        /// nesting; the size/branch hints are accepted for API compatibility
        /// but not interpreted.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf: BoxedStrategy<Self::Value> = self.clone().boxed();
            let mut cur: BoxedStrategy<Self::Value> = self.boxed();
            for _ in 0..depth {
                // Mix the leaf back in at every level so generated depths vary.
                let sub = Union::new(vec![leaf.clone(), cur]).boxed();
                cur = recurse(sub).boxed();
            }
            cur
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(pub(crate) Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_filter` combinator.
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: String,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 10000 consecutive draws", self.whence);
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { arms: self.arms.clone() }
        }
    }

    impl<T> Union<T> {
        /// A union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.fraction() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.fraction() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` — a canonical strategy per type.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value of the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Raw bit patterns cover the whole representable domain,
            // including infinities, NaNs, and subnormals.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits((rng.next_u64() >> 32) as u32)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::{vec, btree_set}`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size specification: exact or a range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.lo == self.hi {
                self.lo
            } else {
                self.lo + rng.below(self.hi - self.lo + 1)
            }
        }
    }

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set below the target, matching
            // upstream's "up to" semantics; cap the attempts so narrow
            // element domains still terminate.
            for _ in 0..target.saturating_mul(10).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.elem.generate(rng));
            }
            out
        }
    }

    /// A set of up to `size` elements drawn from `elem`.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size: size.into() }
    }
}

/// Everything a `proptest!` test module needs, matching upstream's prelude.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// `BoxedStrategy` appears in user type annotations; re-export the rest of the
// commonly pathed names at the crate root like upstream does.
pub use arbitrary::any;
pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

#[doc(hidden)]
pub fn __run_case(
    result: Result<(), test_runner::TestCaseError>,
    accepted: &mut u32,
    rejected: &mut u32,
    config: &test_runner::ProptestConfig,
    case_names: &str,
) {
    match result {
        Ok(()) => *accepted += 1,
        Err(test_runner::TestCaseError::Reject(_)) => {
            *rejected += 1;
            if *rejected > config.max_global_rejects {
                panic!("proptest: too many rejected cases ({})", rejected);
            }
        }
        Err(test_runner::TestCaseError::Fail(msg)) => {
            panic!(
                "proptest case failed (case {} of a deterministic stream; inputs: {}):\n{}",
                *accepted + 1,
                case_names,
                msg
            );
        }
    }
}

/// Property-test entry macro; same surface grammar as upstream.
#[macro_export]
macro_rules! proptest {
    // With a config head.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    // Without a config head.
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                #[allow(unreachable_code)]
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                $crate::__run_case(
                    __result,
                    &mut __accepted,
                    &mut __rejected,
                    &__config,
                    concat!($(stringify!($pat in $strat), "; "),+),
                );
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Asserts inside a proptest body; failure fails only the current case
/// context (here: the whole test, since this stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        match (&$a, &$b) {
            (__pa, __pb) => {
                if !(*__pa == *__pb) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                            stringify!($a),
                            stringify!($b),
                            __pa,
                            __pb
                        )),
                    );
                }
            }
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        match (&$a, &$b) {
            (__pa, __pb) => {
                if !(*__pa == *__pb) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+),
                            __pa,
                            __pb
                        )),
                    );
                }
            }
        }
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        match (&$a, &$b) {
            (__pa, __pb) => {
                if *__pa == *__pb {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: {} != {}\n  both: {:?}",
                            stringify!($a),
                            stringify!($b),
                            __pa
                        ),
                    ));
                }
            }
        }
    }};
}

/// Rejects the current case (retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = i64> {
        prop_oneof![-5i64..5, Just(100i64)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_in_bounds(x in 0i64..10, (a, b) in (0u8..4, 0u8..4)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(a < 4 && b < 4);
        }

        #[test]
        fn assume_retries(x in 0i64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn oneof_and_collections(v in prop::collection::vec(small(), 0..8),
                                 s in prop::collection::btree_set(0u16..16, 0..8)) {
            prop_assert!(v.len() < 8);
            for x in &v {
                prop_assert!((-5..5).contains(x) || *x == 100);
            }
            prop_assert!(s.len() < 8);
        }

        #[test]
        fn map_filter_recursive(x in small().prop_map(|v| v * 2).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(x % 2, 0, "{} is odd", x);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("some::test");
        let mut b = TestRng::deterministic("some::test");
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn boxed_recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (-10i64..10).prop_map(Tree::Leaf).boxed();
        let tree = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::deterministic("tree");
        for _ in 0..100 {
            let t = tree.generate(&mut rng);
            assert!(depth(&t) <= 16);
        }
    }
}
