//! Offline stand-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, dependency-free timing harness with the same item names:
//! `Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Compared to upstream it performs a short calibration followed by a small
//! fixed number of timed samples and prints median/min/max per benchmark —
//! no statistical analysis, outlier detection, HTML reports, or baselines.
//! Benchmarks stay runnable (`cargo bench`) and comparable run-to-run on
//! the same machine, which is all the workspace's perf-trajectory scripts
//! need.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies a benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// A benchmark `name` at parameter `param` (rendered `name/param`).
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: name.into(), param: Some(param.to_string()) }
    }

    /// A benchmark identified by parameter only (rendered under the group).
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: String::new(), param: Some(param.to_string()) }
    }

    fn render(&self) -> String {
        match (&self.name[..], &self.param) {
            ("", Some(p)) => p.clone(),
            (n, Some(p)) => format!("{}/{}", n, p),
            (n, None) => n.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId { name: name.to_string(), param: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { name, param: None }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample mean durations, filled by `iter`.
    results: Vec<Duration>,
}

impl Bencher {
    /// Calibrates an iteration count (~10 ms per sample), then times
    /// `samples` batches of the closure.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibrate: grow the batch until it costs >= ~5 ms.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.results.clear();
        for _ in 0..self.samples.max(1) {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.results.push(t0.elapsed() / batch as u32);
        }
    }

    fn report(&self, label: &str) {
        if self.results.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut sorted = self.results.clone();
        sorted.sort();
        let med = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!("{label:<40} median {med:>12?}   [{min:?} .. {max:?}]");
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 50);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher { samples: self.samples, results: Vec::new() };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.render()));
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: self.samples, results: Vec::new() };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.render()));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts CLI arguments for compatibility; filtering is not
    /// implemented, every benchmark runs.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: 10, _criterion: self }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: 10, results: Vec::new() };
        f(&mut b);
        b.report(&id.render());
        self
    }
}

/// Re-export for benches that import `black_box` from criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("tiny");
        g.sample_size(2);
        g.bench_function("add", |b| b.iter(|| 1u64.wrapping_add(2)));
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &n| b.iter(|| n.wrapping_mul(7)));
        g.finish();
        c.bench_function("free", |b| b.iter(|| black_box(42)));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        tiny_bench(&mut c);
    }
}
