//! Determinism of the parallel analysis (Monniaux's partition-and-join
//! scheme): for every program of the family and every worker count, the
//! parallel analyzer must produce **bit-identical** results to the
//! sequential one — the same alarm list (order included) and the same main
//! loop invariant.

use astree::core::{AnalysisConfig, AnalysisResult, AnalysisSession};
use astree::fleet::{FleetSession, JobSpec, JobStatus};
use astree::frontend::Frontend;
use astree::gen::{generate, BugKind, GenConfig};
use std::time::Duration;

fn run_with_jobs(src: &str, jobs: usize) -> AnalysisResult {
    let p = Frontend::new().compile_str(src).expect("compiles");
    let mut cfg = AnalysisConfig::default();
    cfg.jobs = jobs;
    AnalysisSession::builder(&p).config(cfg).build().run()
}

/// Asserts bit-identical observables between a sequential and a parallel
/// run: alarm lists compare by full value (statement, location, kind,
/// context, order), invariants both by their assertion census and by their
/// rendered text — every bound byte-identical, signed zeros included (the
/// joins use total-order min/max, so they are bitwise-commutative).
fn assert_equivalent(name: &str, seq: &AnalysisResult, par: &AnalysisResult, jobs: usize) {
    assert_eq!(seq.alarms, par.alarms, "{name}: alarm list differs between jobs=1 and jobs={jobs}");
    assert_eq!(
        seq.main_census, par.main_census,
        "{name}: main-loop invariant census differs between jobs=1 and jobs={jobs}"
    );
    assert_eq!(
        seq.main_invariant.as_ref().map(|s| s.to_string()),
        par.main_invariant.as_ref().map(|s| s.to_string()),
        "{name}: rendered main-loop invariant differs between jobs=1 and jobs={jobs}"
    );
    assert_eq!(seq.stats.loop_iterations, par.stats.loop_iterations, "{name}: widening schedule");
    assert_eq!(seq.stats.useful_octagon_packs, par.stats.useful_octagon_packs, "{name}");
}

/// A mixed-scale corpus: clean programs of several sizes and seeds, plus one
/// variant per injected bug kind.
fn corpus() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (channels, seed) in [(1usize, 1u64), (2, 7), (4, 3), (6, 42)] {
        let cfg = GenConfig { channels, seed, bug: None };
        out.push((format!("clean-c{channels}-s{seed}"), generate(&cfg)));
    }
    for (bug, tag) in
        [(BugKind::DivByZero, "div"), (BugKind::OutOfBounds, "oob"), (BugKind::IntOverflow, "ovf")]
    {
        let cfg = GenConfig { channels: 3, seed: 11, bug: Some(bug) };
        out.push((format!("bug-{tag}-c3-s11"), generate(&cfg)));
    }
    out
}

#[test]
fn parallel_analysis_is_bit_identical_to_sequential() {
    let programs = corpus();
    assert!(programs.len() >= 5);
    let mut sliced_somewhere = false;
    for (name, src) in &programs {
        let seq = run_with_jobs(src, 1);
        assert_eq!(seq.stats.parallel_stages, 0, "{name}: sequential run must not slice");
        for jobs in [2usize, 4, 8] {
            let par = run_with_jobs(src, jobs);
            assert_equivalent(name, &seq, &par, jobs);
            sliced_somewhere |= par.stats.parallel_slices > 0;
        }
    }
    // The corpus must actually exercise the parallel path, not just fall
    // back to sequential execution everywhere.
    assert!(sliced_somewhere, "no program in the corpus ran any parallel slice");
}

#[test]
fn parallel_analysis_slices_the_channel_dispatch() {
    // Independent channels make the synchronous loop's dispatch sliceable.
    let src = generate(&GenConfig { channels: 6, seed: 42, bug: None });
    let par = run_with_jobs(&src, 4);
    assert!(
        par.stats.parallel_slices >= 2,
        "expected the 6-channel dispatch to slice, got {} slices over {} stages",
        par.stats.parallel_slices,
        par.stats.parallel_stages
    );
}

#[test]
fn forced_steal_orders_do_not_change_results() {
    // `debug_force_steal` seeds an adversarial initial task placement in the
    // work-stealing pool, so workers must steal to make progress. Whatever
    // the interleaving, the fixed-order overlay merge must keep the result
    // bit-identical — and at least one seed must actually force steals, or
    // this test would pass vacuously.
    use astree::obs::Collector;
    let src = generate(&GenConfig { channels: 6, seed: 42, bug: None });
    let p = Frontend::new().compile_str(&src).expect("compiles");
    let baseline = run_with_jobs(&src, 4);
    assert!(baseline.stats.parallel_slices > 0, "dispatch must slice for this test to bite");

    let mut stole_somewhere = false;
    for seed in [1u64, 7, 42, 0xDEAD_BEEF] {
        let mut cfg = AnalysisConfig::default();
        cfg.jobs = 4;
        cfg.debug_force_steal = Some(seed);
        let c = Collector::new();
        let par = AnalysisSession::builder(&p).config(cfg).recorder(&c).build().run();
        assert_equivalent(&format!("steal-seed-{seed}"), &baseline, &par, 4);
        let pool = c.snapshot().scheduler.pool.expect("pool counters recorded");
        stole_somewhere |= pool.steals > 0;
    }
    assert!(stole_somewhere, "no seed forced a steal — the adversarial placement is inert");
}

#[test]
fn inline_slice_execution_is_bit_identical() {
    // `debug_inline_slices` runs the same plan with every slice on the
    // calling thread (the scaling benchmark's measurement mode); it must not
    // change any observable either.
    let src = generate(&GenConfig { channels: 4, seed: 3, bug: None });
    let p = Frontend::new().compile_str(&src).expect("compiles");
    let pooled = run_with_jobs(&src, 4);
    let mut cfg = AnalysisConfig::default();
    cfg.jobs = 4;
    cfg.debug_inline_slices = true;
    let inline = AnalysisSession::builder(&p).config(cfg).build().run();
    assert_equivalent("inline-slices", &pooled, &inline, 4);
    assert!(inline.stats.parallel_slices > 0, "inline mode still executes the sliced plan");
}

#[test]
fn nested_slicing_splits_fat_branches() {
    // A handwritten shape the nested planner targets: the synchronous loop
    // holds one fat `if` whose branch blocks contain independent per-signal
    // chains. Top-level slicing sees a single statement; the nested planner
    // recurses one level and slices the branch block.
    let src = r#"
        double a0; double a1; double a2; double a3;
        double b0; double b1; double b2; double b3;
        int mode;
        void main(void) {
            while (1) {
                if (mode > 0) {
                    a0 = a0 * 0.5 + 1.0; a0 = a0 + 0.25; a0 = a0 * 0.9;
                    a1 = a1 * 0.5 + 2.0; a1 = a1 + 0.25; a1 = a1 * 0.9;
                    a2 = a2 * 0.5 + 3.0; a2 = a2 + 0.25; a2 = a2 * 0.9;
                    a3 = a3 * 0.5 + 4.0; a3 = a3 + 0.25; a3 = a3 * 0.9;
                } else {
                    b0 = b0 * 0.5 - 1.0; b0 = b0 - 0.25; b0 = b0 * 0.9;
                    b1 = b1 * 0.5 - 2.0; b1 = b1 - 0.25; b1 = b1 * 0.9;
                    b2 = b2 * 0.5 - 3.0; b2 = b2 - 0.25; b2 = b2 * 0.9;
                    b3 = b3 * 0.5 - 4.0; b3 = b3 - 0.25; b3 = b3 * 0.9;
                }
                __astree_wait();
            }
        }
    "#;
    let p = Frontend::new().compile_str(src).expect("compiles");
    let run = |nested: bool| {
        let mut cfg = AnalysisConfig::default();
        cfg.jobs = 4;
        cfg.nested_slicing = nested;
        // Every statement is cheap; only the cost-fraction gate would stop
        // nested slicing, so open it fully for this structural test.
        cfg.nested_cost_fraction = 0.0;
        AnalysisSession::builder(&p).config(cfg).build().run()
    };
    let flat = run(false);
    let nested = run(true);
    assert_equivalent("nested-slicing", &flat, &nested, 4);
    assert!(
        nested.stats.parallel_slices > flat.stats.parallel_slices,
        "nested slicing should add branch-block slices (nested={} flat={})",
        nested.stats.parallel_slices,
        flat.stats.parallel_slices
    );
}

#[test]
fn batch_isolates_a_panicking_job() {
    // A worker panic (here: a deliberately poisoned job) must fail that job
    // only; the remaining jobs complete and report normally.
    let mut fleet: Vec<JobSpec> = vec![
        JobSpec::new("clean", generate(&GenConfig { channels: 1, seed: 1, bug: None })),
        JobSpec::new(
            "buggy",
            generate(&GenConfig { channels: 1, seed: 2, bug: Some(BugKind::DivByZero) }),
        ),
    ];
    fleet.insert(1, JobSpec::new("poison", "int x; @!#"));

    let report = FleetSession::builder().jobs(fleet).threads(2).run();
    assert_eq!(report.outcomes.len(), 3);
    assert_eq!(report.outcomes[0].name, "clean");
    assert_eq!(report.outcomes[0].alarms, Some(0), "{:?}", report.outcomes[0]);
    assert_ne!(report.outcomes[1].status, JobStatus::Done);
    assert_eq!(report.outcomes[2].name, "buggy");
    assert!(report.outcomes[2].alarms.unwrap_or(0) >= 1, "{:?}", report.outcomes[2]);
    assert_eq!(report.completed(), 2);
}

#[test]
fn batch_timeout_is_honored() {
    let fleet =
        vec![JobSpec::new("big", generate(&GenConfig { channels: 12, seed: 5, bug: None }))];
    let report = FleetSession::builder().jobs(fleet).timeout(Some(Duration::from_nanos(1))).run();
    assert_eq!(report.outcomes[0].status, JobStatus::TimedOut);
    assert_eq!(report.completed(), 0);
}
