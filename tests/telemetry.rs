//! End-to-end telemetry (`astree-obs`) coverage: the collecting recorder
//! must observe the fixpoint engine, the domains, the parallel scheduler and
//! the batch runner without changing any analysis result.

use astree::core::{AnalysisConfig, AnalysisSession};
use astree::fleet::{FleetSession, JobSpec, JobStatus};
use astree::frontend::Frontend;
use astree::gen::{generate, BugKind, GenConfig};
use astree::obs::{Collector, Json, Metrics, SCHEMA};
use std::sync::Arc;
use std::time::Duration;

fn collect(src: &str, cfg: AnalysisConfig) -> (astree::core::AnalysisResult, Metrics) {
    let p = Frontend::new().compile_str(src).expect("compiles");
    let collector = Collector::new();
    let result = AnalysisSession::builder(&p).config(cfg).recorder(&collector).build().run();
    (result, collector.snapshot())
}

#[test]
fn metrics_cover_fixpoint_domains_and_scheduler() {
    let src = generate(&GenConfig { channels: 4, seed: 3, bug: None });
    let mut cfg = AnalysisConfig::default();
    cfg.jobs = 4;
    let (result, m) = collect(&src, cfg);
    assert!(result.alarms.is_empty(), "{:?}", result.alarms);

    // Per-function fixpoint counters: the entry function solves the main
    // synchronous loop, with union iterations before any widening.
    let main = m.functions.get("main").expect("main function recorded");
    assert!(!main.loops.is_empty(), "main's loops recorded");
    let l = main.loops.values().next().unwrap();
    assert!(l.iterations > 0 && l.stabilized_at > 0);
    assert!(l.union_iterations > 0, "delayed widening means unions first");
    assert_eq!(l.unroll_factor, 1, "default unrolling factor");

    // Per-domain operation counts with wall time.
    for (domain, op) in
        [("state", "join"), ("state", "widen"), ("octagon", "closure"), ("octagon", "assign")]
    {
        let ops = m.domains.get(domain).unwrap_or_else(|| panic!("domain {domain} recorded"));
        let op = ops.get(op).unwrap_or_else(|| panic!("{domain}.{op} recorded"));
        assert!(op.count > 0, "{domain} op applied at least once");
    }

    // Both analysis phases timed.
    assert!(m.phases.get("iterate").copied().unwrap_or(0) > 0);
    assert!(m.phases.get("check").copied().unwrap_or(0) > 0);

    // Scheduler: the 4-channel dispatch slices, each slice is timed, and
    // every merge is accounted for.
    assert!(m.scheduler.stages > 0, "the dispatch should slice");
    assert!(!m.scheduler.slices.is_empty());
    assert!(m.scheduler.slices.iter().all(|s| s.stmts > 0));
    assert_eq!(m.scheduler.merges, m.scheduler.slices.len() as u64, "one overlay merge per slice");
}

#[test]
fn event_stream_parses_back_and_matches_the_collector() {
    use astree::obs::{Fanout, Recorder, StreamSink, EVENT_SCHEMA};

    let dir = std::env::temp_dir().join(format!("astree-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");

    let src = generate(&GenConfig { channels: 4, seed: 3, bug: Some(BugKind::DivByZero) });
    let p = Frontend::new().compile_str(&src).expect("compiles");
    let collector = Arc::new(Collector::new());
    let sink = Arc::new(StreamSink::create(&path).unwrap());
    let fanout = Fanout::new(vec![
        Arc::clone(&collector) as Arc<dyn Recorder>,
        Arc::clone(&sink) as Arc<dyn Recorder>,
    ]);
    let mut cfg = AnalysisConfig::default();
    cfg.jobs = 4;
    let result = AnalysisSession::builder(&p).config(cfg).recorder(&fanout).build().run();
    sink.flush();

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 1, "stream holds a header plus events");

    // Every line is a self-contained JSON object (crash-readable JSONL).
    let parsed: Vec<Json> = lines
        .iter()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("unparseable line {l:?}: {e}")))
        .collect();
    assert_eq!(parsed[0].get("schema"), Some(&Json::str(EVENT_SCHEMA)), "header line first");

    // Event counts agree with the aggregating collector fed by the same
    // fanout: the stream is a faithful serialization, not a sample.
    let m = collector.snapshot();
    let count = |ev: &str| {
        parsed.iter().filter(|j| j.get("ev") == Some(&Json::str(ev.to_string()))).count()
    };
    assert_eq!(count("slice"), m.scheduler.slices.len(), "one slice line per recorded slice");
    assert_eq!(count("alarm"), result.alarms.len(), "one alarm line per reported alarm");
    assert_eq!(count("pool"), 1, "final pool-counter snapshot streamed once");
    assert!(count("loop_iter") > 0, "fixpoint iterations streamed");

    // Streamed slice records carry the documented fields with sane values.
    let slice = parsed
        .iter()
        .find(|j| j.get("ev") == Some(&Json::str("slice")))
        .expect("at least one slice event");
    for key in ["stage", "index", "stmts", "nanos"] {
        assert!(
            matches!(slice.get(key), Some(Json::UInt(_))),
            "slice event field {key} missing or mistyped in {slice:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn alarm_provenance_names_statement_domain_and_loop() {
    let src = generate(&GenConfig { channels: 2, seed: 1, bug: Some(BugKind::DivByZero) });
    let (result, m) = collect(&src, AnalysisConfig::default());
    assert_eq!(result.alarms.len(), 1, "{:?}", result.alarms);
    assert_eq!(m.alarms.len(), 1, "one provenance record per deduplicated alarm");
    let a = &m.alarms[0];
    assert_eq!(a.kind, "div_by_zero");
    assert_eq!(a.domain, "int_interval");
    assert_eq!(a.stmt, result.alarms[0].stmt.0);
    assert_eq!(a.line, result.alarms[0].loc.line);
    assert!(a.loop_id.is_some(), "the injected bug sits inside the reactive loop");
    assert!(a.iteration.is_some());
}

#[test]
fn recording_does_not_change_results() {
    let src = generate(&GenConfig { channels: 3, seed: 11, bug: Some(BugKind::IntOverflow) });
    let p = Frontend::new().compile_str(&src).expect("compiles");
    let plain = AnalysisSession::builder(&p).build().run();
    let collector = Collector::with_trace();
    let recorded = AnalysisSession::builder(&p).recorder(&collector).build().run();
    assert_eq!(plain.alarms, recorded.alarms);
    assert_eq!(plain.main_census, recorded.main_census);
    assert_eq!(plain.stats.loop_iterations, recorded.stats.loop_iterations);
    assert!(!collector.take_trace().is_empty(), "tracing collector keeps the iteration log");
}

#[test]
fn panicking_slice_falls_back_to_identical_sequential_replay() {
    let src = generate(&GenConfig { channels: 6, seed: 42, bug: Some(BugKind::DivByZero) });
    let p = Frontend::new().compile_str(&src).expect("compiles");

    let seq = AnalysisSession::builder(&p).build().run();

    let mut cfg = AnalysisConfig::default();
    cfg.jobs = 4;
    cfg.debug_panic_slice = Some(0);
    let collector = Collector::new();
    let par = AnalysisSession::builder(&p).config(cfg).recorder(&collector).build().run();
    let m = collector.snapshot();

    // The injected worker panic must be contained: the stage replays
    // sequentially and every observable matches the sequential analysis.
    assert_eq!(seq.alarms, par.alarms, "panic fallback changed the alarm list");
    assert_eq!(seq.main_census, par.main_census, "panic fallback changed the invariant");
    assert_eq!(par.stats.parallel_stages, 0, "every sliced stage must have fallen back");

    // ... and the reason is recorded in the metrics.
    let n = m.scheduler.fallbacks.get("worker_panic").copied().unwrap_or(0);
    assert!(n > 0, "worker_panic fallback recorded, got {:?}", m.scheduler.fallbacks);
}

#[test]
fn batch_metrics_record_job_outcomes_with_reasons() {
    let fleet = vec![
        JobSpec::new("clean", generate(&GenConfig { channels: 1, seed: 1, bug: None })),
        JobSpec::new("poison", "int x; @!#"),
        JobSpec::new(
            "buggy",
            generate(&GenConfig { channels: 1, seed: 2, bug: Some(BugKind::DivByZero) }),
        ),
    ];
    let collector = Arc::new(Collector::new());
    let rec: Arc<dyn astree::obs::Recorder> = Arc::clone(&collector) as _;
    let report = FleetSession::builder().jobs(fleet).threads(2).recorder(rec).run();
    assert_eq!(report.outcomes.len(), 3);

    let m = collector.snapshot();
    assert_eq!(m.scheduler.batch_jobs.len(), 3);
    let by_name = |n: &str| m.scheduler.batch_jobs.iter().find(|j| j.name == n).unwrap();
    assert_eq!(by_name("clean").status, "done");
    assert_eq!(by_name("clean").alarms, Some(0));
    assert_ne!(by_name("poison").status, "done");
    assert!(by_name("poison").reason.is_some(), "failure reason recorded");
    assert_eq!(by_name("buggy").alarms, Some(1));
}

#[test]
fn batch_metrics_record_timeouts() {
    let fleet =
        vec![JobSpec::new("big", generate(&GenConfig { channels: 12, seed: 5, bug: None }))];
    let collector = Arc::new(Collector::new());
    let rec: Arc<dyn astree::obs::Recorder> = Arc::clone(&collector) as _;
    let report = FleetSession::builder()
        .jobs(fleet)
        .timeout(Some(Duration::from_nanos(1)))
        .recorder(rec)
        .run();
    assert_eq!(report.outcomes[0].status, JobStatus::TimedOut);
    let m = collector.snapshot();
    assert_eq!(m.scheduler.batch_jobs[0].status, "timed-out");
}

#[test]
fn json_document_has_the_documented_shape() {
    let src = generate(&GenConfig { channels: 2, seed: 1, bug: Some(BugKind::DivByZero) });
    let mut cfg = AnalysisConfig::default();
    cfg.jobs = 2;
    let (_, m) = collect(&src, cfg);
    let j = m.to_json();
    assert_eq!(j.get("schema"), Some(&Json::str(SCHEMA)));
    for key in ["functions", "domains", "phases", "alarms", "scheduler"] {
        assert!(j.get(key).is_some(), "top-level key {key}");
    }
    let sched = j.get("scheduler").unwrap();
    for key in ["stages", "slices", "merges", "merge_nanos", "fallbacks", "batch_jobs"] {
        assert!(sched.get(key).is_some(), "scheduler key {key}");
    }
    let rendered = j.to_string();
    assert_eq!(rendered.matches('{').count(), rendered.matches('}').count());
    assert!(rendered.contains("\"div_by_zero\""));
}

#[test]
fn sequential_sessions_never_spin_a_worker_pool() {
    // `--jobs 1` must not construct pool threads: the scheduler section of
    // the metrics carries pool counters only when a pool actually ran.
    let src = generate(&GenConfig { channels: 4, seed: 3, bug: None });
    let (_, m) = collect(&src, AnalysisConfig::default());
    assert!(
        m.scheduler.pool.is_none(),
        "jobs=1 session recorded pool counters: {:?}",
        m.scheduler.pool
    );

    let mut cfg = AnalysisConfig::default();
    cfg.jobs = 3;
    let (_, m) = collect(&src, cfg);
    let pool = m.scheduler.pool.expect("jobs=3 session records pool counters");
    assert_eq!(pool.workers, 3);
}

#[test]
fn external_pool_sessions_report_per_run_deltas() {
    // A resident service hands every session the same long-lived pool; the
    // per-run pool counters must then be deltas over the run, not the
    // pool's cumulative lifetime totals.
    use astree::sched::WorkerPool;
    let src = generate(&GenConfig { channels: 6, seed: 42, bug: None });
    let p = Frontend::new().compile_str(&src).expect("compiles");
    let pool = WorkerPool::new(4);
    let mut cfg = AnalysisConfig::default();
    cfg.jobs = 4;

    let mut tasks_per_run = Vec::new();
    let mut results = Vec::new();
    for _ in 0..2 {
        let c = Collector::new();
        let result =
            AnalysisSession::builder(&p).config(cfg.clone()).recorder(&c).pool(&pool).build().run();
        let counters = c.snapshot().scheduler.pool.expect("pool counters recorded");
        assert_eq!(counters.workers, 4);
        tasks_per_run.push(counters.tasks);
        results.push(result);
    }
    assert!(tasks_per_run[0] > 0, "the sliced dispatch runs pool tasks");
    assert!(tasks_per_run[1] > 0, "the second run also runs pool tasks");
    // Exact per-run task counts vary (cost-guided chunking feeds on
    // measured slice nanos), so the delta contract is checked against the
    // pool's lifetime totals: the two per-run reports must partition them.
    // Cumulative reporting would make run 2 alone equal the lifetime total.
    assert_eq!(
        tasks_per_run[0] + tasks_per_run[1],
        pool.stats().tasks,
        "per-run pool counters must be deltas that sum to the lifetime total"
    );
    assert_eq!(results[0].alarms, results[1].alarms);
    assert_eq!(
        results[0].main_invariant.as_ref().map(|s| s.to_string()),
        results[1].main_invariant.as_ref().map(|s| s.to_string()),
        "shared-pool runs stay bit-identical"
    );
}
