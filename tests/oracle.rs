//! Integration tests for the differential soundness oracle: bounded
//! campaigns over the generated family, planted-divergence detection with
//! stable shrinking, report round-tripping, and a regression test for the
//! checking-pass soundness bug the oracle itself discovered.

use astree::core::{AnalysisConfig, AnalysisSession};
use astree::frontend::Frontend;
use astree::gen::{BugKind, StructKnobs};
use astree::obs::Json;
use astree::oracle::{
    campaign_to_json, parse_summary, run_campaign, run_member, DivergenceKind, MemberSpec,
    OracleConfig, SCHEMA,
};

fn bounded_cfg() -> OracleConfig {
    OracleConfig { members: 8, seeds: 2, ticks: 12, channels_max: 3, ..OracleConfig::default() }
}

/// The bounded CI-scale campaign: a corpus mixing channel counts,
/// structural knobs and injected (alarmed) faults must produce zero
/// divergences — every concrete state inside the invariants, every
/// concrete error covered by an alarm.
#[test]
fn bounded_campaign_has_zero_divergences() {
    let mut seen = 0u64;
    let campaign = run_campaign(&bounded_cfg(), |outcome| {
        seen += 1;
        assert!(outcome.executions > 0, "{}: no executions", outcome.spec.label());
    });
    assert_eq!(campaign.members, 8);
    assert_eq!(seen, campaign.members, "progress callback fires once per member");
    assert!(campaign.divergences.is_empty(), "{:?}", campaign.divergences);
    assert!(campaign.states_checked > 10_000, "oracle barely exercised: {campaign:?}");
    assert!(
        campaign.alarm_census.contains_key("div_by_zero"),
        "fault variants should alarm: {:?}",
        campaign.alarm_census
    );
}

/// A planted divergence (fault-injected empty invariant for one cell) is
/// detected, shrunk to the minimal witness, and survives a JSON round trip
/// with all its fields.
#[test]
fn planted_divergence_shrinks_and_round_trips() {
    let mut cfg = bounded_cfg();
    cfg.members = 4;
    cfg.channels_max = 2;
    cfg.debug_tighten_cell = Some("count0".into());
    let campaign = run_campaign(&cfg, |_| {});
    assert!(!campaign.divergences.is_empty(), "planted divergence missed");
    let d = &campaign.divergences[0];
    assert!(d.shrunk);
    assert_eq!(d.member.channels, 1, "not minimal: {d:?}");
    assert_eq!(d.exec_seed, 0, "not minimal: {d:?}");
    assert_eq!(d.tick, 0, "not minimal: {d:?}");
    assert!(matches!(&d.kind, DivergenceKind::Escape { cell, .. } if cell == "count0"), "{d:?}");

    let json = campaign_to_json(&campaign, None);
    let text = json.to_compact();
    let parsed = Json::parse(&text).expect("valid JSON");
    assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(SCHEMA));
    let divs = match parsed.get("divergences") {
        Some(Json::Arr(a)) => a,
        other => panic!("divergences not an array: {other:?}"),
    };
    assert_eq!(divs.len(), campaign.divergences.len());
    let first = &divs[0];
    assert_eq!(first.get("kind").and_then(Json::as_str), Some("escape"));
    assert_eq!(first.get("cell").and_then(Json::as_str), Some("count0"));
    assert_eq!(first.get("channels").and_then(Json::as_u64), Some(1));
    assert_eq!(first.get("shrunk"), Some(&Json::Bool(true)));
    let summary = parse_summary(&text).expect("parses back");
    assert_eq!(summary.divergences, campaign.divergences.len() as u64);
    assert_eq!(summary.members, campaign.members);

    // The failing report drives a non-zero exit in `astree fuzz`; here we
    // assert the count the CLI keys on is faithfully serialized.
    assert!(summary.divergences > 0);
}

/// Golden report: the exact shape of a clean bounded campaign's JSON,
/// pinned field by field so schema drift is a conscious choice.
#[test]
fn golden_report_shape() {
    let cfg = OracleConfig {
        members: 2,
        seeds: 1,
        ticks: 6,
        channels_max: 1,
        include_bugs: false,
        ..OracleConfig::default()
    };
    let campaign = run_campaign(&cfg, |_| {});
    let baseline = Json::parse(
        r#"{"schema":"astree-campaign/1","members":2,"executions":2,
            "states_checked":1,"inconclusive":0,"divergence_count":0,
            "alarm_census":{"div_by_zero":1}}"#,
    )
    .unwrap();
    let json = campaign_to_json(&campaign, Some(&baseline));
    for key in [
        "schema",
        "members",
        "executions",
        "states_checked",
        "inconclusive",
        "divergence_count",
        "alarm_census",
        "divergences",
        "baseline_delta",
    ] {
        assert!(json.get(key).is_some(), "missing field {key}");
    }
    assert_eq!(json.get("divergence_count").and_then(Json::as_u64), Some(0));
    // The clean campaign raised no div_by_zero alarms, so the delta reports
    // the baseline's one as lost.
    let delta = json.get("baseline_delta").unwrap();
    assert_eq!(delta.get("div_by_zero"), Some(&Json::Int(-1)));
}

/// Regression test for the checking-pass soundness bug the oracle found
/// during development (and which is fixed in this tree).
///
/// Iteration mode stores loop invariants by overwrite, so a nested loop
/// re-solved once per outer iteration keeps only the *last* visit's
/// invariant — the one for the outer residual context. The checking pass
/// used to replay *every* context (including the unrolled first outer
/// iteration, where e.g. `bug_num` is still 0, not yet in [100,100])
/// against that stale invariant, tightening downstream states unsoundly:
/// on `ch1-seed3-bugDivByZero` the concrete `bug_num = 0` escaped the
/// claimed `[100, 100]` right after the inner history-shift loop.
///
/// The fix keeps a coverage witness per loop and re-solves uncovered
/// contexts in the checking pass (`stats.loops_rechecked`).
#[test]
fn nested_loop_context_recheck_regression() {
    let spec = MemberSpec {
        channels: 1,
        gen_seed: 3,
        bug: Some(BugKind::DivByZero),
        knobs: StructKnobs::default(),
    };
    let mut cfg = OracleConfig {
        members: 1,
        seeds: 20,
        ticks: 6,
        channels_max: 1,
        ..OracleConfig::default()
    };
    cfg.shrink = false;
    let outcome = run_member(&spec, &cfg).unwrap();
    assert!(
        outcome.divergences.is_empty(),
        "nested-loop invariant overwrite regressed: {:?}",
        outcome.divergences
    );
    assert!(outcome.alarms.contains_key("div_by_zero"), "{:?}", outcome.alarms);

    // The fix is observable: the member's analysis re-solves at least one
    // loop whose stored invariant does not cover the arriving context.
    let src = spec.source();
    let p = Frontend::new().compile_str(&src).unwrap();
    let mut analysis = AnalysisConfig::default();
    analysis.collect_stmt_invariants = true;
    let result = AnalysisSession::builder(&p).config(analysis).build().run();
    assert!(
        result.stats.loops_rechecked >= 1,
        "expected uncovered-context rechecks, got {}",
        result.stats.loops_rechecked
    );
}
