//! End-to-end tests of the incremental invariant cache: warm replays are
//! bit-identical and fast, invalidation is function-granular, configuration
//! changes miss the whole store, and damaged files degrade to a clean cold
//! run.

use astree::core::{AnalysisConfig, AnalysisResult, AnalysisSession, InvariantStore};
use astree::frontend::Frontend;
use astree::gen::{generate, GenConfig};
use astree::ir::Program;
use astree::obs::Collector;
use std::sync::Arc;
use std::time::Instant;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("astree-cache-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_cached(program: &Program, store: &Arc<InvariantStore>) -> (AnalysisResult, f64) {
    let t0 = Instant::now();
    let r = AnalysisSession::builder(program).cache(Arc::clone(store)).build().run();
    (r, t0.elapsed().as_secs_f64())
}

/// The headline guarantee: re-analyzing an unchanged program (≥50
/// functions) through a warm store replays the stored result bit-identically
/// — same alarms, same census, same invariant — at least 5× faster.
#[test]
fn warm_rerun_is_bit_identical_and_at_least_5x_faster() {
    let dir = temp_dir("full-hit");
    let source = generate(&GenConfig { channels: 47, seed: 1, bug: None });
    let program = Frontend::new().compile_str(&source).expect("compiles");
    assert!(program.funcs.len() >= 50, "need a large program, got {}", program.funcs.len());

    let store = Arc::new(InvariantStore::open(&dir).expect("opens"));
    let (cold, cold_wall) = run_cached(&program, &store);
    assert!(!cold.cache.full_hit);

    // A fresh store on the same directory proves the replay came from disk.
    let store = Arc::new(InvariantStore::open(&dir).expect("reopens"));
    let (warm, warm_wall) = run_cached(&program, &store);
    assert!(warm.cache.full_hit, "unchanged program must be a full hit");

    assert_eq!(cold.alarms, warm.alarms, "alarms must replay bit-identically");
    assert_eq!(cold.main_census, warm.main_census, "census must replay bit-identically");
    let cold_inv = cold.main_invariant.as_ref().map(|s| s.to_string());
    let warm_inv = warm.main_invariant.as_ref().map(|s| s.to_string());
    assert_eq!(cold_inv, warm_inv, "invariant must replay bit-identically");

    // Replay-specific accounting: the stored cold times survive, the actual
    // replay cost is reported separately.
    assert_eq!(warm.stats.time_iterate, cold.stats.time_iterate);
    assert_eq!(warm.stats.time_check, cold.stats.time_check);
    assert!(warm.stats.time_replay.as_nanos() > 0);
    assert_eq!(warm.stats.loops_solved, 0);

    assert!(
        cold_wall >= 5.0 * warm_wall,
        "warm replay not ≥5× faster: cold {cold_wall:.3}s, warm {warm_wall:.3}s"
    );
    let c = store.counters();
    assert_eq!(c.full_hits, 1);
    assert!(c.bytes_read > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

const TWO_WORKERS: &str = r#"
    int a; int b; int i; int j;
    void f(void) {
        for (i = 0; i < 1000; i++) { a = a + 1; if (a > 100) { a = 0; } }
    }
    void g(void) {
        for (j = 0; j < 1000; j++) { b = b + STEP; if (b > 200) { b = 0; } }
    }
    void main(void) {
        while (1) { f(); g(); __astree_wait(); }
    }
"#;

fn two_workers(step: &str) -> Program {
    let src = TWO_WORKERS.replace("STEP", step);
    Frontend::new().compile_str(&src).expect("compiles")
}

/// Editing one function's body re-solves only that function (and its
/// transitive callers); the untouched function replays from its seed.
#[test]
fn editing_one_function_invalidates_only_that_function() {
    let dir = temp_dir("invalidation");
    let store = Arc::new(InvariantStore::open(&dir).expect("opens"));
    let before = two_workers("2");
    let (cold, _) = run_cached(&before, &store);
    assert!(!cold.cache.full_hit);

    // Rewrite an expression in g's body (same value, different shape): g and
    // main (which inlines g) must re-solve, f must be seeded and replay
    // without iteration.
    let after = two_workers("1 + 1");
    let store = Arc::new(InvariantStore::open(&dir).expect("reopens"));
    let (warm, _) = run_cached(&after, &store);
    assert!(!warm.cache.full_hit, "edited program must not replay verbatim");
    assert_eq!(warm.cache.seeded_functions, 1, "{:?}", warm.cache);
    assert_eq!(warm.cache.invalidated_functions, 2, "{:?}", warm.cache);
    assert!(
        warm.cache.loops_replayed_by_function.contains_key("f"),
        "f must replay its loop from the seed: {:?}",
        warm.cache
    );
    // f may still fall back to iteration while the enclosing reactive loop's
    // widening transiently overshoots the stored fixpoint, but the seed must
    // absorb most of its passes; g (edited) never replays.
    let f_solved = warm.cache.loops_solved_by_function.get("f").copied().unwrap_or(0);
    let f_solved_cold = cold.cache.loops_solved_by_function.get("f").copied().unwrap_or(0);
    assert!(
        f_solved < f_solved_cold,
        "seeding f must reduce its re-solves ({f_solved} vs cold {f_solved_cold}): {:?}",
        warm.cache
    );
    assert!(!warm.cache.loops_replayed_by_function.contains_key("g"), "{:?}", warm.cache);
    assert!(warm.cache.loops_solved_by_function.contains_key("g"), "{:?}", warm.cache);
    assert!(warm.cache.loops_solved_by_function.contains_key("main"), "{:?}", warm.cache);

    // Soundness cross-check: the seeded run must agree with a cold run of
    // the edited program.
    let cold_edited = AnalysisSession::builder(&after).build().run();
    assert_eq!(warm.alarms, cold_edited.alarms);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Changing an analysis-relevant parameter changes the store key: nothing is
/// seeded, nothing is reported invalidated — it is a clean full miss.
#[test]
fn changing_widening_or_packing_parameters_misses_the_whole_store() {
    let dir = temp_dir("config-miss");
    let store = Arc::new(InvariantStore::open(&dir).expect("opens"));
    let program = two_workers("2");
    run_cached(&program, &store);

    let mut widen = AnalysisConfig::default();
    widen.widening_delay += 1;
    let mut pack = AnalysisConfig::default();
    pack.octagon_pack_cap += 1;
    for cfg in [widen, pack] {
        let store = Arc::new(InvariantStore::open(&dir).expect("reopens"));
        let r =
            AnalysisSession::builder(&program).config(cfg).cache(Arc::clone(&store)).build().run();
        assert!(!r.cache.full_hit);
        assert_eq!(r.cache.seeded_functions, 0, "{:?}", r.cache);
        assert_eq!(r.cache.invalidated_functions, 0, "{:?}", r.cache);
        assert_eq!(store.counters().misses, 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A truncated cache file must not panic or poison the result: the run falls
/// back to cold, reports the corruption, and rewrites the entry.
#[test]
fn corrupt_cache_files_fall_back_to_a_clean_cold_run() {
    let dir = temp_dir("corrupt");
    let store = Arc::new(InvariantStore::open(&dir).expect("opens"));
    let program = two_workers("2");
    let (cold, _) = run_cached(&program, &store);

    for file in std::fs::read_dir(&dir).expect("lists") {
        let path = file.expect("entry").path();
        let bytes = std::fs::read(&path).expect("reads");
        std::fs::write(&path, &bytes[..bytes.len() / 3]).expect("writes");
    }
    let store = Arc::new(InvariantStore::open(&dir).expect("reopens"));
    let (warm, _) = run_cached(&program, &store);
    assert!(!warm.cache.full_hit);
    assert_eq!(warm.cache.seeded_functions, 0, "{:?}", warm.cache);
    assert_eq!(warm.alarms, cold.alarms);
    assert!(store.counters().corrupt_files >= 1, "{:?}", store.counters());

    // The rewritten entry is usable again.
    let store = Arc::new(InvariantStore::open(&dir).expect("reopens again"));
    let (warm2, _) = run_cached(&program, &store);
    assert!(warm2.cache.full_hit);
    let _ = std::fs::remove_dir_all(&dir);
}

const TAILED: &str = r#"
    int a; int b; int i; int j; int t;
    void f(void) {
        for (i = 0; i < 1000; i++) { a = a + 1; if (a > 100) { a = 0; } }
        t = TAIL;
        t = 1;
    }
    void g(void) {
        for (j = 0; j < 1000; j++) { b = b + 1; if (b > 200) { b = 0; } }
    }
    void main(void) {
        while (1) { f(); g(); __astree_wait(); }
    }
"#;

fn tailed(tail: &str) -> Program {
    let src = TAILED.replace("TAIL", tail);
    Frontend::new().compile_str(&src).expect("compiles")
}

/// Editing a function *outside* its loop invalidates the function-level seed
/// but not the loop-level one: the loop's stored invariant is re-verified and
/// installed without iterating, and the analyzer's output (alarms, census)
/// matches a cold run of the edited program bit for bit.
#[test]
fn per_loop_seeds_survive_edits_outside_the_loop() {
    let dir = temp_dir("loop-seed");
    let store = Arc::new(InvariantStore::open(&dir).expect("opens"));
    let before = tailed("2");
    run_cached(&before, &store);

    // The edit changes f's closure fingerprint (so the whole-function seed
    // misses) but leaves the loop body and every value flowing into the loop
    // head untouched (the edited temporary is squashed to 1 before f
    // returns), so the loop fingerprint still matches.
    let after = tailed("3");
    let store = Arc::new(InvariantStore::open(&dir).expect("reopens"));
    let (warm, _) = run_cached(&after, &store);
    assert!(!warm.cache.full_hit);
    assert_eq!(warm.cache.seeded_functions, 1, "only g keeps its seed: {:?}", warm.cache);
    assert!(warm.stats.loops_seeded > 0, "f's loop must be seeded: {:?}", warm.stats);
    let f_solved = warm.cache.loops_solved_by_function.get("f").copied().unwrap_or(0);

    let cold_edited = AnalysisSession::builder(&after).build().run();
    let f_solved_cold = cold_edited.stats.loops_solved; // whole-program, upper bound
    assert!(f_solved < f_solved_cold, "seeding must save solves: {f_solved} vs {f_solved_cold}");
    assert_eq!(warm.alarms, cold_edited.alarms, "seeded run must match cold bit for bit");
    assert_eq!(warm.main_census, cold_edited.main_census);
    // The internal invariant may differ from the cold trajectory — seeding
    // converges the reactive loop in fewer widening steps, which here lands
    // the mission clock on a *tighter* threshold than the cold overshoot.
    // Soundness is what the acceptance check guarantees; the alarm and
    // census equality above pin the observable output.
    let _ = std::fs::remove_dir_all(&dir);
}

/// Converged seeds from a small family member warm the per-function solves of
/// a larger member of the same family: the channel-count-parametric
/// fingerprint matches across members, the channel tag is re-expanded on the
/// way in, and the transplanted invariants are accepted by the same
/// post-fixpoint check as native seeds.
#[test]
fn cross_member_seeds_transfer_between_channel_counts() {
    let dir = temp_dir("portable");
    let store = Arc::new(InvariantStore::open(&dir).expect("opens"));
    let donor_src = generate(&GenConfig { channels: 4, seed: 9, bug: None });
    let donor = Frontend::new().compile_str(&donor_src).expect("compiles");
    run_cached(&donor, &store);

    let target_src = generate(&GenConfig { channels: 8, seed: 9, bug: None });
    let target = Frontend::new().compile_str(&target_src).expect("compiles");
    let store = Arc::new(InvariantStore::open(&dir).expect("reopens"));
    let (warm, _) = run_cached(&target, &store);
    assert!(!warm.cache.full_hit, "different member must not replay verbatim");
    assert!(
        warm.stats.seed_hits > 0,
        "4-channel seeds must warm the 8-channel member: {:?}",
        warm.stats
    );

    // Soundness cross-check: transplanted seeds only ever tighten the work,
    // never the answer.
    let cold = AnalysisSession::builder(&target).build().run();
    assert_eq!(warm.alarms, cold.alarms);
    assert_eq!(warm.main_census, cold.main_census);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A store bounded far below the working set evicts old entries instead of
/// growing, and a rerun through the evicted store degrades to (at worst) a
/// cold miss — never a wrong answer.
#[test]
fn tiny_cache_bound_evicts_and_still_yields_correct_results() {
    let dir = temp_dir("bounded");
    let program = two_workers("2");
    let baseline = AnalysisSession::builder(&program).build().run();

    let store = Arc::new(InvariantStore::open_bounded(&dir, 1024).expect("opens"));
    let (first, _) = run_cached(&program, &store);
    assert_eq!(first.alarms, baseline.alarms);
    assert!(store.counters().evictions >= 1, "1 KiB bound must evict: {:?}", store.counters());

    let store = Arc::new(InvariantStore::open_bounded(&dir, 1024).expect("reopens"));
    let (again, _) = run_cached(&program, &store);
    assert!(!again.cache.full_hit, "the evicted entry must miss");
    assert_eq!(again.alarms, baseline.alarms);
    assert_eq!(again.main_census, baseline.main_census);
    let again_inv = again.main_invariant.as_ref().map(|s| s.to_string());
    let base_inv = baseline.main_invariant.as_ref().map(|s| s.to_string());
    assert_eq!(again_inv, base_inv);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The metrics document grows a `cache` section with the run's counters.
#[test]
fn metrics_document_reports_cache_counters() {
    let dir = temp_dir("metrics");
    let program = two_workers("2");
    for expect_hit in [false, true] {
        let store = Arc::new(InvariantStore::open(&dir).expect("opens"));
        let collector = Collector::new();
        let r = AnalysisSession::builder(&program)
            .recorder(&collector)
            .cache(Arc::clone(&store))
            .build()
            .run();
        assert_eq!(r.cache.full_hit, expect_hit);
        let json = collector.to_json().to_string();
        assert!(json.contains("\"cache\""), "{json}");
        let m = collector.snapshot();
        if expect_hit {
            assert_eq!(m.cache.full_hits, 1);
            assert!(m.cache.saved_nanos > 0);
        } else {
            assert_eq!(m.cache.misses, 1);
            assert!(m.cache.bytes_written > 0);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
