//! The sharing differential: `debug_no_ptr_shortcuts` disables every
//! pointer-equality fast path in the persistent-map layer and the iterator
//! (identity-preserving merges, no-op inserts, `diff2`/`all2` shared-subtree
//! skips, the fixpoint `ptr_eq` stabilization checks) — and the analysis
//! must still produce **bit-identical** results: the same alarm list (order
//! included), the same main-loop census, the same rendered invariant, the
//! same widening schedule. The fast paths are implications, never semantic
//! changes; this suite is the contract CI enforces.

use astree::core::{AnalysisConfig, AnalysisResult, AnalysisSession};
use astree::frontend::Frontend;
use astree::gen::{generate, BugKind, GenConfig};
use astree::obs::Collector;

fn run(src: &str, jobs: usize, no_shortcuts: bool) -> (AnalysisResult, astree::obs::PmapCounters) {
    let p = Frontend::new().compile_str(src).expect("compiles");
    let mut cfg = AnalysisConfig::default();
    cfg.jobs = jobs;
    cfg.debug_no_ptr_shortcuts = no_shortcuts;
    let c = Collector::new();
    let r = AnalysisSession::builder(&p).config(cfg).recorder(&c).build().run();
    (r, c.snapshot().pmap)
}

fn assert_bit_identical(name: &str, a: &AnalysisResult, b: &AnalysisResult) {
    assert_eq!(a.alarms, b.alarms, "{name}: alarm list differs");
    assert_eq!(a.main_census, b.main_census, "{name}: main-loop census differs");
    assert_eq!(
        a.main_invariant.as_ref().map(|s| format!("{s}")),
        b.main_invariant.as_ref().map(|s| format!("{s}")),
        "{name}: rendered main invariant differs"
    );
    assert_eq!(a.stats.loop_iterations, b.stats.loop_iterations, "{name}: widening schedule");
    assert_eq!(a.stats.useful_octagon_packs, b.stats.useful_octagon_packs, "{name}");
}

/// Clean and buggy family members of several sizes.
fn corpus() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (channels, seed) in [(1usize, 1u64), (3, 7), (6, 42)] {
        let cfg = GenConfig { channels, seed, bug: None };
        out.push((format!("clean-c{channels}-s{seed}"), generate(&cfg)));
    }
    for (bug, tag) in [(BugKind::DivByZero, "div"), (BugKind::IntOverflow, "ovf")] {
        let cfg = GenConfig { channels: 3, seed: 11, bug: Some(bug) };
        out.push((format!("bug-{tag}-c3-s11"), generate(&cfg)));
    }
    out
}

#[test]
fn disabling_ptr_shortcuts_is_bit_identical() {
    for (name, src) in corpus() {
        let (on, on_pmap) = run(&src, 1, false);
        let (off, off_pmap) = run(&src, 1, true);
        assert_bit_identical(&name, &on, &off);
        assert!(
            on_pmap.identity_preserved > 0,
            "{name}: the sharing run preserved no identities — the fast paths are dead"
        );
        assert!(
            on_pmap.root_shortcut_hits + on_pmap.interior_shortcut_hits > 0,
            "{name}: no pointer shortcut ever fired"
        );
        assert_eq!(
            off_pmap.root_shortcut_hits
                + off_pmap.interior_shortcut_hits
                + off_pmap.identity_preserved,
            0,
            "{name}: debug_no_ptr_shortcuts left a fast path armed"
        );
        assert!(
            on_pmap.nodes_allocated < off_pmap.nodes_allocated,
            "{name}: sharing did not reduce node allocations ({} vs {})",
            on_pmap.nodes_allocated,
            off_pmap.nodes_allocated,
        );
    }
}

#[test]
fn sharing_flag_propagates_to_parallel_workers() {
    let src = generate(&GenConfig { channels: 6, seed: 42, bug: None });
    let (seq_on, _) = run(&src, 1, false);
    for jobs in [2usize, 4] {
        let (par_on, par_on_pmap) = run(&src, jobs, false);
        let (par_off, par_off_pmap) = run(&src, jobs, true);
        // The sharing contract is a *mode* differential: at a fixed worker
        // count, disabling every fast path must not change one observable
        // bit. This is what proves the flag reached every pool thread.
        assert_bit_identical(&format!("jobs={jobs} on-vs-off"), &par_on, &par_off);
        // Across worker counts the determinism contract (tests/parallel.rs)
        // covers alarms, census and the widening schedule; rendered float
        // bounds may differ in ±0.0 sign between slicings, so compare the
        // sequential baseline at that level.
        assert_eq!(seq_on.alarms, par_on.alarms, "jobs={jobs}: alarm list differs from jobs=1");
        assert_eq!(seq_on.main_census, par_on.main_census, "jobs={jobs}: census differs");
        assert_eq!(seq_on.stats.loop_iterations, par_on.stats.loop_iterations, "jobs={jobs}");
        assert_eq!(
            par_off_pmap.root_shortcut_hits
                + par_off_pmap.interior_shortcut_hits
                + par_off_pmap.identity_preserved,
            0,
            "jobs={jobs}: a worker slice ran with the fast paths armed"
        );
        assert!(par_on_pmap.identity_preserved > 0, "jobs={jobs}: no identity preserved");
    }
}

#[test]
fn stabilized_iterates_share_storage() {
    // A loop whose invariant stabilizes: after this PR the joins/widens of
    // the fixpoint iteration preserve identity, so the run must report both
    // identity-preserved returns and merge shortcut hits.
    let src = r#"
        volatile int in; int x; int acc;
        void main(void) {
            __astree_input_int(in, 0, 100);
            acc = 0;
            while (1) {
                x = in;
                if (acc < 1000) { acc = acc + x; }
                __astree_wait();
            }
        }
    "#;
    let (r, pmap) = run(src, 1, false);
    assert!(r.alarms.is_empty(), "{:?}", r.alarms);
    assert!(pmap.merge_calls > 0);
    assert!(pmap.identity_preserved > 0);
    assert!(pmap.interior_shortcut_hits + pmap.root_shortcut_hits > 0);
}
