//! Whole-pipeline soundness tests: the analyzer's results must cover every
//! behaviour the reference interpreter can exhibit.
//!
//! Two obligations (the contract of paper Sect. 5.4's abstraction):
//!
//! 1. **No missed errors**: if any concrete execution hits a run-time error
//!    (or records a recoverable error event), the analyzer must report an
//!    alarm of the corresponding class.
//! 2. **Invariant containment**: every concrete state observed at the main
//!    loop head lies inside the analyzer's loop invariant.

use astree::core::{AlarmKind, AnalysisConfig, AnalysisSession};
use astree::frontend::Frontend;
use astree::gen::{generate, BugKind, GenConfig};
use astree::ir::{ExecError, Interp, InterpConfig, RuntimeEvent, SeededInputs};

fn interp_events(
    program: &astree::ir::Program,
    seeds: std::ops::Range<u64>,
    ticks: u64,
) -> (Vec<ExecError>, Vec<RuntimeEvent>) {
    let mut errors = Vec::new();
    let mut events = Vec::new();
    for seed in seeds {
        let mut inputs = SeededInputs::new(seed);
        let mut it = Interp::new(
            program,
            InterpConfig { max_steps: 50_000_000, max_ticks: ticks },
            &mut inputs,
        );
        match it.run() {
            Ok(()) => {}
            Err(e) => errors.push(e),
        }
        events.extend(it.events().iter().map(|(_, e)| *e));
    }
    (errors, events)
}

fn alarm_kinds(result: &astree::core::AnalysisResult) -> Vec<AlarmKind> {
    result.alarms.iter().map(|a| a.kind).collect()
}

#[test]
fn clean_family_members_are_clean_concretely_and_abstractly() {
    for seed in [1u64, 17, 99] {
        let src = generate(&GenConfig { channels: 3, seed, bug: None });
        let p = Frontend::new().compile_str(&src).expect("compiles");
        let result = AnalysisSession::builder(&p).build().run();
        assert!(result.alarms.is_empty(), "seed {seed}: {:?}", result.alarms);
        let (errors, events) = interp_events(&p, 0..10, 150);
        assert!(errors.is_empty(), "seed {seed}: {errors:?}");
        assert!(events.is_empty(), "seed {seed}: {events:?}");
    }
}

#[test]
fn injected_div_by_zero_is_reported_and_real() {
    let src = generate(&GenConfig { channels: 2, seed: 5, bug: Some(BugKind::DivByZero) });
    let p = Frontend::new().compile_str(&src).unwrap();
    let result = AnalysisSession::builder(&p).build().run();
    assert!(alarm_kinds(&result).contains(&AlarmKind::DivByZero), "{:?}", result.alarms);
    let (errors, _) = interp_events(&p, 0..100, 50);
    assert!(
        errors.iter().any(|e| matches!(e, ExecError::DivByZero(_))),
        "no concrete witness in 100 seeds"
    );
}

#[test]
fn injected_oob_is_reported_and_real() {
    let src = generate(&GenConfig { channels: 2, seed: 5, bug: Some(BugKind::OutOfBounds) });
    let p = Frontend::new().compile_str(&src).unwrap();
    let result = AnalysisSession::builder(&p).build().run();
    assert!(alarm_kinds(&result).contains(&AlarmKind::OutOfBounds), "{:?}", result.alarms);
    let (errors, _) = interp_events(&p, 0..100, 50);
    assert!(
        errors.iter().any(|e| matches!(e, ExecError::OutOfBounds(_))),
        "no concrete witness in 100 seeds"
    );
}

#[test]
fn injected_overflow_is_reported_and_real() {
    let src = generate(&GenConfig { channels: 1, seed: 5, bug: Some(BugKind::IntOverflow) });
    let p = Frontend::new().compile_str(&src).unwrap();
    let result = AnalysisSession::builder(&p).build().run();
    assert!(alarm_kinds(&result).contains(&AlarmKind::IntOverflow), "{:?}", result.alarms);
    let (_, events) = interp_events(&p, 0..1, 3000);
    assert!(
        events.iter().any(|e| matches!(e, RuntimeEvent::IntOverflow)),
        "the accumulator should overflow concretely"
    );
}

/// Every concrete value observed at *every executed statement* must lie
/// inside the analyzer's per-statement invariant for the corresponding
/// cell. This test rides the oracle's containment walker (which owns the
/// concrete-to-abstract cell mapping and the per-domain notion of
/// "inside"); the main-loop-head special case the test used to hand-roll
/// is subsumed by the statement-level sweep.
#[test]
fn statement_invariants_contain_concrete_states() {
    use astree::oracle::{analyze_member, run_execution, MemberSpec, OracleConfig};
    let spec = MemberSpec {
        channels: 2,
        gen_seed: 23,
        bug: None,
        knobs: astree::gen::StructKnobs::default(),
    };
    let cfg = OracleConfig::default();
    let am = analyze_member(&spec, &cfg).expect("analyzes");
    for seed in 0..5u64 {
        let rec = run_execution(&am, seed, 60, 50_000_000);
        assert!(rec.states_checked > 0, "seed {seed}: observer never fired");
        assert!(!rec.inconclusive, "seed {seed}: run was inconclusive");
        assert!(
            rec.divergence.is_none(),
            "seed {seed}: concrete state escapes invariant: {:?}",
            rec.divergence
        );
    }
}

/// Disabling each domain must never *remove* alarms relative to the full
/// stack (monotonicity of refinement: coarser analyses are sound too, so
/// they can only add false alarms).
#[test]
fn coarser_configurations_only_add_alarms() {
    let src = generate(&GenConfig { channels: 3, seed: 31, bug: Some(BugKind::DivByZero) });
    let p = Frontend::new().compile_str(&src).unwrap();
    let full = AnalysisSession::builder(&p).build().run();
    let full_set: std::collections::BTreeSet<_> =
        full.alarms.iter().map(|a| (a.stmt, a.kind)).collect();
    let mut configs: Vec<(&str, AnalysisConfig)> = Vec::new();
    let mut c = AnalysisConfig::default();
    c.enable_octagons = false;
    configs.push(("no-octagons", c));
    let mut c = AnalysisConfig::default();
    c.enable_dtrees = false;
    configs.push(("no-dtrees", c));
    let mut c = AnalysisConfig::default();
    c.enable_ellipsoids = false;
    configs.push(("no-ellipsoids", c));
    let mut c = AnalysisConfig::default();
    c.enable_linearization = false;
    configs.push(("no-linearization", c));
    configs.push(("baseline", AnalysisConfig::baseline()));
    for (name, cfg) in configs {
        let r = AnalysisSession::builder(&p).config(cfg).build().run();
        let set: std::collections::BTreeSet<_> =
            r.alarms.iter().map(|a| (a.stmt, a.kind)).collect();
        assert!(
            full_set.is_subset(&set),
            "{name}: lost alarms {:?}",
            full_set.difference(&set).collect::<Vec<_>>()
        );
    }
}
