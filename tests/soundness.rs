//! Whole-pipeline soundness tests: the analyzer's results must cover every
//! behaviour the reference interpreter can exhibit.
//!
//! Two obligations (the contract of paper Sect. 5.4's abstraction):
//!
//! 1. **No missed errors**: if any concrete execution hits a run-time error
//!    (or records a recoverable error event), the analyzer must report an
//!    alarm of the corresponding class.
//! 2. **Invariant containment**: every concrete state observed at the main
//!    loop head lies inside the analyzer's loop invariant.

use astree::core::{AlarmKind, AnalysisConfig, AnalysisSession};
use astree::frontend::Frontend;
use astree::gen::{generate, BugKind, GenConfig};
use astree::ir::{ExecError, Interp, InterpConfig, RuntimeEvent, SeededInputs, Value};
use astree::memory::{CellLayout, CellVal, LayoutConfig};

fn interp_events(
    program: &astree::ir::Program,
    seeds: std::ops::Range<u64>,
    ticks: u64,
) -> (Vec<ExecError>, Vec<RuntimeEvent>) {
    let mut errors = Vec::new();
    let mut events = Vec::new();
    for seed in seeds {
        let mut inputs = SeededInputs::new(seed);
        let mut it = Interp::new(
            program,
            InterpConfig { max_steps: 50_000_000, max_ticks: ticks },
            &mut inputs,
        );
        match it.run() {
            Ok(()) => {}
            Err(e) => errors.push(e),
        }
        events.extend(it.events().iter().map(|(_, e)| *e));
    }
    (errors, events)
}

fn alarm_kinds(result: &astree::core::AnalysisResult) -> Vec<AlarmKind> {
    result.alarms.iter().map(|a| a.kind).collect()
}

#[test]
fn clean_family_members_are_clean_concretely_and_abstractly() {
    for seed in [1u64, 17, 99] {
        let src = generate(&GenConfig { channels: 3, seed, bug: None });
        let p = Frontend::new().compile_str(&src).expect("compiles");
        let result = AnalysisSession::builder(&p).build().run();
        assert!(result.alarms.is_empty(), "seed {seed}: {:?}", result.alarms);
        let (errors, events) = interp_events(&p, 0..10, 150);
        assert!(errors.is_empty(), "seed {seed}: {errors:?}");
        assert!(events.is_empty(), "seed {seed}: {events:?}");
    }
}

#[test]
fn injected_div_by_zero_is_reported_and_real() {
    let src = generate(&GenConfig { channels: 2, seed: 5, bug: Some(BugKind::DivByZero) });
    let p = Frontend::new().compile_str(&src).unwrap();
    let result = AnalysisSession::builder(&p).build().run();
    assert!(alarm_kinds(&result).contains(&AlarmKind::DivByZero), "{:?}", result.alarms);
    let (errors, _) = interp_events(&p, 0..100, 50);
    assert!(
        errors.iter().any(|e| matches!(e, ExecError::DivByZero(_))),
        "no concrete witness in 100 seeds"
    );
}

#[test]
fn injected_oob_is_reported_and_real() {
    let src = generate(&GenConfig { channels: 2, seed: 5, bug: Some(BugKind::OutOfBounds) });
    let p = Frontend::new().compile_str(&src).unwrap();
    let result = AnalysisSession::builder(&p).build().run();
    assert!(alarm_kinds(&result).contains(&AlarmKind::OutOfBounds), "{:?}", result.alarms);
    let (errors, _) = interp_events(&p, 0..100, 50);
    assert!(
        errors.iter().any(|e| matches!(e, ExecError::OutOfBounds(_))),
        "no concrete witness in 100 seeds"
    );
}

#[test]
fn injected_overflow_is_reported_and_real() {
    let src = generate(&GenConfig { channels: 1, seed: 5, bug: Some(BugKind::IntOverflow) });
    let p = Frontend::new().compile_str(&src).unwrap();
    let result = AnalysisSession::builder(&p).build().run();
    assert!(alarm_kinds(&result).contains(&AlarmKind::IntOverflow), "{:?}", result.alarms);
    let (_, events) = interp_events(&p, 0..1, 3000);
    assert!(
        events.iter().any(|e| matches!(e, RuntimeEvent::IntOverflow)),
        "the accumulator should overflow concretely"
    );
}

/// Every concrete value observed at the main loop head must lie inside the
/// analyzer's invariant for the corresponding cell.
#[test]
fn loop_invariant_contains_concrete_states() {
    let src = generate(&GenConfig { channels: 2, seed: 23, bug: None });
    let p = Frontend::new().compile_str(&src).unwrap();
    let result = AnalysisSession::builder(&p).build().run();
    let inv = result.main_invariant.as_ref().expect("reactive program has a main loop");
    assert!(!inv.is_bottom());
    let layout = CellLayout::new(&p, &LayoutConfig::default());

    // Identify the main loop head statement: the While itself observes the
    // store each time control reaches the loop test.
    let mut loop_stmt = None;
    let entry = p.func(p.entry);
    for s in &entry.body {
        if let astree::ir::StmtKind::While(_, c, _) = &s.kind {
            if matches!(c, astree::ir::Expr::Int(v, _) if *v != 0) {
                loop_stmt = Some(s.id);
            }
        }
    }
    let loop_stmt = loop_stmt.expect("main loop");

    for seed in 0..5u64 {
        let mut inputs = SeededInputs::new(seed);
        let mut it =
            Interp::new(&p, InterpConfig { max_steps: 50_000_000, max_ticks: 60 }, &mut inputs);
        let snapshots: std::rc::Rc<std::cell::RefCell<Vec<astree::ir::Store>>> =
            std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = snapshots.clone();
        it.set_observer(move |stmt, store| {
            if stmt == loop_stmt {
                sink.borrow_mut().push(store.clone());
            }
        });
        it.run().unwrap();
        drop(it);
        let snapshots = snapshots.borrow();
        // Skip the first visit (before any tick) — the invariant is computed
        // for the residual loop after the unrolled first iteration
        // (Sect. 7.1.1), whose states have clock ≥ 1.
        for store in snapshots.iter().skip(1) {
            for ((var, path), value) in store {
                // Map concrete cells to abstract cells by name lookup.
                let info = p.var(*var);
                if !matches!(info.kind, astree::ir::VarKind::Global | astree::ir::VarKind::Static) {
                    continue; // locals may be dead at the loop head
                }
                let cells = layout.cells_of_var(*var);
                // Find the cell whose path matches (expanded arrays) or the
                // shrunk cell.
                let target = if cells.len() == 1 {
                    cells[0]
                } else {
                    // Expanded: linearize the path the same way the layout
                    // does (paths are in declaration order).
                    match path_to_cell(&layout, *var, path) {
                        Some(c) => c,
                        None => continue,
                    }
                };
                let abs = inv.env.get(target, &layout);
                let ok = match (abs, value) {
                    (CellVal::Int(c), Value::Int(v)) => c.val.contains(*v),
                    (CellVal::Float(f), Value::Float(v)) => f.contains(*v),
                    _ => false,
                };
                assert!(
                    ok,
                    "seed {seed}: concrete {}{:?} = {value:?} escapes invariant {abs:?}",
                    info.name, path
                );
            }
        }
    }
}

/// Finds the expanded cell for a concrete path by matching the generated
/// cell names (e.g. `tbl0[3]`).
fn path_to_cell(
    layout: &CellLayout,
    var: astree::ir::VarId,
    path: &[u32],
) -> Option<astree::memory::CellId> {
    let cells = layout.cells_of_var(var);
    if path.is_empty() {
        return cells.first().copied();
    }
    // Shrunk array: single cell for all paths.
    if cells.len() == 1 {
        return Some(cells[0]);
    }
    // Expanded one-dimensional array: index directly.
    if path.len() == 1 && (path[0] as usize) < cells.len() {
        return Some(cells[path[0] as usize]);
    }
    None
}

/// Disabling each domain must never *remove* alarms relative to the full
/// stack (monotonicity of refinement: coarser analyses are sound too, so
/// they can only add false alarms).
#[test]
fn coarser_configurations_only_add_alarms() {
    let src = generate(&GenConfig { channels: 3, seed: 31, bug: Some(BugKind::DivByZero) });
    let p = Frontend::new().compile_str(&src).unwrap();
    let full = AnalysisSession::builder(&p).build().run();
    let full_set: std::collections::BTreeSet<_> =
        full.alarms.iter().map(|a| (a.stmt, a.kind)).collect();
    let mut configs: Vec<(&str, AnalysisConfig)> = Vec::new();
    let mut c = AnalysisConfig::default();
    c.enable_octagons = false;
    configs.push(("no-octagons", c));
    let mut c = AnalysisConfig::default();
    c.enable_dtrees = false;
    configs.push(("no-dtrees", c));
    let mut c = AnalysisConfig::default();
    c.enable_ellipsoids = false;
    configs.push(("no-ellipsoids", c));
    let mut c = AnalysisConfig::default();
    c.enable_linearization = false;
    configs.push(("no-linearization", c));
    configs.push(("baseline", AnalysisConfig::baseline()));
    for (name, cfg) in configs {
        let r = AnalysisSession::builder(&p).config(cfg).build().run();
        let set: std::collections::BTreeSet<_> =
            r.alarms.iter().map(|a| (a.stmt, a.kind)).collect();
        assert!(
            full_set.is_subset(&set),
            "{name}: lost alarms {:?}",
            full_set.difference(&set).collect::<Vec<_>>()
        );
    }
}
