//! End-to-end tests of the distributed fleet: the `astree batch` CLI
//! driving real `astree worker` child processes over the `astree-fleet/1`
//! wire protocol.
//!
//! These are the acceptance tests of the fleet determinism contract:
//! outcomes are reported in submission order and are byte-identical for
//! every worker count, crashes are isolated and re-scattered, and the
//! shared invariant store warms all workers.

use astree::obs::Json;
use std::path::PathBuf;
use std::process::Command;

fn astree() -> Command {
    Command::new(env!("CARGO_BIN_EXE_astree"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("astree-fleet-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Runs `astree batch` with the given extra args; returns (stdout, success).
fn run_batch(extra: &[&str]) -> (String, bool) {
    let out = astree().arg("batch").args(extra).output().expect("spawn astree batch");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.code().is_some(),
        "batch was killed by a signal\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    (stdout, out.status.success())
}

#[test]
fn fleet_outcomes_are_identical_for_every_worker_count() {
    let dir = temp_dir("determinism");
    let mut reports = Vec::new();
    for workers in [0usize, 1, 2, 4] {
        let report = dir.join(format!("report-w{workers}.txt"));
        let (stdout, ok) = run_batch(&[
            "--gen",
            "6",
            "--channels",
            "1,2,3",
            "--workers",
            &workers.to_string(),
            "--report",
            report.to_str().unwrap(),
        ]);
        assert!(ok, "clean fleet run with {workers} worker(s)\n{stdout}");
        reports.push(std::fs::read_to_string(&report).expect("report written"));
    }
    let base = &reports[0];
    assert!(base.starts_with("fleet-report/1\n"), "report header: {base}");
    assert!(base.contains("gen-c1-s1"), "report lists jobs: {base}");
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(
            base,
            r,
            "stable report for workers={} differs from the in-process run",
            [0usize, 1, 2, 4][i]
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crashed_workers_jobs_are_rescattered() {
    // `--crash-on` makes the first worker process abort when it receives
    // the named job; the coordinator must respawn and re-scatter so the
    // job still completes, counted in `fleet.resent`.
    let (stdout, ok) = run_batch(&[
        "--gen",
        "4",
        "--channels",
        "1,2",
        "--workers",
        "2",
        "--crash-on",
        "gen-c1-s1",
        "--json",
    ]);
    assert!(ok, "fleet absorbs the crash\n{stdout}");
    let j = Json::parse(&stdout).expect("batch --json output parses");
    let jobs = match j.get("jobs") {
        Some(Json::Arr(jobs)) => jobs,
        other => panic!("jobs array missing: {other:?}"),
    };
    assert_eq!(jobs.len(), 4);
    for job in jobs {
        assert_eq!(
            job.get("status").and_then(Json::as_str),
            Some("done"),
            "every job completes despite the crash: {stdout}"
        );
    }
    let fleet = j.get("fleet").expect("fleet counters in --json output");
    let count = |key: &str| fleet.get(key).and_then(Json::as_u64).unwrap_or(0);
    assert!(count("crashes") >= 1, "crash observed: {stdout}");
    assert!(count("resent") >= 1, "crashed job re-scattered: {stdout}");
    assert!(count("respawns") >= 1, "dead worker respawned: {stdout}");
}

#[test]
fn shared_store_warms_across_worker_processes() {
    // Pass 1 fills the shared invariant store from two worker processes;
    // pass 2 must replay every member from the store, including members
    // analyzed by the *other* worker in pass 1.
    let dir = temp_dir("warm-store");
    let cache = dir.join("store");
    let cache_arg = cache.to_str().unwrap();
    let args =
        ["--gen", "4", "--channels", "1,2", "--workers", "2", "--cache", cache_arg, "--json"];
    let (stdout1, ok1) = run_batch(&args);
    assert!(ok1, "cold pass succeeds\n{stdout1}");
    let (stdout2, ok2) = run_batch(&args);
    assert!(ok2, "warm pass succeeds\n{stdout2}");

    let hits = |stdout: &str| -> u64 {
        // The `cache:` summary line precedes the JSON document.
        let json_start = stdout.find('{').expect("json in output");
        let j = Json::parse(&stdout[json_start..]).expect("batch --json output parses");
        j.get("fleet").and_then(|f| f.get("store_full_hits")).and_then(Json::as_u64).unwrap_or(0)
    };
    assert_eq!(hits(&stdout1), 0, "cold pass has no store hits\n{stdout1}");
    assert_eq!(hits(&stdout2), 4, "warm pass replays every job from the store\n{stdout2}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_synced_store_warms_workers_without_a_shared_filesystem() {
    // `--cache-wire` keeps the invariant store private to the coordinator:
    // workers pull entries over `store_get`/`store_files` frames before a
    // cold solve and push converged entries back with `store_put`. Pass 2
    // must replay every member from the wire-synced store even though no
    // worker ever sees the cache directory.
    let dir = temp_dir("wire-store");
    let cache = dir.join("store");
    let cache_arg = cache.to_str().unwrap();
    let report1 = dir.join("report-cold.txt");
    let report2 = dir.join("report-warm.txt");
    let args = |report: &str| {
        vec![
            "--gen".to_string(),
            "4".into(),
            "--channels".into(),
            "1,2".into(),
            "--workers".into(),
            "2".into(),
            "--cache".into(),
            cache_arg.to_string(),
            "--cache-wire".into(),
            "--json".into(),
            "--report".into(),
            report.to_string(),
        ]
    };
    let cold_args = args(report1.to_str().unwrap());
    let (stdout1, ok1) = run_batch(&cold_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(ok1, "cold wire-synced pass succeeds\n{stdout1}");
    let warm_args = args(report2.to_str().unwrap());
    let (stdout2, ok2) = run_batch(&warm_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(ok2, "warm wire-synced pass succeeds\n{stdout2}");

    let fleet_count = |stdout: &str, key: &str| -> u64 {
        let json_start = stdout.find('{').expect("json in output");
        let j = Json::parse(&stdout[json_start..]).expect("batch --json output parses");
        j.get("fleet").and_then(|f| f.get(key)).and_then(Json::as_u64).unwrap_or(0)
    };
    // Cold pass: nothing to replay, but workers ship their converged
    // entries back to the coordinator's store.
    assert_eq!(fleet_count(&stdout1, "store_full_hits"), 0, "cold pass\n{stdout1}");
    assert!(fleet_count(&stdout1, "store_puts") > 0, "workers push entries back\n{stdout1}");
    // Warm pass: every member replays from entries pulled over the wire.
    assert_eq!(fleet_count(&stdout2, "store_full_hits"), 4, "warm pass replays all\n{stdout2}");
    assert!(fleet_count(&stdout2, "store_gets") > 0, "coordinator ships files out\n{stdout2}");
    // The determinism contract holds across cold and warm.
    let cold = std::fs::read_to_string(&report1).expect("cold report");
    let warm = std::fs::read_to_string(&report2).expect("warm report");
    assert_eq!(cold, warm, "warm wire-synced report matches cold");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn remote_workers_over_a_unix_socket_agree_with_in_process() {
    // A long-lived `astree worker --socket` process serves coordinators
    // over a Unix socket: `--connect` fleets must produce the same stable
    // report as the in-process run.
    let dir = temp_dir("socket");
    let sock = dir.join("worker.sock");
    let mut worker =
        astree().arg("worker").arg("--socket").arg(&sock).spawn().expect("spawn socket worker");
    // Wait for the socket to appear.
    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(sock.exists(), "worker bound its socket");

    let local = dir.join("report-local.txt");
    let remote = dir.join("report-remote.txt");
    let (stdout, ok) =
        run_batch(&["--gen", "3", "--channels", "1,2", "--report", local.to_str().unwrap()]);
    assert!(ok, "in-process run\n{stdout}");
    let (stdout, ok) = run_batch(&[
        "--gen",
        "3",
        "--channels",
        "1,2",
        "--connect",
        &format!("unix:{}", sock.display()),
        "--report",
        remote.to_str().unwrap(),
    ]);
    assert!(ok, "remote run over the socket\n{stdout}");
    let local = std::fs::read_to_string(&local).expect("local report");
    let remote = std::fs::read_to_string(&remote).expect("remote report");
    assert_eq!(local, remote, "socket fleet matches the in-process fleet");

    worker.kill().ok();
    worker.wait().ok();
    let _ = std::fs::remove_dir_all(&dir);
}
