//! Locks the paper's headline experimental shapes into the test suite
//! (small-scale versions of the `repro` experiments, cf. EXPERIMENTS.md).

use astree::core::{AnalysisConfig, AnalysisSession};
use astree::frontend::Frontend;
use astree::gen::{generate, GenConfig};

fn family(channels: usize) -> astree::ir::Program {
    let src = generate(&GenConfig { channels, seed: 7, bug: None });
    Frontend::new().compile_str(&src).expect("generated family compiles")
}

/// E2: the refinement ladder collapses monotonically to zero.
#[test]
fn alarm_ladder_collapses_monotonically() {
    let program = family(6);
    let ladder: Vec<(&str, AnalysisConfig)> = {
        let baseline = AnalysisConfig::baseline();
        let mut with_lin = baseline.clone();
        with_lin.enable_linearization = true;
        let mut with_oct = with_lin.clone();
        with_oct.enable_octagons = true;
        let mut with_dtree = with_oct.clone();
        with_dtree.enable_dtrees = true;
        let mut with_ell = with_dtree.clone();
        with_ell.enable_ellipsoids = true;
        let mut full = with_ell.clone();
        full.loop_unroll = 1;
        vec![
            ("baseline", baseline),
            ("+lin", with_lin),
            ("+oct", with_oct),
            ("+dtree", with_dtree),
            ("+ell", with_ell),
            ("full", full),
        ]
    };
    let mut prev = usize::MAX;
    let mut counts = Vec::new();
    for (name, cfg) in ladder {
        let n = AnalysisSession::builder(&program).config(cfg).build().run().alarms.len();
        counts.push((name, n));
        assert!(n <= prev, "ladder not monotone: {counts:?}");
        prev = n;
    }
    assert_eq!(prev, 0, "full stack must reach zero: {counts:?}");
    assert!(counts[0].1 > 0, "baseline must alarm: {counts:?}");
}

/// E3: replaying only the useful packs preserves the alarm set.
#[test]
fn packing_optimization_preserves_precision() {
    let program = family(6);
    let full = AnalysisSession::builder(&program).build().run();
    assert!(full.alarms.is_empty());
    let useful = full.stats.useful_octagon_packs.clone();
    assert!(!useful.is_empty());
    assert!(
        useful.len() < full.stats.octagon_packs,
        "some packs must be discardable ({} of {})",
        useful.len(),
        full.stats.octagon_packs
    );
    let mut cfg = AnalysisConfig::default();
    cfg.octagon_pack_filter = Some(useful.clone());
    let opt = AnalysisSession::builder(&program).config(cfg).build().run();
    assert_eq!(opt.alarms, full.alarms);
    assert_eq!(opt.stats.octagon_packs, useful.len());
}

/// E1: cells and statements grow linearly with channels; analysis succeeds
/// at every size.
#[test]
fn scaling_is_roughly_linear_in_cells() {
    let small = family(2);
    let big = family(8);
    let rs = AnalysisSession::builder(&small).build().run();
    let rb = AnalysisSession::builder(&big).build().run();
    assert!(rs.alarms.is_empty() && rb.alarms.is_empty());
    let ratio = rb.stats.cells as f64 / rs.stats.cells as f64;
    assert!((2.0..8.0).contains(&ratio), "4x channels should give ~4x cells, got ×{ratio:.1}");
}

/// E4: the census finds every assertion family on a full-featured member.
#[test]
fn census_is_heterogeneous() {
    let program = family(4);
    let r = AnalysisSession::builder(&program).build().run();
    let c = r.main_census.expect("reactive loop");
    assert!(c.boolean_intervals > 0, "{c}");
    assert!(c.intervals > 0, "{c}");
    assert!(c.clock_assertions > 0, "{c}");
    assert!(c.octagon_subtractive > 0, "{c}");
    assert!(c.ellipsoids > 0, "{c}");
}

/// The analyzer's two headline claims at once: zero false alarms on the
/// clean family, zero missed errors on the buggy one.
#[test]
fn headline_no_false_alarms_no_missed_errors() {
    let clean = family(4);
    let r = AnalysisSession::builder(&clean).build().run();
    assert!(r.alarms.is_empty(), "false alarms: {:?}", r.alarms);

    for bug in [
        astree::gen::BugKind::DivByZero,
        astree::gen::BugKind::OutOfBounds,
        astree::gen::BugKind::IntOverflow,
    ] {
        let src = generate(&GenConfig { channels: 2, seed: 7, bug: Some(bug) });
        let p = Frontend::new().compile_str(&src).unwrap();
        let r = AnalysisSession::builder(&p).build().run();
        assert!(!r.alarms.is_empty(), "{bug:?} missed");
    }
}
