//! End-to-end coverage of the resident analysis service (`astree-serve`):
//! concurrent clients must get results bit-identical to one-shot sessions,
//! the shared invariant store must warm across requests, the admission gate
//! must reject cleanly past `max_inflight`, and a failing request must
//! never take the daemon down.

use astree::core::{AnalysisConfig, AnalysisSession};
use astree::fleet::JobSpec;
use astree::frontend::Frontend;
use astree::gen::{generate, GenConfig};
use astree::obs::Json;
use astree::serve::client::AnalyzeRequest;
use astree::serve::{Client, ClientError, Endpoint, ServeOptions, Server};

fn temp_socket(tag: &str) -> Endpoint {
    let mut p = std::env::temp_dir();
    p.push(format!("astree-serve-test-{}-{tag}.sock", std::process::id()));
    Endpoint::Unix(p)
}

/// One-shot reference run: same entry point the CLI uses, sequential.
fn reference(source: &str) -> (Vec<String>, Option<String>) {
    let p = Frontend::new().compile_str(source).expect("compiles");
    let result = AnalysisSession::builder(&p).config(AnalysisConfig::default()).build().run();
    (
        result.alarms.iter().map(|a| a.to_string()).collect(),
        result.main_invariant.as_ref().map(|s| s.to_string()),
    )
}

#[test]
fn parallel_clients_match_one_shot_runs_bit_for_bit() {
    // Six concurrent clients: four distinct family members plus two
    // duplicates, so the daemon multiplexes both fresh and repeated work
    // over one warm pool.
    let members: Vec<String> = [(1usize, 1u64), (2, 7), (3, 5), (4, 3), (1, 1), (3, 5)]
        .iter()
        .map(|&(channels, seed)| generate(&GenConfig { channels, seed, bug: None }))
        .collect();
    let expected: Vec<_> = members.iter().map(|src| reference(src)).collect();

    let server = Server::bind(
        temp_socket("parallel"),
        ServeOptions { jobs: 2, max_inflight: 8, cache_dir: None },
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let handle = server.spawn();

    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let tasks: Vec<_> = members
            .iter()
            .map(|src| {
                let endpoint = endpoint.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&endpoint).expect("connect");
                    client
                        .analyze(&AnalyzeRequest { source: src.clone(), ..Default::default() })
                        .expect("analyze")
                })
            })
            .collect();
        tasks.into_iter().map(|t| t.join().expect("client thread")).collect()
    });

    for (i, (outcome, (alarms, invariant))) in outcomes.iter().zip(&expected).enumerate() {
        assert_eq!(&outcome.alarms, alarms, "member {i}: alarms differ from one-shot run");
        assert_eq!(
            &outcome.main_invariant, invariant,
            "member {i}: rendered invariant differs from one-shot run"
        );
        assert!(!outcome.events.is_empty(), "member {i}: coarse events streamed by default");
    }

    let mut client = Client::connect(&endpoint).expect("connect");
    client.shutdown().expect("shutdown");
    let counters = handle.counters();
    assert_eq!(counters.completed, members.len() as u64 + 1, "analyses + shutdown");
    assert_eq!(counters.panicked, 0);
    assert_eq!(counters.rejected_overloaded, 0);
    assert!(counters.events_streamed > 0);
    handle.join().expect("clean daemon exit");
}

#[test]
fn shared_store_warms_repeat_requests() {
    let mut cache_dir = std::env::temp_dir();
    cache_dir.push(format!("astree-serve-test-{}-store", std::process::id()));
    std::fs::remove_dir_all(&cache_dir).ok();
    let source = generate(&GenConfig { channels: 2, seed: 9, bug: None });
    let (alarms, invariant) = reference(&source);

    let server = Server::bind(
        temp_socket("store"),
        ServeOptions { jobs: 2, max_inflight: 4, cache_dir: Some(cache_dir.clone()) },
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let handle = server.spawn();

    let mut client = Client::connect(&endpoint).expect("connect");
    let req = AnalyzeRequest { source, ..Default::default() };
    let cold = client.analyze(&req).expect("cold analyze");
    assert!(!cold.cache_full_hit, "first request must miss the fresh store");
    let warm = client.analyze(&req).expect("warm analyze");
    assert!(warm.cache_full_hit, "second identical request must replay from the shared store");
    for outcome in [&cold, &warm] {
        assert_eq!(outcome.alarms, alarms, "store participation must not change alarms");
        assert_eq!(outcome.main_invariant, invariant, "or the rendered invariant");
    }

    let status = client.status().expect("status");
    let cache = status.get("cache").expect("cache section");
    assert!(
        cache.get("full_hits").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "status reports the warm hit: {status}"
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("clean daemon exit");
    std::fs::remove_dir_all(&cache_dir).ok();
}

#[test]
fn admission_gate_rejects_cleanly_past_max_inflight() {
    let source = generate(&GenConfig { channels: 1, seed: 2, bug: None });
    let server = Server::bind(
        temp_socket("overload"),
        ServeOptions { jobs: 1, max_inflight: 1, cache_dir: None },
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let handle = server.spawn();

    // One client occupies the single admission slot (hold_ms keeps the slot
    // busy deterministically); a second client must be rejected, then
    // succeed once the slot frees up.
    let rejected = std::thread::scope(|scope| {
        let holder = {
            let endpoint = endpoint.clone();
            let source = source.clone();
            scope.spawn(move || {
                let mut client = Client::connect(&endpoint).expect("connect");
                client
                    .analyze(&AnalyzeRequest {
                        source,
                        hold_ms: Some(1500),
                        events: Some("none"),
                        ..Default::default()
                    })
                    .expect("held analyze completes")
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(300));
        let mut client = Client::connect(&endpoint).expect("connect");
        let rejected =
            client.analyze(&AnalyzeRequest { source: source.clone(), ..Default::default() });
        holder.join().expect("holder thread");
        rejected
    });
    match rejected {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "overloaded"),
        other => panic!("expected a clean overloaded rejection, got {other:?}"),
    }

    // The daemon is unharmed: the same request succeeds now.
    let mut client = Client::connect(&endpoint).expect("connect");
    let outcome = client
        .analyze(&AnalyzeRequest { source, ..Default::default() })
        .expect("post-overload analyze");
    let (alarms, invariant) = (outcome.alarms, outcome.main_invariant);
    assert!(invariant.is_some());
    assert!(alarms.is_empty());
    client.shutdown().expect("shutdown");
    let counters = handle.counters();
    assert_eq!(counters.rejected_overloaded, 1);
    assert!(counters.max_inflight_seen <= 1);
    handle.join().expect("clean daemon exit");
}

#[test]
fn failing_requests_leave_the_daemon_serving() {
    let server = Server::bind(
        temp_socket("failures"),
        ServeOptions { jobs: 1, max_inflight: 2, cache_dir: None },
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let handle = server.spawn();

    let mut client = Client::connect(&endpoint).expect("connect");
    // A program that does not compile answers bad_request...
    let err = client
        .analyze(&AnalyzeRequest { source: "int x; @!#".into(), ..Default::default() })
        .expect_err("garbage must not analyze");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, "bad_request"),
        other => panic!("expected bad_request, got {other:?}"),
    }
    // ...an unknown config key answers bad_request...
    let mut bad_cfg = AnalyzeRequest {
        source: generate(&GenConfig { channels: 1, seed: 1, bug: None }),
        ..Default::default()
    };
    bad_cfg.config = Some(Json::obj([("no_such_knob", Json::Bool(true))]));
    match client.analyze(&bad_cfg).expect_err("unknown config key must be rejected") {
        ClientError::Server { code, message } => {
            assert_eq!(code, "bad_request");
            assert!(message.contains("no_such_knob"), "names the offender: {message}");
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
    // ...and the same connection still analyzes fine afterwards.
    bad_cfg.config = None;
    let outcome = client.analyze(&bad_cfg).expect("valid analyze after failures");
    assert!(outcome.alarms.is_empty());
    client.shutdown().expect("shutdown");
    let counters = handle.counters();
    assert_eq!(counters.bad_requests, 2);
    handle.join().expect("clean daemon exit");
}

#[test]
fn tcp_endpoint_serves_the_same_protocol() {
    let server = Server::bind(
        Endpoint::Tcp("127.0.0.1:0".into()),
        ServeOptions { jobs: 2, max_inflight: 2, cache_dir: None },
    )
    .expect("bind ephemeral TCP port");
    let endpoint = server.endpoint().clone();
    match &endpoint {
        Endpoint::Tcp(addr) => assert!(!addr.ends_with(":0"), "port resolved: {addr}"),
        other => panic!("expected a TCP endpoint, got {other:?}"),
    }
    let handle = server.spawn();
    let source = generate(&GenConfig { channels: 1, seed: 4, bug: None });
    let (alarms, invariant) = reference(&source);
    let mut client = Client::connect(&endpoint).expect("connect over TCP");
    let outcome =
        client.analyze(&AnalyzeRequest { source, ..Default::default() }).expect("analyze");
    assert_eq!(outcome.alarms, alarms);
    assert_eq!(outcome.main_invariant, invariant);
    client.shutdown().expect("shutdown");
    handle.join().expect("clean daemon exit");
}

#[test]
fn batch_requests_return_per_job_outcomes() {
    let server = Server::bind(
        temp_socket("batch"),
        ServeOptions { jobs: 2, max_inflight: 2, cache_dir: None },
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let handle = server.spawn();

    let jobs: Vec<JobSpec> = vec![
        JobSpec::new("clean", generate(&GenConfig { channels: 1, seed: 1, bug: None })),
        JobSpec::new("poison", "int x; @!#"),
        JobSpec::new("clean-2", generate(&GenConfig { channels: 2, seed: 7, bug: None })),
    ];
    let mut client = Client::connect(&endpoint).expect("connect");
    let frame = client.batch(&jobs).expect("batch");
    let Some(Json::Arr(outcomes)) = frame.get("batch") else {
        panic!("missing batch array in {frame}");
    };
    assert_eq!(outcomes.len(), 3);
    let status = |i: usize| outcomes[i].get("status").and_then(Json::as_str).unwrap();
    assert_eq!(status(0), "done");
    assert_eq!(status(1), "failed", "a poisoned job fails alone");
    assert_eq!(status(2), "done", "jobs after the failure still run");
    client.shutdown().expect("shutdown");
    handle.join().expect("clean daemon exit");
}
